//! Shape enumeration and tombstone application for the rule audit.
//!
//! The ruler recipe: enumerate small term shapes, run every candidate rule
//! through an observational-equivalence oracle, ship survivors, keep the
//! refuted candidates as tombstones with a test proving they stay refuted.
//! The oracle itself lives in `tests/opt_audit.rs` (wire-level byte identity
//! against unoptimized serial execution); this module owns the enumeration
//! so the `#[test]` battery and the nightly bench bin share one shape set.

use crate::{TOMB_COMMUTE_COMPARE, TOMB_DROP_SELF_MINUS, TOMB_HOIST_SELECT};
use gea_check::gql::GqlCommand;
use gea_core::{CompareOp, CompareQuery};

/// Query numbers exercised by the kick-tires audit tier: one per
/// `matches()` equivalence class that is applicable to every op (1, 2, 5)
/// plus one union/intersect-only query (7) to hit the applicability error
/// path under `difference`.
pub const KICK_TIRES_QUERIES: &[usize] = &[1, 2, 5, 7];

/// Thesis query by menu number (1–13).
pub fn query_by_number(n: usize) -> CompareQuery {
    CompareQuery::ALL[n - 1]
}

/// The query numbers for an audit tier: the kick-tires subset, or all 13.
pub fn audit_queries(full: bool) -> Vec<usize> {
    if full {
        (1..=13).collect()
    } else {
        KICK_TIRES_QUERIES.to_vec()
    }
}

/// Enumerate every self-compare shape over one GAP table: all three ops ×
/// the tier's queries, each writing to a fresh `{prefix}_{op}_{q}` name.
/// Inapplicable (op, query) pairs are included on purpose — the fast path
/// must reproduce the `EQUERY` error byte-for-byte too.
pub fn enumerate_self_compares(gap: &str, prefix: &str, full: bool) -> Vec<GqlCommand> {
    let mut out = Vec::new();
    for (op_name, op) in [
        ("u", CompareOp::Union),
        ("i", CompareOp::Intersect),
        ("d", CompareOp::Difference),
    ] {
        for q in audit_queries(full) {
            out.push(GqlCommand::Compare {
                name: format!("{prefix}_{op_name}{q}"),
                g1: gap.to_string(),
                g2: gap.to_string(),
                op,
                query: query_by_number(q),
            });
        }
    }
    out
}

/// Apply a tombstoned rule *on purpose*, so the oracle can prove it wrong.
///
/// Returns the transformed pipeline, or `None` when the rule's pattern does
/// not occur. The transformation is the rewrite the tombstone would have
/// performed had it shipped:
///
/// * [`TOMB_COMMUTE_COMPARE`] swaps the operands of every two-operand
///   `compare`;
/// * [`TOMB_DROP_SELF_MINUS`] deletes every `compare N G G difference q`;
/// * [`TOMB_HOIST_SELECT`] rewrites `populate P S D ; select X P L` into
///   `select X D L ; populate P S X` (selection hoisted above populate).
pub fn apply_tombstone(rule: &str, cmds: &[GqlCommand]) -> Option<Vec<GqlCommand>> {
    let mut out: Vec<GqlCommand> = Vec::with_capacity(cmds.len());
    let mut applied = false;
    match rule {
        TOMB_COMMUTE_COMPARE => {
            for c in cmds {
                match c {
                    GqlCommand::Compare {
                        name,
                        g1,
                        g2,
                        op,
                        query,
                    } if g1 != g2 => {
                        applied = true;
                        out.push(GqlCommand::Compare {
                            name: name.clone(),
                            g1: g2.clone(),
                            g2: g1.clone(),
                            op: *op,
                            query: *query,
                        });
                    }
                    other => out.push(other.clone()),
                }
            }
        }
        TOMB_DROP_SELF_MINUS => {
            for c in cmds {
                match c {
                    GqlCommand::Compare {
                        g1,
                        g2,
                        op: CompareOp::Difference,
                        ..
                    } if g1 == g2 => applied = true,
                    other => out.push(other.clone()),
                }
            }
        }
        TOMB_HOIST_SELECT => {
            let mut i = 0;
            while i < cmds.len() {
                if i + 1 < cmds.len() {
                    if let (
                        GqlCommand::Populate {
                            name,
                            from: Some((sumy, dataset)),
                        },
                        GqlCommand::Select {
                            name: select_name,
                            dataset: select_src,
                            libraries,
                        },
                    ) = (&cmds[i], &cmds[i + 1])
                    {
                        if select_src == name {
                            applied = true;
                            out.push(GqlCommand::Select {
                                name: select_name.clone(),
                                dataset: dataset.clone(),
                                libraries: libraries.clone(),
                            });
                            out.push(GqlCommand::Populate {
                                name: name.clone(),
                                from: Some((sumy.clone(), select_name.clone())),
                            });
                            i += 2;
                            continue;
                        }
                    }
                }
                out.push(cmds[i].clone());
                i += 1;
            }
        }
        _ => return None,
    }
    applied.then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_enumeration_scales_with_tier() {
        let kick = enumerate_self_compares("g", "k", false);
        let full = enumerate_self_compares("g", "f", true);
        assert_eq!(kick.len(), 3 * KICK_TIRES_QUERIES.len());
        assert_eq!(full.len(), 3 * 13);
        // Fresh result names, no collisions.
        let names: std::collections::BTreeSet<_> = full
            .iter()
            .map(|c| match c {
                GqlCommand::Compare { name, .. } => name.clone(),
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(names.len(), full.len());
    }

    #[test]
    fn tombstones_apply_their_documented_transformations() {
        let swap = apply_tombstone(
            TOMB_COMMUTE_COMPARE,
            &[GqlCommand::Compare {
                name: "c".into(),
                g1: "a".into(),
                g2: "b".into(),
                op: CompareOp::Union,
                query: query_by_number(7),
            }],
        )
        .unwrap();
        assert!(matches!(
            &swap[0],
            GqlCommand::Compare { g1, g2, .. } if g1 == "b" && g2 == "a"
        ));

        let dropped = apply_tombstone(
            TOMB_DROP_SELF_MINUS,
            &[
                GqlCommand::Tissues,
                GqlCommand::Compare {
                    name: "c".into(),
                    g1: "g".into(),
                    g2: "g".into(),
                    op: CompareOp::Difference,
                    query: query_by_number(4),
                },
            ],
        )
        .unwrap();
        assert_eq!(dropped, vec![GqlCommand::Tissues]);

        let hoisted = apply_tombstone(
            TOMB_HOIST_SELECT,
            &[
                GqlCommand::Populate {
                    name: "P".into(),
                    from: Some(("S".into(), "D".into())),
                },
                GqlCommand::Select {
                    name: "X".into(),
                    dataset: "P".into(),
                    libraries: vec!["l1".into()],
                },
            ],
        )
        .unwrap();
        assert!(matches!(&hoisted[0], GqlCommand::Select { dataset, .. } if dataset == "D"));
        assert!(matches!(&hoisted[1], GqlCommand::Populate { from: Some((_, d)), .. } if d == "X"));
    }

    #[test]
    fn tombstones_without_a_matching_pattern_return_none() {
        assert!(apply_tombstone(TOMB_COMMUTE_COMPARE, &[GqlCommand::Tissues]).is_none());
        assert!(apply_tombstone("not-a-rule", &[GqlCommand::Tissues]).is_none());
    }
}
