//! gea-opt — an equivalence-tested algebraic optimizer for GQL pipelines.
//!
//! The thesis's contribution is an *algebra* over expression worlds, yet the
//! toolkit executes every pipeline literally. This crate adds the missing
//! rewrite pass between `gea-check` (which owns the grammar and the symbol /
//! world tables) and execution:
//!
//! 1. a pipeline of parsed [`GqlCommand`]s is lowered into a [`Plan`] — a
//!    sequence of [`Step`]s where algebraically-rewritable commands become
//!    dedicated fast-path steps and adjacent fusable pairs become one step;
//! 2. [`canonicalize_cmd`] maps algebraically-equal command spellings to one
//!    canonical form, and [`cache_key`] turns that form into the server's
//!    ResponseCache key, so equal-by-algebra commands share cached replies
//!    (including across sessions with equal corpus fingerprints);
//! 3. the optimized form is executed by `gea_server::optexec`, which reuses
//!    the engine's reply rendering so optimized output is byte-identical to
//!    literal execution *by construction* — and proven so by the rule audit.
//!
//! # The rule set is not hand-trusted
//!
//! Following the ruler approach (enumerate candidate rules, keep only those
//! an observational-equivalence oracle cannot refute), every rule in
//! [`RULES`] carries a [`RuleStatus`]:
//!
//! * [`RuleStatus::Shipped`] rules are applied by [`optimize`] and must pass
//!   the audit in `tests/opt_audit.rs`: wire-level byte identity against
//!   unoptimized serial execution over randomized corpora, for every shard ×
//!   thread combination.
//! * [`RuleStatus::Tombstoned`] rules are *plausible-looking candidates the
//!   oracle refuted*. They are kept in-tree, with the refutation reason,
//!   and the audit proves they **still** fail — so a future "optimization"
//!   cannot resurrect one without tripping a test. [`audit::apply_tombstone`]
//!   applies them on purpose for exactly that check.
//!
//! # Why the shipped rules are sound
//!
//! The soundness arguments live next to the rule constants below; each is
//! an observation about `gea-core`'s set operations (`setops.rs`) or name /
//! error discipline (`session.rs`), and each is re-verified empirically by
//! the audit rather than trusted.

use gea_check::gql::GqlCommand;
use gea_check::SymbolSeed;
use gea_core::{CompareOp, CompareQuery};

pub mod audit;

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

/// Whether a candidate rewrite survived the observational-equivalence audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleStatus {
    /// The oracle could not refute the rule; [`optimize`] applies it.
    Shipped,
    /// The oracle refuted the rule; it is never applied, but stays in-tree
    /// with the refutation so the audit can keep proving it wrong.
    Tombstoned {
        /// How the byte-identity oracle refuted the candidate.
        refuted_by: &'static str,
    },
}

/// One entry of the optimizer's rule registry.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule name; recorded in lineage (`optimizer` param) and in the
    /// `--plan` output.
    pub name: &'static str,
    /// Shipped or tombstoned.
    pub status: RuleStatus,
    /// One-line statement of the rewrite.
    pub summary: &'static str,
}

/// `compare N G G union q` ≡ `compare N G G intersect q`.
///
/// Sound because `gap_union`'s second loop (second-only tags) adds nothing
/// when both operands are the same table, so the combined rows are exactly
/// `gap_intersect`'s; and `CompareQuery::applies_to` treats `Union` and
/// `Intersect` identically, so the applicability error fires the same way.
/// Doubles as the cache-key canonicalization: both spellings share one
/// ResponseCache slot for `check` pipelines.
pub const RULE_SELF_UNION: &str = "self-union-intersect";

/// `compare N G G intersect q` needs no probes: every tag matches itself.
///
/// Sound because `GapTable::new` asserts tag uniqueness, so `row_for` on the
/// same table always finds exactly the probing row; the combined table is
/// the input with its gap columns doubled.
pub const RULE_SELF_INTERSECT: &str = "self-intersect-double";

/// `compare N G G difference q` is always empty (keeping G's columns).
///
/// Sound because `gap_minus` keeps rows of the first operand whose tag is
/// absent from the second — and every tag occurs in itself.
pub const RULE_SELF_MINUS: &str = "self-minus-empty";

/// Adjacent `gap G A B ; topgap G x` planned as one fused step: the top-`x`
/// derivation reads the diff still in hand instead of re-validating and
/// re-looking-up the just-created table.
pub const RULE_FUSE_GAP_TOPGAP: &str = "fuse-gap-topgap";

/// Adjacent `populate P S D ; select X P libs` planned as one fused step:
/// the selection runs against the just-populated table without an
/// intermediate re-validation round.
pub const RULE_FUSE_POPULATE_SELECT: &str = "fuse-populate-select";

/// A standalone `populate P S D` has its access path — index probe versus
/// columnar scan — chosen at execution time by `gea-check`'s abstract cost
/// oracle over the *live* table sizes, instead of always scanning.
///
/// Sound because all three populate kernels (`populate_scan`,
/// `populate_columnar`, `populate_indexed`) return the same hit list
/// (property-tested in `gea-core`), and everything the reply and lineage
/// derive from — materialization, naming, error discipline — is the shared
/// bookkeeping of `populate_from_sumy_with`. The rewrite changes *which*
/// kernel runs, never *what* it returns; the oracle consults only
/// deterministic default coefficients, so replicas decide identically.
pub const RULE_POPULATE_ACCESS_PATH: &str = "populate-access-path";

/// TOMBSTONE — `compare N G1 G2 op q` ≢ `compare N G2 G1 op q`.
///
/// Plausible because union/intersection are set-commutative over *tags*;
/// refuted because the combined table's columns are qualified per operand
/// (`{table}.{col}`, first operand's columns first), row order follows the
/// first operand, and queries 6–13 read "first" and "second" asymmetrically
/// — `show gap N` output diverges byte-for-byte.
pub const TOMB_COMMUTE_COMPARE: &str = "commute-compare-operands";

/// TOMBSTONE — dropping `compare N G G difference q` entirely.
///
/// Plausible because the result is provably empty ([`RULE_SELF_MINUS`]);
/// refuted because eliminating the command also eliminates the table: a
/// later `show gap N` answers rows under the rule's rewrite but
/// `ENOTFOUND` under the candidate, and `lineage` loses the node.
pub const TOMB_DROP_SELF_MINUS: &str = "drop-self-minus";

/// TOMBSTONE — hoisting selection above populate:
/// `populate P S D ; select X P L` → `select X D L ; populate P S X`.
///
/// Plausible as classic predicate pushdown; refuted because the two forms
/// compute different tables — `X` selects from `D` rather than from the
/// populated `P` (different "kept of total" reply), `P` populates over the
/// selected subset, and the lineage parents swap.
pub const TOMB_HOIST_SELECT: &str = "hoist-select-above-populate";

/// The full registry: shipped rules first, tombstones after.
pub const RULES: &[Rule] = &[
    Rule {
        name: RULE_SELF_UNION,
        status: RuleStatus::Shipped,
        summary: "compare N G G union q == compare N G G intersect q (exec fast path + cache-key unification)",
    },
    Rule {
        name: RULE_SELF_INTERSECT,
        status: RuleStatus::Shipped,
        summary: "self-intersection doubles each row's gap columns without probing",
    },
    Rule {
        name: RULE_SELF_MINUS,
        status: RuleStatus::Shipped,
        summary: "self-difference is the empty GAP table (first operand's columns)",
    },
    Rule {
        name: RULE_FUSE_GAP_TOPGAP,
        status: RuleStatus::Shipped,
        summary: "fuse adjacent gap G A B ; topgap G x into one diff+top step",
    },
    Rule {
        name: RULE_FUSE_POPULATE_SELECT,
        status: RuleStatus::Shipped,
        summary: "fuse adjacent populate P S D ; select X P libs into one step",
    },
    Rule {
        name: RULE_POPULATE_ACCESS_PATH,
        status: RuleStatus::Shipped,
        summary: "choose populate's access path (index probe vs columnar scan) by cost oracle",
    },
    Rule {
        name: TOMB_COMMUTE_COMPARE,
        status: RuleStatus::Tombstoned {
            refuted_by: "qualified column names and row order follow the first operand; \
                         queries 6-13 are operand-asymmetric (show gap diverges)",
        },
        summary: "swap compare operands",
    },
    Rule {
        name: TOMB_DROP_SELF_MINUS,
        status: RuleStatus::Tombstoned {
            refuted_by: "the empty table is still a table: show/lineage on the result \
                         name diverge when the command is dropped",
        },
        summary: "eliminate provably-empty self-difference",
    },
    Rule {
        name: TOMB_HOIST_SELECT,
        status: RuleStatus::Tombstoned {
            refuted_by: "selection above populate reads a different source table; \
                         replies, results, and lineage parents all diverge",
        },
        summary: "push selection above populate",
    },
];

/// Look a rule up by name.
pub fn rule(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Names of all shipped (applied) rules.
pub fn shipped_rules() -> Vec<&'static str> {
    RULES
        .iter()
        .filter(|r| r.status == RuleStatus::Shipped)
        .map(|r| r.name)
        .collect()
}

/// Names of all tombstoned (refuted, never applied) rules.
pub fn tombstoned_rules() -> Vec<&'static str> {
    RULES
        .iter()
        .filter(|r| matches!(r.status, RuleStatus::Tombstoned { .. }))
        .map(|r| r.name)
        .collect()
}

// ---------------------------------------------------------------------------
// Plan IR
// ---------------------------------------------------------------------------

/// One unit of optimized execution. Indices refer back to the source
/// pipeline's command positions so front ends can attribute replies and
/// errors to original lines.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Execute the command literally (no rule applied).
    Exec {
        /// Position in the source pipeline.
        index: usize,
        /// The unmodified command.
        cmd: GqlCommand,
    },
    /// A self-operand `compare` served by the probe-free fast path
    /// ([`RULE_SELF_UNION`], [`RULE_SELF_INTERSECT`], [`RULE_SELF_MINUS`]).
    CompareSelf {
        /// Position in the source pipeline.
        index: usize,
        /// Result GAP name.
        name: String,
        /// The (single) operand GAP.
        gap: String,
        /// The *original* operation — recorded as-written in lineage.
        op: CompareOp,
        /// The thesis query.
        query: CompareQuery,
        /// Which rule installed this step.
        rule: &'static str,
    },
    /// Fused `gap name s1 s2 ; topgap name x` ([`RULE_FUSE_GAP_TOPGAP`]).
    FusedGapTopGap {
        /// Position of the `gap` command.
        gap_index: usize,
        /// Position of the `topgap` command.
        top_index: usize,
        /// The GAP name (also the topgap source).
        name: String,
        /// First SUMY operand.
        sumy1: String,
        /// Second SUMY operand.
        sumy2: String,
        /// Top row count.
        x: usize,
        /// Which rule installed this step.
        rule: &'static str,
    },
    /// A standalone `populate name sumy dataset` whose access path (index
    /// probe vs columnar scan) the executor picks with the cost oracle
    /// ([`RULE_POPULATE_ACCESS_PATH`]). The choice needs live table sizes,
    /// so it is deferred to execution; the step only records the names.
    PopulateAccessPath {
        /// Position in the source pipeline.
        index: usize,
        /// The populated ENUM name.
        name: String,
        /// The SUMY whose intensional definition drives populate.
        sumy: String,
        /// The dataset populate qualifies libraries from.
        dataset: String,
        /// Which rule installed this step.
        rule: &'static str,
    },
    /// Fused `populate name sumy dataset ; select select_name name libs`
    /// ([`RULE_FUSE_POPULATE_SELECT`]).
    FusedPopulateSelect {
        /// Position of the `populate` command.
        populate_index: usize,
        /// Position of the `select` command.
        select_index: usize,
        /// The populated ENUM name (also the selection source).
        name: String,
        /// The SUMY whose intensional definition drives populate.
        sumy: String,
        /// The dataset populate scans.
        dataset: String,
        /// The selection's output name.
        select_name: String,
        /// Libraries the selection keeps.
        libraries: Vec<String>,
        /// Which rule installed this step.
        rule: &'static str,
    },
}

impl Step {
    /// Source-pipeline positions this step covers, in execution order.
    pub fn indices(&self) -> Vec<usize> {
        match self {
            Step::Exec { index, .. }
            | Step::CompareSelf { index, .. }
            | Step::PopulateAccessPath { index, .. } => vec![*index],
            Step::FusedGapTopGap {
                gap_index,
                top_index,
                ..
            } => vec![*gap_index, *top_index],
            Step::FusedPopulateSelect {
                populate_index,
                select_index,
                ..
            } => vec![*populate_index, *select_index],
        }
    }
}

/// A rewrite the planner applied, for `--plan` output, lineage, and stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewrite {
    /// The shipped rule that fired.
    pub rule: &'static str,
    /// Source position of the (first) rewritten command.
    pub index: usize,
    /// Human-readable description of what changed.
    pub detail: String,
}

/// An optimized pipeline: steps in source order plus the rewrites applied.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Execution steps, covering every source command exactly once.
    pub steps: Vec<Step>,
    /// Rewrites applied, in source order.
    pub rewrites: Vec<Rewrite>,
}

impl Plan {
    /// The no-rewrite plan: every command executed literally.
    pub fn identity(cmds: &[GqlCommand]) -> Plan {
        Plan {
            steps: cmds
                .iter()
                .enumerate()
                .map(|(index, cmd)| Step::Exec {
                    index,
                    cmd: cmd.clone(),
                })
                .collect(),
            rewrites: Vec::new(),
        }
    }

    /// Whether no rule fired.
    pub fn is_identity(&self) -> bool {
        self.rewrites.is_empty()
    }

    /// Number of source commands the plan covers.
    pub fn n_commands(&self) -> usize {
        self.steps.iter().map(|s| s.indices().len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

/// Rewrite a single command, if a shipped single-command rule applies.
///
/// This is the server's entry point: the wire protocol executes one command
/// per request, so only non-fusing rules can fire there.
pub fn rewrite_command(index: usize, cmd: &GqlCommand) -> Option<(Step, Rewrite)> {
    match cmd {
        GqlCommand::Compare {
            name,
            g1,
            g2,
            op,
            query,
        } if g1 == g2 => {
            let (rule, detail) = match op {
                CompareOp::Union => (
                    RULE_SELF_UNION,
                    format!("compare {name}: union of {g1} with itself == intersect; probe-free fast path"),
                ),
                CompareOp::Intersect => (
                    RULE_SELF_INTERSECT,
                    format!("compare {name}: intersect of {g1} with itself; probe-free fast path"),
                ),
                CompareOp::Difference => (
                    RULE_SELF_MINUS,
                    format!("compare {name}: difference of {g1} with itself is empty"),
                ),
            };
            Some((
                Step::CompareSelf {
                    index,
                    name: name.clone(),
                    gap: g1.clone(),
                    op: *op,
                    query: *query,
                    rule,
                },
                Rewrite {
                    rule,
                    index,
                    detail,
                },
            ))
        }
        GqlCommand::Populate {
            name,
            from: Some((sumy, dataset)),
        } => {
            let rule = RULE_POPULATE_ACCESS_PATH;
            Some((
                Step::PopulateAccessPath {
                    index,
                    name: name.clone(),
                    sumy: sumy.clone(),
                    dataset: dataset.clone(),
                    rule,
                },
                Rewrite {
                    rule,
                    index,
                    detail: format!(
                        "populate {name}: access path (index vs scan) chosen by cost oracle"
                    ),
                },
            ))
        }
        _ => None,
    }
}

/// Lower a pipeline into an optimized [`Plan`], applying every shipped rule
/// syntactically. Fusions consume adjacent pairs; single-command rewrites
/// apply everywhere else. Soundness does not depend on name resolution (all
/// error paths are replicated by the fast paths), so no symbol context is
/// needed here; [`optimize_checked`] adds the world-table guard.
pub fn optimize(cmds: &[GqlCommand]) -> Plan {
    let mut steps = Vec::with_capacity(cmds.len());
    let mut rewrites = Vec::new();
    let mut i = 0;
    while i < cmds.len() {
        if i + 1 < cmds.len() {
            if let (
                GqlCommand::Gap { name, sumy1, sumy2 },
                GqlCommand::TopGap { gap: top_src, x },
            ) = (&cmds[i], &cmds[i + 1])
            {
                if top_src == name {
                    rewrites.push(Rewrite {
                        rule: RULE_FUSE_GAP_TOPGAP,
                        index: i,
                        detail: format!(
                            "gap {name} + topgap {name} {x}: diff and top-{x} derived in one step"
                        ),
                    });
                    steps.push(Step::FusedGapTopGap {
                        gap_index: i,
                        top_index: i + 1,
                        name: name.clone(),
                        sumy1: sumy1.clone(),
                        sumy2: sumy2.clone(),
                        x: *x,
                        rule: RULE_FUSE_GAP_TOPGAP,
                    });
                    i += 2;
                    continue;
                }
            }
            if let (
                GqlCommand::Populate {
                    name,
                    from: Some((sumy, dataset)),
                },
                GqlCommand::Select {
                    name: select_name,
                    dataset: select_src,
                    libraries,
                },
            ) = (&cmds[i], &cmds[i + 1])
            {
                if select_src == name {
                    rewrites.push(Rewrite {
                        rule: RULE_FUSE_POPULATE_SELECT,
                        index: i,
                        detail: format!(
                            "populate {name} + select {select_name}: selection fused onto the populated table"
                        ),
                    });
                    steps.push(Step::FusedPopulateSelect {
                        populate_index: i,
                        select_index: i + 1,
                        name: name.clone(),
                        sumy: sumy.clone(),
                        dataset: dataset.clone(),
                        select_name: select_name.clone(),
                        libraries: libraries.clone(),
                        rule: RULE_FUSE_POPULATE_SELECT,
                    });
                    i += 2;
                    continue;
                }
            }
        }
        match rewrite_command(i, &cmds[i]) {
            Some((step, rewrite)) => {
                steps.push(step);
                rewrites.push(rewrite);
            }
            None => steps.push(Step::Exec {
                index: i,
                cmd: cmds[i].clone(),
            }),
        }
        i += 1;
    }
    Plan { steps, rewrites }
}

/// [`optimize`] behind gea-check's world-table guard: the pipeline is first
/// validated against `seed` (a live session's symbol population); if the
/// analyzer reports any error the identity plan is returned, so a
/// statically-broken script executes — and fails — exactly as written.
pub fn optimize_checked(seed: &SymbolSeed, cmds: &[GqlCommand]) -> Plan {
    if !gea_check::check_pipeline(seed, cmds).is_clean() {
        return Plan::identity(cmds);
    }
    optimize(cmds)
}

// ---------------------------------------------------------------------------
// Canonicalization / cache keys
// ---------------------------------------------------------------------------

/// Map a command to its algebraic canonical form. Today's only spelling
/// merge is [`RULE_SELF_UNION`] (`union` of a table with itself becomes
/// `intersect`), applied recursively through `check` pipelines. The result
/// is a fixpoint: canonicalizing twice changes nothing.
pub fn canonicalize_cmd(cmd: &GqlCommand) -> GqlCommand {
    match cmd {
        GqlCommand::Compare {
            name,
            g1,
            g2,
            op: CompareOp::Union,
            query,
        } if g1 == g2 => GqlCommand::Compare {
            name: name.clone(),
            g1: g1.clone(),
            g2: g2.clone(),
            op: CompareOp::Intersect,
            query: *query,
        },
        GqlCommand::Check(cmds) => GqlCommand::Check(cmds.iter().map(canonicalize_cmd).collect()),
        other => other.clone(),
    }
}

/// The ResponseCache key of a command: the canonical spelling of its
/// algebraic canonical form. Algebraically-equal commands (for which the
/// audit proves byte-identical replies) share one cache slot.
pub fn cache_key(cmd: &GqlCommand) -> String {
    canonicalize_cmd(cmd).canonical()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_check::gql::{parse, Request};

    fn cmd(line: &str) -> GqlCommand {
        match parse(line).unwrap().unwrap() {
            Request::Gql(c) => c,
            other => panic!("{line} parsed to {other:?}"),
        }
    }

    fn cmds(lines: &[&str]) -> Vec<GqlCommand> {
        lines.iter().map(|l| cmd(l)).collect()
    }

    #[test]
    fn registry_has_shipped_and_tombstoned_rules() {
        assert_eq!(shipped_rules().len(), 6);
        assert!(tombstoned_rules().len() >= 3);
        for r in RULES {
            assert!(rule(r.name).is_some());
        }
        assert!(rule("no-such-rule").is_none());
    }

    #[test]
    fn self_compare_commands_are_rewritten() {
        for (line, want) in [
            ("compare c g g union 2", RULE_SELF_UNION),
            ("compare c g g intersect 5", RULE_SELF_INTERSECT),
            ("compare c g g difference 4", RULE_SELF_MINUS),
        ] {
            let (step, rw) = rewrite_command(0, &cmd(line)).expect(line);
            assert_eq!(rw.rule, want, "{line}");
            match step {
                Step::CompareSelf { rule, .. } => assert_eq!(rule, want),
                other => panic!("{line} planned as {other:?}"),
            }
        }
        // Distinct operands: no rule.
        assert!(rewrite_command(0, &cmd("compare c g1 g2 union 2")).is_none());
        // Non-compare commands: no rule.
        assert!(rewrite_command(0, &cmd("tissues")).is_none());
    }

    #[test]
    fn adjacent_pairs_fuse_and_keep_indices() {
        let plan = optimize(&cmds(&[
            "dataset Eb brain",
            "gap g s1 s2",
            "topgap g 5",
            "populate P S Eb",
            "select X P libA libB",
        ]));
        assert_eq!(plan.rewrites.len(), 2);
        assert_eq!(plan.n_commands(), 5);
        assert!(matches!(
            &plan.steps[1],
            Step::FusedGapTopGap {
                gap_index: 1,
                top_index: 2,
                x: 5,
                ..
            }
        ));
        assert!(matches!(
            &plan.steps[2],
            Step::FusedPopulateSelect {
                populate_index: 3,
                select_index: 4,
                ..
            }
        ));
        // Every index covered exactly once, in order.
        let covered: Vec<usize> = plan.steps.iter().flat_map(|s| s.indices()).collect();
        assert_eq!(covered, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn non_adjacent_or_mismatched_pairs_do_not_fuse() {
        // topgap names a different gap.
        let plan = optimize(&cmds(&["gap g s1 s2", "topgap other 5"]));
        assert!(plan.is_identity());
        // select reads a different source: no fusion — the standalone
        // populate falls through to the access-path rule instead.
        let plan = optimize(&cmds(&["populate P S D", "select X D libA"]));
        assert_eq!(plan.rewrites.len(), 1);
        assert_eq!(plan.rewrites[0].rule, RULE_POPULATE_ACCESS_PATH);
        assert!(matches!(&plan.steps[1], Step::Exec { index: 1, .. }));
        // a command between breaks adjacency.
        let plan = optimize(&cmds(&["gap g s1 s2", "tissues", "topgap g 5"]));
        assert!(plan.is_identity());
        // lineage-repopulate form (no from-clause) never fuses with select
        // and never takes the access-path fast path either.
        let plan = optimize(&cmds(&["populate P", "select X P libA"]));
        assert!(plan.is_identity());
    }

    #[test]
    fn standalone_populate_takes_the_access_path_step() {
        let (step, rw) = rewrite_command(3, &cmd("populate P S D")).expect("rewrite");
        assert_eq!(rw.rule, RULE_POPULATE_ACCESS_PATH);
        match step {
            Step::PopulateAccessPath {
                index,
                name,
                sumy,
                dataset,
                rule,
            } => {
                assert_eq!(index, 3);
                assert_eq!(
                    (name.as_str(), sumy.as_str(), dataset.as_str()),
                    ("P", "S", "D")
                );
                assert_eq!(rule, RULE_POPULATE_ACCESS_PATH);
            }
            other => panic!("planned as {other:?}"),
        }
        // The lineage-repopulate form carries no SUMY/dataset to choose an
        // access path for.
        assert!(rewrite_command(0, &cmd("populate P")).is_none());
        // Fusion still wins when the select is adjacent: the fused step
        // covers both commands and the access-path rule stays out.
        let plan = optimize(&cmds(&["populate P S D", "select X P libA"]));
        assert_eq!(plan.rewrites.len(), 1);
        assert_eq!(plan.rewrites[0].rule, RULE_FUSE_POPULATE_SELECT);
    }

    #[test]
    fn identity_plan_covers_everything_unchanged() {
        let src = cmds(&["tissues", "dataset Eb brain", "lineage"]);
        let plan = Plan::identity(&src);
        assert!(plan.is_identity());
        assert_eq!(plan.n_commands(), 3);
        for (i, step) in plan.steps.iter().enumerate() {
            match step {
                Step::Exec { index, cmd } => {
                    assert_eq!(*index, i);
                    assert_eq!(cmd, &src[i]);
                }
                other => panic!("identity plan contains {other:?}"),
            }
        }
    }

    #[test]
    fn canonicalize_merges_self_union_into_intersect() {
        let canon = canonicalize_cmd(&cmd("compare c g g union 2"));
        assert_eq!(canon, cmd("compare c g g intersect 2"));
        // Distinct operands keep their op.
        let keep = cmd("compare c g1 g2 union 2");
        assert_eq!(canonicalize_cmd(&keep), keep);
        // Difference is never touched.
        let keep = cmd("compare c g g difference 4");
        assert_eq!(canonicalize_cmd(&keep), keep);
    }

    #[test]
    fn canonicalize_recurses_through_check_pipelines() {
        let c = cmd("check compare c g g union 2 ; lineage");
        let canon = canonicalize_cmd(&c);
        assert_eq!(canon, cmd("check compare c g g intersect 2 ; lineage"));
        // The cache key unifies the two spellings.
        assert_eq!(
            cache_key(&c),
            cache_key(&cmd("check compare c g g intersect 2 ; lineage"))
        );
        assert_ne!(
            cache_key(&cmd("check compare c g1 g2 union 2")),
            cache_key(&cmd("check compare c g1 g2 intersect 2"))
        );
    }

    #[test]
    fn canonicalize_is_a_fixpoint() {
        for line in [
            "compare c g g union 13",
            "compare c g g intersect 1",
            "compare c a b difference 4",
            "check compare c g g union 2 ; show gap c",
            "tissues",
            "gap g s1 s2",
        ] {
            let once = canonicalize_cmd(&cmd(line));
            assert_eq!(canonicalize_cmd(&once), once, "{line}");
            assert_eq!(cache_key(&once), cache_key(&cmd(line)), "{line}");
        }
    }

    #[test]
    fn checked_optimize_falls_back_to_identity_on_static_errors() {
        let seed = SymbolSeed::default();
        // `gap` over undefined SUMYs is a static error under an empty seed:
        // the guard must refuse to fuse.
        let src = cmds(&["gap g s1 s2", "topgap g 5"]);
        let plan = optimize_checked(&seed, &src);
        assert!(plan.is_identity());
    }
}
