//! Criterion bench for the intensional-world algebra (§3.3.1: aggregate()
//! is one pass; GAP creation is linear in tags; set operations are
//! merge-joins over sorted tag lists).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gea_bench::workloads::populate_workload;
use gea_core::gap::diff;
use gea_core::setops::{gap_intersect, gap_minus, gap_union};
use gea_core::sumy::aggregate;
use gea_core::topgap::{top_gaps, TopGapOrder};
use gea_sage::library::LibraryId;

fn bench_algebra(c: &mut Criterion) {
    let mut agg_group = c.benchmark_group("aggregate");
    for n_tags in [5_000usize, 10_000, 20_000] {
        let w = populate_workload(n_tags, 50, 5, 0.75, 3);
        agg_group.bench_with_input(BenchmarkId::from_parameter(n_tags), &n_tags, |b, _| {
            b.iter(|| black_box(aggregate("s", &w.table.matrix)))
        });
    }
    agg_group.finish();

    // diff() and the set ops at 20k tags.
    let w = populate_workload(20_000, 50, 5, 0.75, 3);
    let first_half: Vec<LibraryId> = (0..25).map(LibraryId).collect();
    let second_half: Vec<LibraryId> = (25..50).map(LibraryId).collect();
    let s1 = aggregate("s1", &w.table.with_libraries("a", &first_half).matrix);
    let s2 = aggregate("s2", &w.table.with_libraries("b", &second_half).matrix);
    let g1 = diff("g1", &s1, &s2);
    let g2 = diff("g2", &s2, &s1);

    let mut group = c.benchmark_group("gap_ops_20k_tags");
    group.bench_function("diff", |b| b.iter(|| black_box(diff("g", &s1, &s2))));
    group.bench_function("intersect", |b| {
        b.iter(|| black_box(gap_intersect("i", &g1, &g2)))
    });
    group.bench_function("union", |b| b.iter(|| black_box(gap_union("u", &g1, &g2))));
    group.bench_function("minus", |b| b.iter(|| black_box(gap_minus("m", &g1, &g2))));
    group.bench_function("top_gap_100", |b| {
        b.iter(|| black_box(top_gaps(&g1, 100, TopGapOrder::LargestMagnitude)))
    });
    group.finish();
}

criterion_group!(benches, bench_algebra);
criterion_main!(benches);
