//! Criterion bench for the rotated physical layout (§4.6.1): tag-wise
//! aggregation walks contiguous memory in the rotated (tag-major) layout
//! but strides in the naive (library-major) layout. This is the ablation
//! justifying Figure 4.30's design.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gea_bench::workloads::populate_workload;
use gea_sage::library::LibraryId;
use gea_sage::tag::TagId;

fn bench_layout(c: &mut Criterion) {
    let w = populate_workload(30_000, 100, 5, 0.75, 5);
    let matrix = &w.table.matrix;

    let mut group = c.benchmark_group("layout");
    // Rotated layout: per-tag sum over contiguous rows.
    group.bench_function("tag_sums_rotated_contiguous", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for t in 0..matrix.n_tags() {
                let row = matrix.tag_row(TagId(t as u32));
                acc += row.iter().sum::<f64>();
            }
            black_box(acc)
        })
    });
    // The same totals computed the "conceptual" way: per-library strided
    // access (what a naive libraries-as-rows layout would pay for tag-wise
    // work).
    group.bench_function("tag_sums_strided_conceptual", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for l in 0..matrix.n_libraries() {
                let lib = LibraryId(l as u32);
                for t in 0..matrix.n_tags() {
                    acc += matrix.value(TagId(t as u32), lib);
                }
            }
            black_box(acc)
        })
    });
    // Library-column materialization, the rotated layout's slow direction.
    group.bench_function("library_column_gather", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for l in 0..matrix.n_libraries() {
                acc += matrix
                    .library_column(LibraryId(l as u32))
                    .iter()
                    .sum::<f64>();
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
