//! Criterion bench for fascicle mining (§3.3.1 complexity claims): scaling
//! in records and attributes, and the batch-size ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gea_cluster::dataset::Dataset;
use gea_cluster::{mine_greedy, FascicleParams, ToleranceVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Records clustered into groups of 4 with per-attribute agreement.
fn clustered_dataset(n_records: usize, n_attrs: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_groups = n_records.div_ceil(4);
    let centers: Vec<Vec<f64>> = (0..n_groups)
        .map(|_| (0..n_attrs).map(|_| rng.gen_range(0.0..100.0)).collect())
        .collect();
    let rows: Vec<Vec<f64>> = (0..n_records)
        .map(|r| {
            centers[r / 4]
                .iter()
                .map(|c| c + rng.gen_range(-1.0..1.0))
                .collect()
        })
        .collect();
    Dataset::from_records(&rows)
}

fn bench_mine(c: &mut Criterion) {
    // Scaling in attributes at fixed record count (linear per §3.3.1).
    let mut attrs_group = c.benchmark_group("mine_attrs_scaling");
    attrs_group.sample_size(20);
    for n_attrs in [500usize, 1_000, 2_000] {
        let data = clustered_dataset(24, n_attrs, 7);
        let tol = ToleranceVector::from_width_fraction(&data, 0.10);
        let params = FascicleParams {
            min_compact_attrs: n_attrs / 2,
            min_records: 3,
            batch_size: 6,
        };
        attrs_group.bench_with_input(BenchmarkId::from_parameter(n_attrs), &n_attrs, |b, _| {
            b.iter(|| black_box(mine_greedy(&data, &tol, &params)))
        });
    }
    attrs_group.finish();

    // Scaling in records at fixed attribute count.
    let mut records_group = c.benchmark_group("mine_records_scaling");
    records_group.sample_size(10);
    for n_records in [12usize, 24, 36] {
        let data = clustered_dataset(n_records, 1_000, 7);
        let tol = ToleranceVector::from_width_fraction(&data, 0.10);
        let params = FascicleParams {
            min_compact_attrs: 500,
            min_records: 3,
            batch_size: 6,
        };
        records_group.bench_with_input(
            BenchmarkId::from_parameter(n_records),
            &n_records,
            |b, _| b.iter(|| black_box(mine_greedy(&data, &tol, &params))),
        );
    }
    records_group.finish();

    // Batch-size ablation (the thesis GUI's "chunk" parameter).
    let data = clustered_dataset(24, 1_000, 7);
    let tol = ToleranceVector::from_width_fraction(&data, 0.10);
    let mut batch_group = c.benchmark_group("mine_batch_size");
    batch_group.sample_size(20);
    for batch in [2usize, 6, 12, 24] {
        let params = FascicleParams {
            min_compact_attrs: 500,
            min_records: 3,
            batch_size: batch,
        };
        batch_group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| black_box(mine_greedy(&data, &tol, &params)))
        });
    }
    batch_group.finish();
}

criterion_group!(benches, bench_mine);
criterion_main!(benches);
