//! Criterion bench comparing the runtime of the clustering algorithms on
//! the same expression data (quality comparison lives in
//! `repro --exp baselines`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gea_cluster::{
    agglomerate, kmeans, mine_greedy, som, FascicleParams, KMeansParams, Linkage, Metric,
    SomParams, ToleranceVector,
};
use gea_core::mine::MatrixView;
use gea_core::EnumTable;
use gea_sage::clean::{clean, CleaningConfig};
use gea_sage::generate::{generate, GeneratorConfig};

fn bench_clustering(c: &mut Criterion) {
    let (corpus, _) = generate(&GeneratorConfig::demo(42));
    let (matrix, _) = clean(&corpus, &CleaningConfig::default());
    let table = EnumTable::new("SAGE", matrix);
    let view = MatrixView::new(&table);
    let tol = ToleranceVector::from_width_fraction(&view, 0.10);
    let k = table.n_tags() / 2;

    let mut group = c.benchmark_group("clustering_21libs");
    group.sample_size(10);
    group.bench_function("fascicles", |b| {
        let params = FascicleParams {
            min_compact_attrs: k,
            min_records: 3,
            batch_size: 6,
        };
        b.iter(|| black_box(mine_greedy(&view, &tol, &params)))
    });
    group.bench_function("kmeans_k3", |b| {
        let params = KMeansParams {
            k: 3,
            max_iters: 100,
            seed: 42,
        };
        b.iter(|| black_box(kmeans(&view, &params)))
    });
    group.bench_function("hierarchical_correlation", |b| {
        b.iter(|| black_box(agglomerate(&view, Metric::Correlation, Linkage::Average)))
    });
    group.bench_function("som_1x3", |b| {
        let params = SomParams {
            rows: 1,
            cols: 3,
            epochs: 30,
            learning_rate: 0.5,
            seed: 42,
        };
        b.iter(|| black_box(som(&view, &params)))
    });
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
