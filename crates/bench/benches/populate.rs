//! Criterion bench for the Table 3.2 experiment: populate() evaluation
//! strategies at varying index-hit counts, plus the rotated-layout
//! sequential baseline. Smaller than the `repro` run so `cargo bench`
//! stays minutes, not hours; shapes match the full-size experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gea_bench::populate_experiment::experiment_sumy;
use gea_bench::workloads::populate_workload;
use gea_core::populate::{populate_columnar, populate_indexed, populate_scan, PopulateIndex};

fn bench_populate(c: &mut Criterion) {
    let workload = populate_workload(10_000, 100, 5, 0.75, 2002);
    let table = &workload.table;
    let sumy = experiment_sumy(table, &workload.members, 4_000, 2002);

    let mut group = c.benchmark_group("populate");
    group.bench_function("scan_library_at_a_time", |b| {
        b.iter(|| black_box(populate_scan(&sumy, table)))
    });
    group.bench_function("scan_columnar_rotated", |b| {
        b.iter(|| black_box(populate_columnar(&sumy, table)))
    });
    for w in [1usize, 2, 4, 8] {
        let tags: Vec<_> = sumy.tags().take(w).collect();
        let index = PopulateIndex::build_on(table, &tags);
        group.bench_with_input(BenchmarkId::new("indexed", w), &w, |b, _| {
            b.iter(|| black_box(populate_indexed(&sumy, table, &index)))
        });
    }
    group.finish();

    // Index construction cost: entropy-ranked choice over the whole table.
    let mut build = c.benchmark_group("populate_index_build");
    for m in [8usize, 32] {
        build.bench_with_input(BenchmarkId::new("top_entropy", m), &m, |b, &m| {
            b.iter(|| black_box(PopulateIndex::build_top_entropy(table, m, 16)))
        });
    }
    build.finish();
}

criterion_group!(benches, bench_populate);
criterion_main!(benches);
