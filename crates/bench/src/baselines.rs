//! Baseline comparison: Fascicles vs the clustering algorithms the thesis
//! surveys (k-means, hierarchical average-linkage with correlation
//! distance, SOM), scored on how well each recovers the planted structure
//! of a generated corpus.

use gea_cluster::dataset::{AttrSource, Dataset};
use gea_cluster::eval::{n_clusters, purity, rand_index};
use gea_cluster::{
    agglomerate, kmeans, mine_greedy, som, FascicleParams, KMeansParams, Linkage, Metric,
    SomParams, ToleranceVector,
};
use gea_core::mine::MatrixView;
use gea_core::EnumTable;
use gea_sage::{NeoplasticState, TissueType};

/// One algorithm's score at recovering cancer/normal structure.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Cluster purity against the cancer/normal labels.
    pub purity: f64,
    /// Rand index against the same labels.
    pub rand_index: f64,
    /// Number of clusters produced.
    pub clusters: usize,
    /// Libraries covered (fascicles may leave records unassigned).
    pub covered: usize,
}

/// Cancer/normal labels of an ENUM table's libraries.
pub fn neoplastic_labels(table: &EnumTable) -> Vec<usize> {
    table
        .libraries()
        .iter()
        .map(|m| match m.state {
            NeoplasticState::Cancerous => 0,
            NeoplasticState::Normal => 1,
        })
        .collect()
}

/// Tissue-type labels of an ENUM table's libraries (densely renumbered).
/// Ng et al. 2001 found that "most of the clusters consist of just one
/// tissue type" — tissue recovery is the crispest planted signal.
pub fn tissue_labels(table: &EnumTable) -> Vec<usize> {
    let mut tissues: Vec<TissueType> = Vec::new();
    table
        .libraries()
        .iter()
        .map(|m| {
            if let Some(i) = tissues.iter().position(|t| *t == m.tissue) {
                i
            } else {
                tissues.push(m.tissue.clone());
                tissues.len() - 1
            }
        })
        .collect()
}

/// Score every algorithm on one tissue data set with known labels.
///
/// `fascicle_k_fraction` is the compact-attribute threshold as a fraction
/// of the tag count; the sweep mirrors what a GEA user does.
pub fn compare_baselines(
    table: &EnumTable,
    labels: &[usize],
    fascicle_k_fractions: &[f64],
    seed: u64,
) -> Vec<BaselineRow> {
    let view = MatrixView::new(table);
    let n = table.n_libraries();
    // Distance-based baselines cluster on log-transformed levels, as the
    // expression-analysis literature the thesis surveys does (Eisen et al.
    // work on log ratios); raw levels let a handful of very abundant tags
    // dominate Euclidean and correlation structure.
    let log_view = Dataset::from_records(
        &(0..n)
            .map(|r| {
                view.record_vector(r)
                    .into_iter()
                    .map(|v| (1.0 + v).ln())
                    .collect::<Vec<f64>>()
            })
            .collect::<Vec<_>>(),
    );
    let k_classes = {
        let mut distinct = labels.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        distinct.len()
    };
    let mut rows = Vec::new();

    // Fascicles: libraries in a mined fascicle share its cluster id;
    // unassigned libraries each form a singleton (they are "unclustered").
    let tol = ToleranceVector::from_width_fraction(&view, 0.10);
    let mut best: Option<BaselineRow> = None;
    for &frac in fascicle_k_fractions {
        let params = FascicleParams {
            min_compact_attrs: ((table.n_tags() as f64) * frac) as usize,
            min_records: 2,
            batch_size: 6,
        };
        let fascicles = mine_greedy(&view, &tol, &params);
        let mut assignment = vec![usize::MAX; n];
        let mut covered = 0;
        for (c, f) in fascicles.iter().enumerate() {
            for &r in &f.records {
                if assignment[r] == usize::MAX {
                    assignment[r] = c;
                    covered += 1;
                }
            }
        }
        let mut next = fascicles.len();
        for a in assignment.iter_mut() {
            if *a == usize::MAX {
                *a = next;
                next += 1;
            }
        }
        let row = BaselineRow {
            algorithm: format!("fascicles(k={:.0}%)", frac * 100.0),
            purity: purity(&assignment, labels),
            rand_index: rand_index(&assignment, labels),
            clusters: n_clusters(&assignment),
            covered,
        };
        let better = best
            .as_ref()
            .map(|b| row.rand_index > b.rand_index)
            .unwrap_or(true);
        if better && covered > 0 {
            best = Some(row);
        }
    }
    if let Some(b) = best {
        rows.push(b);
    }

    // k-means with k = number of true classes.
    let km = kmeans(
        &log_view,
        &KMeansParams {
            k: k_classes,
            max_iters: 100,
            seed,
        },
    );
    rows.push(BaselineRow {
        algorithm: "k-means".to_string(),
        purity: purity(&km.assignments, labels),
        rand_index: rand_index(&km.assignments, labels),
        clusters: n_clusters(&km.assignments),
        covered: n,
    });

    // Hierarchical average-linkage, correlation distance, cut at k.
    let dendrogram = agglomerate(&log_view, Metric::Correlation, Linkage::Average);
    let hc = dendrogram.cut(k_classes);
    rows.push(BaselineRow {
        algorithm: "hierarchical(avg, 1-r)".to_string(),
        purity: purity(&hc, labels),
        rand_index: rand_index(&hc, labels),
        clusters: n_clusters(&hc),
        covered: n,
    });

    // SOM on a 1×k grid (the Golub et al. setup).
    let s = som(
        &log_view,
        &SomParams {
            rows: 1,
            cols: k_classes,
            epochs: 60,
            learning_rate: 0.5,
            seed,
        },
    );
    let sc = s.clusters();
    rows.push(BaselineRow {
        algorithm: "som(1xk)".to_string(),
        purity: purity(&sc, labels),
        rand_index: rand_index(&sc, labels),
        clusters: n_clusters(&sc),
        covered: n,
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_sage::clean::{clean, CleaningConfig};
    use gea_sage::generate::{generate, GeneratorConfig};
    use gea_sage::TissueType;

    #[test]
    fn tissue_structure_is_recovered() {
        // Ng et al. 2001's observation: clusters align with tissue type.
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        let (matrix, _) = clean(&corpus, &CleaningConfig::default());
        let base = EnumTable::new("SAGE", matrix);
        let labels = tissue_labels(&base);
        let rows = compare_baselines(&base, &labels, &[0.5, 0.4, 0.3], 42);
        assert!(rows.len() >= 4, "expected all four algorithms: {rows:?}");
        // Tissue separation is crisp: the distance-based algorithms should
        // recover it near-perfectly.
        assert!(
            rows.iter().any(|r| r.rand_index > 0.9),
            "no algorithm recovered tissue structure: {rows:?}"
        );
        assert!(
            rows.iter().filter(|r| r.purity >= 0.9).count() >= 2,
            "tissue purity too low: {rows:?}"
        );
    }

    #[test]
    fn neoplastic_split_is_harder_but_above_chance() {
        // Within one tissue, cancer/normal separation is confounded by the
        // scattered outside-fascicle cancer libraries — purity stays high
        // even when the two-way split is imperfect.
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        let (matrix, _) = clean(&corpus, &CleaningConfig::default());
        let base = EnumTable::new("SAGE", matrix);
        let brain = base.select_tissue("Ebrain", &TissueType::Brain);
        let labels = neoplastic_labels(&brain);
        let rows = compare_baselines(&brain, &labels, &[0.6, 0.5, 0.4], 42);
        for row in &rows {
            assert!(
                row.purity >= 0.5,
                "{} purity {:.2} below chance",
                row.algorithm,
                row.purity
            );
        }
        assert!(rows.iter().any(|r| r.purity >= 0.8), "{rows:?}");
    }
}
