//! Mining-backend comparison behind `BENCH_mine_backends.json`.
//!
//! Runs every registry backend — `fascicles`, `isa`, `simplex` — over the
//! same thesis-scale synthetic corpus, first through the serial
//! `MineBackend::mine` path and then through its `gea-exec` sharded
//! driver, recording wall times, the speedup, the cluster count, and
//! whether the sharded output was byte-identical to the serial one. Like
//! `BENCH_parallel.json`, the identity column doubles as an end-to-end
//! determinism check on real workload data: the nightly CI run fails if
//! any backend's sharded driver diverges.

use std::time::Instant;

use gea_cluster::FascicleParams;
use gea_core::mine::{generate_metadata, mine, MinedCluster, Miner};
use gea_core::ExecConfig;
use gea_exec::{isa_mine_sharded, mine_sharded, simplex_mine_sharded};
use gea_mine::isa::IsaParams;
use gea_mine::simplex::SimplexParams;
use gea_mine::{backend, resolve_params, MineInput, ParamValue, ResolvedParams};

use crate::workloads::populate_workload;

/// Shape of the backend-comparison experiment.
#[derive(Debug, Clone)]
pub struct MineBackendsConfig {
    /// Tags in the mined corpus.
    pub n_tags: usize,
    /// Libraries in the mined corpus.
    pub n_libs: usize,
    /// Clustered member libraries planted by the workload generator.
    pub n_members: usize,
    /// Member window width (cluster-tightness knob).
    pub member_width: f64,
    /// Worker threads for the sharded runs (serial runs always use 1).
    pub threads: usize,
    /// Timed repetitions per backend; the minimum wall time is kept.
    pub repetitions: usize,
    /// RNG seed for the synthetic corpus.
    pub seed: u64,
}

impl Default for MineBackendsConfig {
    fn default() -> MineBackendsConfig {
        MineBackendsConfig {
            n_tags: 6_000,
            n_libs: 100,
            n_members: 5,
            member_width: 0.75,
            threads: 4,
            repetitions: 3,
            seed: 2002,
        }
    }
}

impl MineBackendsConfig {
    /// A seconds-scale variant for CI smoke runs.
    pub fn fast() -> MineBackendsConfig {
        MineBackendsConfig {
            n_tags: 800,
            n_libs: 60,
            n_members: 4,
            member_width: 0.7,
            threads: 4,
            repetitions: 1,
            seed: 7,
        }
    }
}

/// One backend's serial-vs-sharded measurement.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Registry backend name.
    pub backend: &'static str,
    /// Serial wall time, milliseconds (minimum over repetitions).
    pub serial_ms: f64,
    /// Sharded wall time, milliseconds (minimum over repetitions).
    pub sharded_ms: f64,
    /// `serial_ms / sharded_ms`.
    pub speedup: f64,
    /// Clusters the backend mined (serial == sharded when `identical`).
    pub clusters: usize,
    /// Whether the sharded result equalled the serial result exactly.
    pub identical: bool,
}

fn time_min<T>(repetitions: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        out = Some(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (out.unwrap(), best)
}

fn clusters_identical(a: &[MinedCluster], b: &[MinedCluster]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.libraries == y.libraries
                && x.compact_tags == y.compact_tags
                && x.sumy == y.sumy
        })
}

fn resolved_for(name: &str, given: &[(String, ParamValue)]) -> ResolvedParams {
    let b = backend(name).expect("registry backend");
    resolve_params(b.params(), given).expect("bench params in domain")
}

/// Run the experiment: one [`BackendRow`] per registry backend, sharded
/// runs at `cfg.threads` workers with one shard per worker.
pub fn run(cfg: &MineBackendsConfig) -> Vec<BackendRow> {
    let exec = ExecConfig::with_threads(cfg.threads.max(1));
    let w = populate_workload(
        cfg.n_tags,
        cfg.n_libs,
        cfg.n_members,
        cfg.member_width,
        cfg.seed,
    );
    let table = &w.table;
    let mut rows = Vec::new();

    // fascicles: the historic path (serial `mine` vs `mine_sharded`).
    let tol = generate_metadata(table, gea_mine::WIDTH_FRACTION);
    let miner = Miner::Fascicles(FascicleParams {
        min_compact_attrs: cfg.n_tags / 2,
        min_records: 2,
        batch_size: 6,
    });
    let (serial, serial_ms) =
        time_min(cfg.repetitions, || mine(table, "bench", &miner, Some(&tol)));
    let (sharded, sharded_ms) = time_min(cfg.repetitions, || {
        mine_sharded(table, "bench", &miner, Some(&tol), &exec)
    });
    rows.push(BackendRow {
        backend: "fascicles",
        serial_ms,
        sharded_ms,
        speedup: serial_ms / sharded_ms.max(1e-9),
        clusters: serial.len(),
        identical: clusters_identical(&serial, &sharded.0),
    });

    // isa: seed fan-out. Loose thresholds so modules survive on the
    // synthetic corpus and the fan-out has real work per seed.
    let isa_given = vec![
        ("seeds".to_string(), ParamValue::UInt(32)),
        ("t_tags".to_string(), ParamValue::Float(1.0)),
        ("t_libs".to_string(), ParamValue::Float(1.0)),
    ];
    let resolved = resolved_for("isa", &isa_given);
    let isa = backend("isa").unwrap();
    let (serial, serial_ms) = time_min(cfg.repetitions, || {
        isa.mine(&MineInput {
            table,
            base_name: "bench",
            params: &resolved,
        })
    });
    let params = IsaParams::from_resolved(&resolved);
    let (sharded, sharded_ms) = time_min(cfg.repetitions, || {
        isa_mine_sharded(table, "bench", &params, &exec)
    });
    rows.push(BackendRow {
        backend: "isa",
        serial_ms,
        sharded_ms,
        speedup: serial_ms / sharded_ms.max(1e-9),
        clusters: serial.len(),
        identical: clusters_identical(&serial, &sharded.0),
    });

    // simplex: per-round assignment fan-out.
    let spx_given = vec![("k".to_string(), ParamValue::UInt(4))];
    let resolved = resolved_for("simplex", &spx_given);
    let simplex = backend("simplex").unwrap();
    let (serial, serial_ms) = time_min(cfg.repetitions, || {
        simplex.mine(&MineInput {
            table,
            base_name: "bench",
            params: &resolved,
        })
    });
    let params = SimplexParams::from_resolved(&resolved);
    let (sharded, sharded_ms) = time_min(cfg.repetitions, || {
        simplex_mine_sharded(table, "bench", &params, &exec)
    });
    rows.push(BackendRow {
        backend: "simplex",
        serial_ms,
        sharded_ms,
        speedup: serial_ms / sharded_ms.max(1e-9),
        clusters: serial.len(),
        identical: clusters_identical(&serial, &sharded.0),
    });

    rows
}

/// Render the rows as the `BENCH_mine_backends.json` document.
pub fn to_json(cfg: &MineBackendsConfig, rows: &[BackendRow]) -> String {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"mine_backends\",\n");
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str(&format!("  \"threads\": {},\n", cfg.threads));
    out.push_str(&format!(
        "  \"corpus\": {{\"n_tags\": {}, \"n_libs\": {}, \"n_members\": {}, \"member_width\": {}, \"seed\": {}}},\n",
        cfg.n_tags, cfg.n_libs, cfg.n_members, cfg.member_width, cfg.seed
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"serial_ms\": {:.3}, \"sharded_ms\": {:.3}, \"speedup\": {:.3}, \"clusters\": {}, \"identical\": {}}}{}\n",
            r.backend,
            r.serial_ms,
            r.sharded_ms,
            r.speedup,
            r.clusters,
            r.identical,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_is_identical_and_renders() {
        let cfg = MineBackendsConfig {
            n_tags: 150,
            n_libs: 20,
            n_members: 3,
            member_width: 0.7,
            threads: 2,
            repetitions: 1,
            seed: 11,
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 3);
        assert!(
            rows.iter().all(|r| r.identical),
            "sharded != serial: {rows:?}"
        );
        let json = to_json(&cfg, &rows);
        for name in ["fascicles", "isa", "simplex"] {
            assert!(json.contains(&format!("\"backend\": \"{name}\"")), "{json}");
        }
        assert!(!json.contains("identical\": false"));
    }
}
