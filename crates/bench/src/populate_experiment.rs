//! The Table 3.2 experiment: populate() time saved per index hit.
//!
//! Thesis §3.3.2 measures, for `w = 0..10` index hits, the percentage of
//! populate() time saved over a sequential evaluation. The sequential
//! baseline fetches every library's expression vector over the SUMY's `p`
//! tags and verifies it (the thesis's JDBC fetch-then-check pattern, where
//! the whole vector crosses the driver regardless of which condition fails
//! first); the contender probes `w` forced-hit indexes, intersects their
//! candidate lists, and fetches only the survivors. The primary metric is
//! therefore *cells fetched*: `n_libs × p` for the scan versus
//! `candidates × p` for the indexed plan — the I/O the thesis's timings
//! were bound by. Wall time of our in-memory implementations (columnar
//! pruning scan vs index + verify) is reported alongside; in memory the
//! sequential scan is cache-friendly enough that the 2001 advantage
//! largely evaporates — see EXPERIMENTS.md.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gea_core::populate::{populate_columnar, populate_indexed, PopulateIndex};
use gea_core::sumy::{aggregate_tags, SumyTable};
use gea_core::EnumTable;
use gea_sage::library::LibraryId;
use gea_sage::tag::TagId;

use crate::workloads::populate_workload;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Table32Config {
    /// Total tags `n` (thesis: 60,000).
    pub n_tags: usize,
    /// Tags in the SUMY table `p` (thesis: 25,000).
    pub p_sumy_tags: usize,
    /// Libraries in the data set (thesis: 100).
    pub n_libs: usize,
    /// Libraries in the cluster the SUMY table defines.
    pub n_members: usize,
    /// Member window width (controls per-condition selectivity).
    pub member_width: f64,
    /// Maximum hit count to sweep.
    pub max_w: usize,
    /// Wall-time measurement repetitions (savings use the minimum).
    pub repetitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table32Config {
    fn default() -> Table32Config {
        Table32Config {
            n_tags: 60_000,
            p_sumy_tags: 25_000,
            n_libs: 100,
            n_members: 5,
            member_width: 0.75,
            max_w: 10,
            repetitions: 5,
            seed: 2002,
        }
    }
}

/// One reproduced row of Table 3.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table32Row {
    /// Index hits forced.
    pub w: usize,
    /// Candidate libraries after index intersection.
    pub candidates: usize,
    /// Percentage of fetched cells saved vs the sequential fetch-then-check
    /// baseline (`1 − candidates/n_libs`) — the thesis's I/O-bound metric.
    pub cell_saving_pct: f64,
    /// Percentage of wall time saved vs the columnar scan.
    pub time_saving_pct: f64,
    /// Indexed wall time (seconds) for reference.
    pub indexed_seconds: f64,
    /// Scan wall time (seconds) for reference.
    pub scan_seconds: f64,
}

/// Build the SUMY query of the experiment: aggregates of the member
/// libraries over `p` randomly chosen tags.
pub fn experiment_sumy(table: &EnumTable, members: &[usize], p: usize, seed: u64) -> SumyTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tag_ids: Vec<TagId> = table.matrix.tag_ids().collect();
    tag_ids.shuffle(&mut rng);
    tag_ids.truncate(p);
    tag_ids.sort();
    let ids: Vec<LibraryId> = members.iter().map(|&m| LibraryId(m as u32)).collect();
    let sub = table.with_libraries("members", &ids);
    aggregate_tags("experiment", &sub.matrix, &tag_ids)
}

fn min_time<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(v);
    }
    (out.expect("at least one repetition"), best)
}

/// Run the Table 3.2 sweep.
pub fn table_3_2(config: &Table32Config) -> Vec<Table32Row> {
    let workload = populate_workload(
        config.n_tags,
        config.n_libs,
        config.n_members,
        config.member_width,
        config.seed,
    );
    let table = &workload.table;
    let sumy = experiment_sumy(table, &workload.members, config.p_sumy_tags, config.seed);

    // Sequential baseline.
    let ((scan_hits, _scan_stats), scan_seconds) =
        min_time(config.repetitions, || populate_columnar(&sumy, table));

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);
    let mut index_order: Vec<_> = sumy.tags().collect();
    // One shuffle, prefix-nested subsets: the w+1 index set extends the w
    // set, so index intersection prunes monotonically in w by construction
    // (per-w reshuffles would make that only probabilistically true).
    index_order.shuffle(&mut rng);
    let mut rows = Vec::with_capacity(config.max_w + 1);
    for w in 0..=config.max_w {
        // Force exactly w hits: indexes on w SUMY tags. (Indexes on
        // non-SUMY tags never probe, so they do not affect the measured
        // evaluation; we omit them.)
        let chosen = index_order[..w].to_vec();
        let index = PopulateIndex::build_on(table, &chosen);
        let ((hits, stats), indexed_seconds) = min_time(config.repetitions, || {
            populate_indexed(&sumy, table, &index)
        });
        assert_eq!(hits, scan_hits, "index evaluation diverged at w = {w}");
        assert_eq!(stats.indexes_hit, w);
        let cell_saving_pct = if w == 0 {
            0.0
        } else {
            // Fetch model: every candidate's whole p-tag vector is read;
            // the scan reads all libraries' vectors.
            100.0 * (1.0 - stats.candidates as f64 / config.n_libs as f64)
        };
        let time_saving_pct = if w == 0 {
            0.0
        } else {
            100.0 * (1.0 - indexed_seconds / scan_seconds)
        };
        rows.push(Table32Row {
            w,
            candidates: stats.candidates,
            cell_saving_pct,
            time_saving_pct,
            indexed_seconds,
            scan_seconds,
        });
    }
    rows
}

/// The entropy-vs-random index-choice ablation: with a budget of `m`
/// indexes chosen from the *whole* tag universe, how many SUMY conditions
/// do they cover, and what do they save? Entropy ranking concentrates the
/// budget on discriminating tags; random choice mostly wastes it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexChoiceRow {
    /// Index budget `m`.
    pub m: usize,
    /// Hits (indexed tags appearing in the SUMY query).
    pub hits_entropy: usize,
    /// Hits under uniform random choice.
    pub hits_random: usize,
    /// Cell saving under entropy choice (%).
    pub saving_entropy_pct: f64,
    /// Cell saving under random choice (%).
    pub saving_random_pct: f64,
}

/// Run the index-choice ablation over budgets `ms`.
pub fn index_choice_ablation(config: &Table32Config, ms: &[usize]) -> Vec<IndexChoiceRow> {
    let workload = populate_workload(
        config.n_tags,
        config.n_libs,
        config.n_members,
        config.member_width,
        config.seed,
    );
    let table = &workload.table;
    let sumy = experiment_sumy(table, &workload.members, config.p_sumy_tags, config.seed);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xab1e);

    let saving = |stats: &gea_core::populate::PopulateStats| {
        100.0 * (1.0 - stats.candidates as f64 / config.n_libs as f64)
    };

    let mut rows = Vec::with_capacity(ms.len());
    for &m in ms {
        let entropy_index = PopulateIndex::build_top_entropy(table, m, 16);
        let (_, entropy_stats) = populate_indexed(&sumy, table, &entropy_index);
        let mut all_tags: Vec<_> = table
            .matrix
            .tag_ids()
            .map(|t| table.matrix.tag_of(t))
            .collect();
        all_tags.shuffle(&mut rng);
        all_tags.truncate(m);
        let random_index = PopulateIndex::build_on(table, &all_tags);
        let (_, random_stats) = populate_indexed(&sumy, table, &random_index);
        rows.push(IndexChoiceRow {
            m,
            hits_entropy: entropy_stats.indexes_hit,
            hits_random: random_stats.indexes_hit,
            saving_entropy_pct: if entropy_stats.indexes_hit == 0 {
                0.0
            } else {
                saving(&entropy_stats)
            },
            saving_random_pct: if random_stats.indexes_hit == 0 {
                0.0
            } else {
                saving(&random_stats)
            },
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Table32Config {
        Table32Config {
            n_tags: 2_000,
            p_sumy_tags: 800,
            n_libs: 60,
            n_members: 4,
            member_width: 0.7,
            max_w: 6,
            repetitions: 1,
            seed: 7,
        }
    }

    #[test]
    fn savings_grow_with_hits_and_match_the_thesis_shape() {
        let rows = table_3_2(&small_config());
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].cell_saving_pct, 0.0);
        // Monotone non-decreasing candidate pruning.
        for pair in rows.windows(2) {
            assert!(pair[1].candidates <= pair[0].candidates);
        }
        // One hit already saves substantially; several hits approach the
        // member floor (thesis: 45% at w=1 rising to ~90%).
        assert!(
            rows[1].cell_saving_pct > 20.0,
            "w=1 saving {:.0}%",
            rows[1].cell_saving_pct
        );
        assert!(
            rows[6].cell_saving_pct > rows[1].cell_saving_pct,
            "savings should grow with w"
        );
        assert!(rows[6].cell_saving_pct > 60.0);
    }

    #[test]
    fn entropy_choice_beats_random_choice() {
        // In this workload every tag has similar entropy, so the ablation
        // mainly checks plumbing: both choices produce valid savings and
        // hit counts within budget.
        let rows = index_choice_ablation(&small_config(), &[0, 8, 32]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].hits_entropy, 0);
        for r in &rows {
            assert!(r.hits_entropy <= r.m && r.hits_random <= r.m);
        }
    }
}
