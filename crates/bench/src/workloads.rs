//! Shared synthetic workloads for the experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gea_core::EnumTable;
use gea_sage::corpus::library_meta;
use gea_sage::library::{NeoplasticState, TissueSource};
use gea_sage::tag::{Tag, TagUniverse};
use gea_sage::{ExpressionMatrix, TissueType};

/// A populate() workload shaped like the thesis's test case: `n_tags` total
/// tags over `n_libs` libraries, with `n_members` libraries forming a tight
/// cluster whose per-tag ranges are narrower than the population spread.
pub struct PopulateWorkload {
    /// The ENUM table being populated.
    pub table: EnumTable,
    /// The clustered member libraries (the populate answer, by
    /// construction).
    pub members: Vec<usize>,
}

/// Build a populate workload.
///
/// Every tag's population values are uniform on `[0, 1]`; the member
/// libraries instead draw from a window of width `member_width` at a
/// random per-tag center, so one member-range condition retains a random
/// library with probability ≈ `member_width × (k−1)/(k+1)` — tuned near
/// 0.5 at the default width, matching the selectivity Table 3.2's savings
/// imply.
pub fn populate_workload(
    n_tags: usize,
    n_libs: usize,
    n_members: usize,
    member_width: f64,
    seed: u64,
) -> PopulateWorkload {
    assert!(n_members <= n_libs);
    let mut rng = StdRng::seed_from_u64(seed);
    // Distinct tags: stride through the code space.
    let universe = TagUniverse::from_tags(
        (0..n_tags as u32)
            .map(|i| Tag::from_code(i * (gea_sage::tag::TAG_SPACE / n_tags as u32)).unwrap()),
    );
    assert_eq!(universe.len(), n_tags, "tag stride produced collisions");
    let libs = (0..n_libs)
        .map(|i| {
            library_meta(
                &format!("L{i:03}"),
                TissueType::Brain,
                if i < n_members {
                    NeoplasticState::Cancerous
                } else {
                    NeoplasticState::Normal
                },
                TissueSource::BulkTissue,
            )
        })
        .collect();
    let mut rows = Vec::with_capacity(n_tags);
    for _ in 0..n_tags {
        let center: f64 = rng.gen_range(member_width / 2.0..1.0 - member_width / 2.0);
        let mut row = Vec::with_capacity(n_libs);
        for l in 0..n_libs {
            let v = if l < n_members {
                rng.gen_range(center - member_width / 2.0..center + member_width / 2.0)
            } else {
                rng.gen_range(0.0..1.0)
            };
            row.push(v);
        }
        rows.push(row);
    }
    let matrix = ExpressionMatrix::from_rows(universe, libs, rows);
    PopulateWorkload {
        table: EnumTable::new("populate_workload", matrix),
        members: (0..n_members).collect(),
    }
}

/// A generated, cleaned demo-scale session corpus shared by the case-study
/// experiments.
pub fn demo_matrix(seed: u64) -> (gea_sage::SageCorpus, gea_sage::GroundTruth) {
    gea_sage::generate(&gea_sage::GeneratorConfig::demo(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_core::populate::populate_scan;
    use gea_core::sumy::aggregate;
    use gea_sage::library::LibraryId;

    #[test]
    fn workload_members_are_the_populate_answer() {
        let w = populate_workload(500, 40, 5, 0.7, 1);
        let ids: Vec<LibraryId> = w.members.iter().map(|&m| LibraryId(m as u32)).collect();
        let sub = w.table.with_libraries("members", &ids);
        let sumy = aggregate("def", &sub.matrix);
        let (hits, _) = populate_scan(&sumy, &w.table);
        // All members qualify; with 500 conjunctive conditions, non-members
        // are (essentially surely) excluded.
        assert_eq!(hits, ids);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = populate_workload(100, 10, 3, 0.7, 9);
        let b = populate_workload(100, 10, 3, 0.7, 9);
        assert_eq!(a.table.matrix, b.table.matrix);
    }
}
