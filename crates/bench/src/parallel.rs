//! Serial-vs-sharded speedup experiment behind `BENCH_parallel.json`.
//!
//! Runs each parallelized operator — `populate`, `aggregate`, `mine` —
//! first through the serial `gea-core` path and then through the
//! `gea-exec` sharded driver at a configured thread count, over the
//! thesis-scale [`populate_workload`] corpus. Each row records both wall
//! times, the speedup, and whether the sharded result was byte-identical
//! to the serial one (it must be — that is `gea-exec`'s contract, and the
//! bench re-verifies it on real data rather than trusting the unit suite).
//!
//! Speedup is bounded by the host: the emitted JSON records
//! `host_parallelism` so a ~1× result on a single-core runner is
//! distinguishable from a determinism regression (which would show up as
//! `identical: false`, never as a slow-but-correct run).

use std::time::Instant;

use gea_cluster::FascicleParams;
use gea_core::mine::{generate_metadata, mine, MinedCluster, Miner};
use gea_core::populate::populate;
use gea_core::sumy::aggregate;
use gea_core::ExecConfig;
use gea_exec::{aggregate_sharded, mine_sharded, populate_sharded};
use gea_sage::library::LibraryId;

use crate::workloads::populate_workload;

/// Shape of the speedup experiment.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Tags in the populate/aggregate corpus (thesis scale: 60,000).
    pub n_tags: usize,
    /// Tags in the (smaller) mining corpus — greedy fascicle mining is
    /// quadratic-ish in practice, so it gets its own scale knob.
    pub mine_tags: usize,
    /// Libraries in both corpora.
    pub n_libs: usize,
    /// Clustered member libraries (the populate answer by construction).
    pub n_members: usize,
    /// Member window width (per-condition selectivity knob).
    pub member_width: f64,
    /// Worker threads for the sharded runs (the serial runs always use 1).
    pub threads: usize,
    /// Timed repetitions per operator; the minimum wall time is kept.
    pub repetitions: usize,
    /// RNG seed for the synthetic corpora.
    pub seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            n_tags: 60_000,
            mine_tags: 6_000,
            n_libs: 100,
            n_members: 5,
            member_width: 0.75,
            threads: 4,
            repetitions: 3,
            seed: 2002,
        }
    }
}

impl ParallelConfig {
    /// A seconds-scale variant for CI smoke runs.
    pub fn fast() -> ParallelConfig {
        ParallelConfig {
            n_tags: 4_000,
            mine_tags: 800,
            n_libs: 60,
            n_members: 4,
            member_width: 0.7,
            threads: 4,
            repetitions: 1,
            seed: 7,
        }
    }
}

/// One operator's serial-vs-sharded measurement.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Operator name (`populate`, `aggregate`, `mine`).
    pub op: &'static str,
    /// Shards the sharded run split the input into.
    pub shards: usize,
    /// Serial wall time, milliseconds (minimum over repetitions).
    pub serial_ms: f64,
    /// Sharded wall time, milliseconds (minimum over repetitions).
    pub sharded_ms: f64,
    /// `serial_ms / sharded_ms`.
    pub speedup: f64,
    /// Whether the sharded result equalled the serial result exactly.
    pub identical: bool,
}

/// Time `a` and `b` over interleaved repetitions (A B A B …), returning
/// each side's last result and minimum wall time in milliseconds. The
/// interleaving keeps the comparison honest: in back-to-back blocks,
/// whichever side ran second inherited a warmed cache and a settled
/// allocator from the first.
fn time_pair<A, B>(
    repetitions: usize,
    mut a: impl FnMut() -> A,
    mut b: impl FnMut() -> B,
) -> ((A, f64), (B, f64)) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    let (mut out_a, mut out_b) = (None, None);
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        out_a = Some(a());
        best_a = best_a.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        out_b = Some(b());
        best_b = best_b.min(start.elapsed().as_secs_f64() * 1e3);
    }
    ((out_a.unwrap(), best_a), (out_b.unwrap(), best_b))
}

fn row(
    op: &'static str,
    shards: usize,
    serial_ms: f64,
    sharded_ms: f64,
    identical: bool,
) -> ParallelRow {
    ParallelRow {
        op,
        shards,
        serial_ms,
        sharded_ms,
        speedup: serial_ms / sharded_ms.max(1e-9),
        identical,
    }
}

fn clusters_identical(a: &[MinedCluster], b: &[MinedCluster]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.libraries == y.libraries
                && x.compact_tags == y.compact_tags
                && x.sumy == y.sumy
        })
}

/// Run the experiment: one [`ParallelRow`] per operator, sharded runs at
/// `cfg.threads` workers with one shard per worker.
pub fn run(cfg: &ParallelConfig) -> Vec<ParallelRow> {
    let exec = ExecConfig::with_threads(cfg.threads.max(1));
    let w = populate_workload(
        cfg.n_tags,
        cfg.n_libs,
        cfg.n_members,
        cfg.member_width,
        cfg.seed,
    );
    let member_ids: Vec<LibraryId> = w.members.iter().map(|&m| LibraryId(m as u32)).collect();
    let members = w.table.with_libraries("members", &member_ids);
    let sumy = aggregate("def", &members.matrix);

    let mut rows = Vec::new();

    let ((serial_pop, serial_ms), (sharded_pop, sharded_ms)) = time_pair(
        cfg.repetitions,
        || populate("hits", &sumy, &w.table),
        || populate_sharded("hits", &sumy, &w.table, &exec),
    );
    rows.push(row(
        "populate",
        sharded_pop.1.shards,
        serial_ms,
        sharded_ms,
        serial_pop == sharded_pop.0,
    ));

    let ((serial_agg, serial_ms), (sharded_agg, sharded_ms)) = time_pair(
        cfg.repetitions,
        || aggregate("agg", &w.table.matrix),
        || aggregate_sharded("agg", &w.table.matrix, &exec),
    );
    rows.push(row(
        "aggregate",
        sharded_agg.1.shards,
        serial_ms,
        sharded_ms,
        serial_agg == sharded_agg.0,
    ));

    let mw = populate_workload(
        cfg.mine_tags,
        cfg.n_libs,
        cfg.n_members,
        cfg.member_width,
        cfg.seed,
    );
    let tol = generate_metadata(&mw.table, 0.10);
    let miner = Miner::Fascicles(FascicleParams {
        min_compact_attrs: cfg.mine_tags / 2,
        min_records: 2,
        batch_size: 6,
    });
    let ((serial_mine, serial_ms), (sharded_mine, sharded_ms)) = time_pair(
        cfg.repetitions,
        || mine(&mw.table, "bench", &miner, Some(&tol)),
        || mine_sharded(&mw.table, "bench", &miner, Some(&tol), &exec),
    );
    rows.push(row(
        "mine",
        sharded_mine.1.shards,
        serial_ms,
        sharded_ms,
        clusters_identical(&serial_mine, &sharded_mine.0),
    ));

    rows
}

/// Render the rows as the `BENCH_parallel.json` document.
pub fn to_json(cfg: &ParallelConfig, rows: &[ParallelRow]) -> String {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"parallel\",\n");
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str(&format!("  \"threads\": {},\n", cfg.threads));
    out.push_str(&format!(
        "  \"corpus\": {{\"n_tags\": {}, \"mine_tags\": {}, \"n_libs\": {}, \"n_members\": {}, \"member_width\": {}, \"seed\": {}}},\n",
        cfg.n_tags, cfg.mine_tags, cfg.n_libs, cfg.n_members, cfg.member_width, cfg.seed
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"shards\": {}, \"serial_ms\": {:.3}, \"sharded_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}}}{}\n",
            r.op,
            r.shards,
            r.serial_ms,
            r.sharded_ms,
            r.speedup,
            r.identical,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_is_identical_and_renders() {
        let cfg = ParallelConfig {
            n_tags: 300,
            mine_tags: 120,
            n_libs: 20,
            n_members: 3,
            member_width: 0.7,
            threads: 2,
            repetitions: 1,
            seed: 11,
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 3);
        assert!(
            rows.iter().all(|r| r.identical),
            "sharded != serial: {rows:?}"
        );
        let json = to_json(&cfg, &rows);
        assert!(json.contains("\"op\": \"populate\""));
        assert!(json.contains("\"identical\": true"));
        assert!(!json.contains("identical\": false"));
    }
}
