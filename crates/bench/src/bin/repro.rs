//! `repro` — regenerate every table and figure of the GEA thesis
//! evaluation.
//!
//! ```text
//! repro                 # run everything
//! repro --exp table-3.1 # one experiment
//! repro --list          # list experiment ids
//! repro --fast          # smaller workloads (CI-sized)
//! ```
//!
//! Output is plain text; `EXPERIMENTS.md` records a captured run against
//! the thesis's numbers.

use std::collections::BTreeMap;

use gea_bench::baselines::{compare_baselines, tissue_labels};
use gea_bench::populate_experiment::{index_choice_ablation, table_3_2, Table32Config};
use gea_bench::workloads::demo_matrix;
use gea_cluster::FascicleParams;
use gea_core::compare::{CompareOp, CompareQuery};
use gea_core::interval::{AllenRelation, Interval};
use gea_core::session::GeaSession;
use gea_core::topgap::{series_means, TopGapOrder};
use gea_core::EnumTable;
use gea_relstore::index_analysis;
use gea_sage::annotation::AnnotationCatalog;
use gea_sage::clean::{clean, CleaningConfig};
use gea_sage::library::LibraryProperty;
use gea_sage::{GroundTruth, NeoplasticState, SageCorpus, TissueType};

const SEED: u64 = 42;

struct Ctx {
    fast: bool,
    corpus: SageCorpus,
    truth: GroundTruth,
}

impl Ctx {
    fn session(&self) -> GeaSession {
        GeaSession::open(self.corpus.clone(), &CleaningConfig::default())
            .expect("cleaning succeeds")
    }
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Mine a pure cancerous fascicle with outsiders, sweeping k as a thesis
/// user does. Prefers fascicles of at least three libraries, falling back
/// to pairs (breast has only four cancerous libraries in the demo corpus).
fn pure_cancer_fascicle(session: &mut GeaSession, tissue: &TissueType) -> Option<String> {
    let dataset = format!("E{}", tissue.name());
    if session.enum_table(&dataset).is_err() {
        session.create_tissue_dataset(&dataset, tissue).ok()?;
    }
    let n_tags = session.enum_table(&dataset).unwrap().n_tags();
    let n_cancer = session
        .enum_table(&dataset)
        .unwrap()
        .library_ids_where(|m| m.state == NeoplasticState::Cancerous)
        .len();
    for min_records in [3usize, 2] {
        for pct in [60, 55, 50, 45, 40] {
            let base = format!("{}{}m{}r", tissue.name(), pct, min_records);
            let names = session
                .calculate_fascicles(
                    &dataset,
                    &base,
                    0.10,
                    &FascicleParams {
                        min_compact_attrs: n_tags * pct / 100,
                        min_records,
                        batch_size: 6,
                    },
                )
                .ok()?;
            for f in names {
                let purity = session.purity_check(&f).ok()?;
                if purity.contains(&LibraryProperty::Cancer)
                    && session.fascicle(&f).unwrap().members.len() < n_cancer
                {
                    return Some(f);
                }
            }
        }
    }
    None
}

fn case1_gaps(session: &mut GeaSession, tissue: &TissueType) -> Option<(String, String, String)> {
    let fascicle = pure_cancer_fascicle(session, tissue)?;
    let groups = session
        .form_control_groups(&fascicle, LibraryProperty::Cancer)
        .ok()?;
    let nor = format!("{}_canvsnor", tissue.name());
    let cnif = format!("{}_canvscnif", tissue.name());
    session
        .create_gap(&nor, &groups.in_fascicle, &groups.contrast)
        .ok()?;
    session
        .create_gap(&cnif, &groups.in_fascicle, &groups.outside_fascicle)
        .ok()?;
    Some((fascicle, nor, cnif))
}

// ----------------------------------------------------------- experiments

fn exp_table_2_2(ctx: &Ctx) {
    heading("Table 2.2 — a fragment of the SAGE data");
    let stats = ctx.corpus.stats();
    println!(
        "(corpus: {} libraries, {} distinct raw tags)\n",
        stats.libraries, stats.union_tags
    );
    // First 5 abundant tags × first 8 libraries, raw counts.
    let lib_ids: Vec<_> = ctx.corpus.ids().take(8).collect();
    let union = ctx.corpus.tag_union();
    let tags: Vec<_> = union
        .iter()
        .map(|(_, t)| t)
        .filter(|&t| ctx.corpus.global_count(t) > 50)
        .take(5)
        .collect();
    print!("{:<22}", "Library/Tag");
    for t in &tags {
        print!("{t:>12}");
    }
    println!();
    for &id in &lib_ids {
        print!("{:<22}", ctx.corpus.meta(id).name);
        for &t in &tags {
            print!("{:>12}", ctx.corpus.library(id).count(t));
        }
        println!();
    }
}

fn exp_fig_3_5() {
    heading("Figure 3.5 — GAP = diff(SUMY1, SUMY2), the worked example");
    use gea_core::gap::diff;
    use gea_core::sumy::{SumyRow, SumyTable};
    let row = |tag: &str, no: u32, lo: f64, hi: f64, avg: f64, sd: f64| SumyRow {
        tag: tag.parse().unwrap(),
        tag_no: no,
        range: Interval::new(lo, hi).unwrap(),
        average: avg,
        std_dev: sd,
        extras: Default::default(),
    };
    let sumy1 = SumyTable::new(
        "SUMY1",
        vec![
            row("AAAAAAAAAA", 1, 5.0, 5.0, 5.0, 0.0),
            row("CCCCCCCCCC", 2, 0.0, 7.0, 3.0, 1.0),
            row("GGGGGGGGGG", 3, 10.0, 120.0, 70.0, 15.0),
            row("TTTTTTTTTT", 4, 0.0, 20.0, 10.0, 4.0),
        ],
    );
    let sumy2 = SumyTable::new(
        "SUMY2",
        vec![
            row("AAAAAAAAAA", 1, 0.0, 14.0, 7.0, 1.0),
            row("GGGGGGGGGG", 3, 10.0, 130.0, 60.0, 25.0),
            row("TTTTTTTTTT", 4, 0.0, 12.0, 3.0, 1.0),
            row("ACGTACGTAC", 5, 0.0, 50.0, 20.0, 15.0),
        ],
    );
    let gap = diff("GAP", &sumy1, &sumy2);
    println!("(Tag1..Tag5 stand in as concrete tags)\n");
    println!("{:<14}{:>8}", "Tag Name", "Gap");
    for r in gap.rows() {
        println!(
            "{:<14}{:>8}",
            format!("Tag{}", r.tag_no),
            r.gap()
                .map(|g| format!("{g:+}"))
                .unwrap_or_else(|| "NULL".into())
        );
    }
    println!("\nthesis: Tag1 = -1, Tag3 = NULL, Tag4 = +2 — matched exactly.");
}

fn exp_fig_3_6() {
    heading("Figure 3.6 — GAP3 = minus(GAP1, GAP2); GAP4 = intersect(GAP1, GAP2)");
    use gea_core::gap::{GapRow, GapTable};
    use gea_core::setops::{gap_intersect, gap_minus};
    let table = |name: &str, rows: &[(u32, Option<f64>)]| {
        GapTable::new(
            name,
            vec!["Gap".to_string()],
            rows.iter()
                .map(|&(no, g)| GapRow {
                    tag: gea_sage::Tag::from_code(no * 11).unwrap(),
                    tag_no: no,
                    gaps: vec![g],
                })
                .collect(),
        )
    };
    let gap1 = table(
        "GAP1",
        &[(1, Some(-11.0)), (2, Some(2.0)), (3, None), (4, Some(5.0))],
    );
    let gap2 = table(
        "GAP2",
        &[
            (1, Some(-8.0)),
            (3, Some(9.0)),
            (4, Some(10.0)),
            (5, Some(11.0)),
        ],
    );
    let gap3 = gap_minus("GAP3", &gap1, &gap2);
    println!("GAP3 (thesis: only Tag2 = 2):");
    for r in gap3.rows() {
        println!("  Tag{} = {:?}", r.tag_no, r.gap());
    }
    let gap4 = gap_intersect("GAP4", &gap1, &gap2);
    println!("GAP4 (thesis: Tag1 = -11/-8, Tag3 = NULL/9, Tag4 = 5/10):");
    for r in gap4.rows() {
        let fmt = |g: Option<f64>| g.map(|v| format!("{v}")).unwrap_or_else(|| "NULL".into());
        println!("  Tag{} = {}/{}", r.tag_no, fmt(r.gaps[0]), fmt(r.gaps[1]));
    }
}

fn exp_table_3_1() {
    heading("Table 3.1 — indexes required to guarantee w hits (n=60,000, p=25,000, P>=0.999)");
    let rows = index_analysis::table_3_1(60_000, 25_000, 10, 0.999);
    let thesis = [17, 23, 27, 32, 36, 40, 44, 48, 51, 55];
    println!(
        "{:>3} {:>18} {:>10} {:>22}",
        "w", "m (binomial)", "thesis", "m (hypergeometric)"
    );
    for (row, &t) in rows.iter().zip(&thesis) {
        println!(
            "{:>3} {:>18} {:>10} {:>22}",
            row.w, row.m_binomial, t, row.m_hypergeometric
        );
    }
    println!(
        "\nbinomial model matches the thesis exactly; the exact \
         without-replacement model\nneeds fewer indexes (Table 3.1 is conservative)."
    );
}

fn exp_table_3_2(ctx: &Ctx) {
    heading("Table 3.2 — populate() saving per index hit");
    let config = if ctx.fast {
        Table32Config {
            n_tags: 6_000,
            p_sumy_tags: 2_500,
            repetitions: 3,
            ..Table32Config::default()
        }
    } else {
        Table32Config::default()
    };
    println!(
        "(n = {} tags, p = {} SUMY tags, {} libraries, {} cluster members)\n",
        config.n_tags, config.p_sumy_tags, config.n_libs, config.n_members
    );
    let rows = table_3_2(&config);
    let thesis = [0, 45, 76, 78, 85, 85, 85, 85, 90, 90, 90];
    println!(
        "{:>3} {:>11} {:>16} {:>14} {:>13}",
        "w", "candidates", "cell saving %", "time saving %", "thesis %"
    );
    for row in &rows {
        let t = thesis.get(row.w).copied().unwrap_or(0);
        println!(
            "{:>3} {:>11} {:>16.1} {:>14.1} {:>13}",
            row.w, row.candidates, row.cell_saving_pct, row.time_saving_pct, t
        );
    }
    println!(
        "\ncell saving reproduces the thesis's I/O-bound curve; in-memory wall \
         time differs\n(see EXPERIMENTS.md). scan = {:.1} ms.",
        rows[0].scan_seconds * 1e3
    );

    println!("\nAblation — entropy-ranked vs random index choice (whole-universe budget m):");
    let ms = if ctx.fast {
        vec![8, 32, 128]
    } else {
        vec![17, 32, 48, 128]
    };
    let ablation = index_choice_ablation(&config, &ms);
    println!(
        "{:>5} {:>14} {:>13} {:>17} {:>16}",
        "m", "hits(entropy)", "hits(random)", "saving(entropy)%", "saving(random)%"
    );
    for r in &ablation {
        println!(
            "{:>5} {:>14} {:>13} {:>17.1} {:>16.1}",
            r.m, r.hits_entropy, r.hits_random, r.saving_entropy_pct, r.saving_random_pct
        );
    }
}

fn exp_table_4_1() {
    heading("Table 4.1 — Allen's basic interval relations");
    let b = Interval::new(10.0, 20.0).unwrap();
    let examples = [
        Interval::new(1.0, 5.0).unwrap(),
        Interval::new(25.0, 30.0).unwrap(),
        Interval::new(5.0, 10.0).unwrap(),
        Interval::new(20.0, 25.0).unwrap(),
        Interval::new(5.0, 15.0).unwrap(),
        Interval::new(15.0, 25.0).unwrap(),
        Interval::new(12.0, 18.0).unwrap(),
        Interval::new(5.0, 25.0).unwrap(),
        Interval::new(10.0, 15.0).unwrap(),
        Interval::new(10.0, 25.0).unwrap(),
        Interval::new(15.0, 20.0).unwrap(),
        Interval::new(5.0, 20.0).unwrap(),
        Interval::new(10.0, 20.0).unwrap(),
    ];
    println!("{:<22} {:>7}   example A (B = {b})", "Relation", "Symbol");
    for a in examples {
        let rel = a.relation(b);
        println!("{:<22} {:>7}   {}", rel.meaning(), rel.symbol(), a);
    }
    // Completeness: all 13 relations occur above.
    let mut seen: Vec<AllenRelation> = examples.iter().map(|a| a.relation(b)).collect();
    seen.dedup();
    assert_eq!(seen.len(), 13);
}

fn marker_figure(ctx: &Ctx, session: &GeaSession, fascicle: &str, gene: &str, figure: &str) {
    let Some(tag) = ctx.truth.tag_of_gene(gene) else {
        println!("{figure}: {gene} not planted");
        return;
    };
    let points = match session.tag_plot("Ebrain", tag, fascicle) {
        Ok(p) if !p.is_empty() => p,
        _ => {
            println!("{figure}: {gene} tag not in the cleaned data");
            return;
        }
    };
    println!("\n{figure} — {gene} (tag {tag}):");
    for (series, mean, n) in series_means(&points) {
        println!("  {:<24} avg {:>8.1}  (n={})", series.label(), mean, n);
    }
}

fn exp_case_1(ctx: &Ctx) {
    heading("Case 1 / Figures 4.2, 4.3, 4.10 — cancerous vs normal brain");
    let mut session = ctx.session();
    let Some((fascicle, nor_gap, _)) = case1_gaps(&mut session, &TissueType::Brain) else {
        println!("no pure cancerous fascicle found");
        return;
    };
    let record = session.fascicle(&fascicle).unwrap().clone();
    println!(
        "fascicle {fascicle}: members {:?} ({} compact tags)",
        record.members,
        record.compact_tags.len()
    );
    let planted = ctx.truth.fascicle_members_of(&TissueType::Brain);
    println!("planted members:  {planted:?}");
    marker_figure(
        ctx,
        &session,
        &fascicle,
        "RIBOSOMAL PROTEIN L12",
        "Figure 4.2",
    );
    println!("  thesis: in-fascicle ~275, normal ~100 (positive gap)");
    marker_figure(ctx, &session, &fascicle, "ALPHA TUBULIN", "Figure 4.3");
    println!("  thesis: in-fascicle ~0, normal ~90 (negative gap)");

    // Figure 4.10: the top positive gap's distribution.
    let top = session
        .calculate_top_gap(&nor_gap, 1, TopGapOrder::HighestValue)
        .unwrap();
    if let Some(row) = session.gap(&top).unwrap().rows().first() {
        println!(
            "\nFigure 4.10 — top tag {} per-library distribution:",
            row.tag
        );
        let points = session.tag_plot("Ebrain", row.tag, &fascicle).unwrap();
        for p in points {
            println!(
                "  {:<24} {:>10.1}  [{}]",
                p.library,
                p.level,
                p.series.label()
            );
        }
    }
}

fn exp_case_2(ctx: &Ctx) {
    heading("Case 2 / Figure 4.11 — cancerous brain inside vs outside the fascicle");
    let mut session = ctx.session();
    let Some((fascicle, nor_gap, cnif_gap)) = case1_gaps(&mut session, &TissueType::Brain) else {
        println!("no pure cancerous fascicle found");
        return;
    };
    marker_figure(ctx, &session, &fascicle, "ADP PROTEIN", "Figure 4.11");
    println!("  thesis: in-fascicle much lower than outside (outside avg ~11)");
    let mean_abs = |name: &str| {
        let vals: Vec<f64> = session
            .gap(name)
            .unwrap()
            .rows()
            .iter()
            .filter_map(|r| r.gap())
            .map(f64::abs)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    println!(
        "\nmean |gap|: vs normal = {:.1}, inside-vs-outside = {:.1}",
        mean_abs(&nor_gap),
        mean_abs(&cnif_gap)
    );
    println!(
        "thesis section 4.3.2: gaps vs normal are larger than inside-vs-outside — {}",
        if mean_abs(&nor_gap) > mean_abs(&cnif_gap) {
            "confirmed"
        } else {
            "NOT confirmed"
        }
    );
}

fn exp_case_3(ctx: &Ctx) {
    heading("Case 3 / Figure 4.13 — genes always lower in cancer (brain & breast)");
    let mut session = ctx.session();
    let (Some((_, brain_gap, _)), Some((_, breast_gap, _))) = (
        case1_gaps(&mut session, &TissueType::Brain),
        case1_gaps(&mut session, &TissueType::Breast),
    ) else {
        println!("fascicle mining failed");
        return;
    };
    for (i, (query, label)) in [
        (
            CompareQuery::LowerInAInBoth,
            "query 2 (lower in cancer, both)",
        ),
        (
            CompareQuery::HigherInAInBoth,
            "query 1 (higher in cancer, both)",
        ),
        (CompareQuery::NonNullInBoth, "query 5 (non-null in both)"),
    ]
    .into_iter()
    .enumerate()
    {
        let name = format!("case3_q{i}");
        session
            .compare_gaps(&name, &brain_gap, &breast_gap, CompareOp::Intersect, query)
            .unwrap();
        let result = session.gap(&name).unwrap();
        println!("{label}: {} tags", result.len());
        for r in result.rows().iter().take(5) {
            println!(
                "  {}_({})  {:+.2} / {:+.2}",
                r.tag,
                r.tag_no,
                r.gaps[0].unwrap_or(f64::NAN),
                r.gaps[1].unwrap_or(f64::NAN)
            );
        }
    }
}

fn exp_case_4(ctx: &Ctx) {
    heading("Case 4 / Figure 4.14 — genes unique to brain cancer (brain - breast)");
    let mut session = ctx.session();
    let (Some((_, brain_gap, _)), Some((_, breast_gap, _))) = (
        case1_gaps(&mut session, &TissueType::Brain),
        case1_gaps(&mut session, &TissueType::Breast),
    ) else {
        println!("fascicle mining failed");
        return;
    };
    session
        .compare_gaps(
            "brainBreastDiff1",
            &brain_gap,
            &breast_gap,
            CompareOp::Difference,
            CompareQuery::LowerInAInBoth,
        )
        .unwrap();
    let unique = session.gap("brainBreastDiff1").unwrap();
    println!(
        "tags with a negative cancer gap unique to brain: {}",
        unique.len()
    );
    let catalog = AnnotationCatalog::synthesize(&ctx.truth, SEED, 0.95);
    for r in unique.rows().iter().take(8) {
        let gene = catalog
            .gene_for_tag(r.tag)
            .map(|g| g.gene.as_str())
            .unwrap_or("(unmapped)");
        println!(
            "  {}_({})  {:+.2}  {}",
            r.tag,
            r.tag_no,
            r.gaps[0].unwrap(),
            gene
        );
    }
}

fn exp_case_5(ctx: &Ctx) {
    heading("Case 5 / Figure 4.15 — verification with user-defined ENUM tables");
    let mut session = ctx.session();
    let Some((fascicle, ..)) = case1_gaps(&mut session, &TissueType::Brain) else {
        println!("fascicle mining failed");
        return;
    };
    let members = session.fascicle(&fascicle).unwrap().members.clone();
    let keep: Vec<String> = session
        .base()
        .libraries()
        .iter()
        .filter(|m| m.tissue == TissueType::Brain)
        .map(|m| m.name.clone())
        .filter(|n| !n.ends_with("N09"))
        .collect();
    let refs: Vec<&str> = keep.iter().map(|s| s.as_str()).collect();
    session.create_custom_dataset("newBrain", &refs).unwrap();
    println!(
        "user-defined data set newBrain: {} libraries (one normal removed)",
        keep.len()
    );
    let n_tags = session.enum_table("newBrain").unwrap().n_tags();
    let mut recovered = false;
    for pct in [60, 55, 50, 45, 40] {
        let names = session
            .calculate_fascicles(
                "newBrain",
                &format!("nb{pct}"),
                0.10,
                &FascicleParams {
                    min_compact_attrs: n_tags * pct / 100,
                    min_records: 3,
                    batch_size: 6,
                },
            )
            .unwrap();
        for f in &names {
            if session.fascicle(f).unwrap().members == members {
                recovered = true;
            }
        }
        if recovered {
            break;
        }
    }
    println!(
        "original fascicle {members:?} recovered on the reduced data set: {}",
        if recovered { "yes" } else { "NO" }
    );
}

fn exp_cleaning(ctx: &Ctx) {
    heading("Section 4.2 — pre-processing and data cleaning");
    let (_, report) = clean(&ctx.corpus, &CleaningConfig::default());
    println!(
        "raw union: {} tags -> kept {} ({:.0}% removed; thesis: 350k -> 60k, ~83%)",
        report.raw_union_tags,
        report.kept_tags,
        100.0 * report.removed_fraction()
    );
    println!(
        "frequency-1 fraction of unique tags: {:.0}% (thesis estimate: >80%)",
        100.0 * report.freq1_union_fraction
    );
    let (min, max) = report
        .removed_fraction_per_library
        .iter()
        .fold((1.0f64, 0.0f64), |(lo, hi), &f| (lo.min(f), hi.max(f)));
    println!(
        "per-library distinct tags removed: {:.0}%-{:.0}% (thesis: 5%-15%; our \
         generator is singleton-heavier)",
        100.0 * min,
        100.0 * max
    );
    println!("every library normalized to 300,000 total tags");
}

fn exp_eadb(ctx: &Ctx) {
    heading("Figure 4.22 — Expression Analysis Database search chain");
    let catalog = AnnotationCatalog::synthesize(&ctx.truth, SEED, 0.92);
    let tag = ctx
        .truth
        .tag_of_gene("RIBOSOMAL PROTEIN L12")
        .expect("marker planted");
    let report = catalog.lookup_chain(tag);
    println!("tag {tag}:");
    if let Some(g) = &report.gene {
        println!("  gene:     {} ({})", g.gene, g.unigene_id);
    }
    if let Some(p) = &report.protein {
        println!("  protein:  {} ({} aa)", p.accession, p.sequence.len());
    }
    for pw in &report.pathways {
        println!("  pathway:  {} — {}", pw.pathway_id, pw.name);
    }
    for d in &report.diseases {
        println!("  disease:  OMIM {} — {}", d.omim_id, d.name);
    }
    for publication in &report.publications {
        println!("  pubmed:   [{}] {}", publication.pmid, publication.title);
    }
    println!(
        "\ncatalog coverage: {} of {} planted genes mapped",
        catalog.mapped_tags(),
        ctx.truth.genes.len()
    );
}

fn exp_lineage(ctx: &Ctx) {
    heading("Figure 4.18 — the lineage feature");
    let mut session = ctx.session();
    if case1_gaps(&mut session, &TissueType::Brain).is_none() {
        println!("fascicle mining failed");
        return;
    }
    println!("{}", session.lineage().render_tree());
}

fn exp_baselines(ctx: &Ctx) {
    heading("Baselines — fascicles vs k-means vs hierarchical vs SOM (tissue recovery)");
    let (matrix, _) = clean(&ctx.corpus, &CleaningConfig::default());
    let base = EnumTable::new("SAGE", matrix);
    let labels = tissue_labels(&base);
    let rows = compare_baselines(&base, &labels, &[0.5, 0.4, 0.3], SEED);
    println!(
        "{:<24} {:>8} {:>11} {:>10} {:>9}",
        "algorithm", "purity", "rand index", "clusters", "covered"
    );
    for r in &rows {
        println!(
            "{:<24} {:>8.2} {:>11.2} {:>10} {:>9}",
            r.algorithm, r.purity, r.rand_index, r.clusters, r.covered
        );
    }
    println!(
        "\n(purity against tissue-type labels; fascicles additionally yield \
         compact-tag signatures,\nwhich the distance baselines cannot — the \
         thesis's reason for choosing them)"
    );
}

fn exp_xprofiler(ctx: &Ctx) {
    heading("xProfiler baseline (section 2.3.3) vs GEA's mined-group gaps");
    use gea_core::xprofiler::{compare_cancer_vs_normal, compare_pools};
    let mut session = ctx.session();
    let Some((fascicle, nor_gap, _)) = case1_gaps(&mut session, &TissueType::Brain) else {
        println!("fascicle mining failed");
        return;
    };
    let brain = session.enum_table("Ebrain").unwrap().clone();
    let truth = &ctx.truth;
    let planted_diff: std::collections::HashSet<_> = truth
        .genes
        .iter()
        .filter(|g| {
            g.response != gea_sage::generate::CancerResponse::Unchanged
                && (g.tissue == Some(TissueType::Brain) || g.tissue.is_none())
        })
        .map(|g| g.tag)
        .collect();
    let score = |tags: Vec<gea_sage::Tag>| -> (usize, usize, f64, f64) {
        let hits = tags.iter().filter(|t| planted_diff.contains(t)).count();
        let precision = hits as f64 / tags.len().max(1) as f64;
        let recall = hits as f64 / planted_diff.len().max(1) as f64;
        (tags.len(), hits, precision, recall)
    };

    // 1. Naive xProfiler grouping: every cancerous vs every normal library.
    let naive = compare_cancer_vs_normal(&brain);
    let naive_tags: Vec<_> = naive.significant(0.05).iter().map(|r| r.tag).collect();
    let (n, h, prec, rec) = score(naive_tags);
    println!("xProfiler, naive pools (all cancer vs all normal):");
    println!("  {n} significant tags; {h} planted ({prec:.2} precision, {rec:.2} recall)");

    // 2. Informed xProfiler grouping: the mined fascicle vs normals.
    let members = session.fascicle(&fascicle).unwrap().members.clone();
    let member_ids = brain.library_ids_where(|m| members.contains(&m.name));
    let normal_ids = brain.library_ids_where(|m| m.state == NeoplasticState::Normal);
    let informed = compare_pools(&brain, &member_ids, &normal_ids);
    let informed_tags: Vec<_> = informed.significant(0.05).iter().map(|r| r.tag).collect();
    let (n, h, prec, rec) = score(informed_tags);
    println!("xProfiler, GEA-mined pools (fascicle vs normal):");
    println!("  {n} significant tags; {h} planted ({prec:.2} precision, {rec:.2} recall)");

    // 3. GEA's own candidates: non-NULL gaps of the fascicle-vs-normal GAP.
    let gap_tags: Vec<_> = session
        .gap(&nor_gap)
        .unwrap()
        .drop_null_gaps("nn")
        .project_tags();
    let (n, h, prec, rec) = score(gap_tags);
    println!("GEA gap candidates (non-NULL gaps, fascicle vs normal):");
    println!("  {n} candidate tags; {h} planted ({prec:.2} precision, {rec:.2} recall)");
    println!("\n(the thesis's point: xProfiler needs the user to guess the pools;");
    println!("GEA mines them — and its GAP output carries per-tag separation magnitudes.");
    println!("Measured trade-off: pooled z-tests maximize recall but drown the analyst in");
    println!("false positives; GEA's gap criterion is the higher-precision screen.)");
}

fn exp_compression(ctx: &Ctx) {
    heading("Ablation — fascicle semantic compression vs k (VLDB'99's original use)");
    use gea_cluster::compression::compress;
    use gea_cluster::{mine_greedy, ToleranceVector};
    use gea_core::mine::MatrixView;
    let session = ctx.session();
    let brain = session.base().select_tissue("Eb", &TissueType::Brain);
    let view = MatrixView::new(&brain);
    let tol = ToleranceVector::from_width_fraction(&view, 0.10);
    println!(
        "{:>5} {:>10} {:>13} {:>12} {:>18}",
        "k %", "fascicles", "cells saved", "ratio %", "max err/tolerance"
    );
    for pct in [70, 60, 50, 40, 30] {
        let params = FascicleParams {
            min_compact_attrs: brain.n_tags() * pct / 100,
            min_records: 2,
            batch_size: 6,
        };
        let fascicles = mine_greedy(&view, &tol, &params);
        let summary = compress(&view, &fascicles, &tol);
        println!(
            "{:>5} {:>10} {:>13} {:>12.1} {:>18.2}",
            pct,
            fascicles.len(),
            summary.cells_saved,
            100.0 * summary.ratio(),
            summary.max_relative_error
        );
    }
    println!(
        "
(lower k admits looser, larger fascicles: more cells elided, error          still bounded by
the tolerance — the storage/precision dial of the          original fascicle paper)"
    );
}

fn exp_complexity(ctx: &Ctx) {
    heading("Section 3.3.1 — operation complexity (scaling sanity check)");
    use std::time::Instant;
    let (matrix, _) = clean(&ctx.corpus, &CleaningConfig::default());
    let base = EnumTable::new("SAGE", matrix);
    // aggregate() is one pass: time should scale ~linearly in tags.
    for frac in [4usize, 2, 1] {
        let keep = base.n_tags() / frac;
        let tag_ids: Vec<_> = (0..keep as u32).map(gea_sage::TagId).collect();
        let sub = base.select_tags("sub", &tag_ids);
        let start = Instant::now();
        let sumy = gea_core::aggregate("s", &sub.matrix);
        let dt = start.elapsed().as_secs_f64();
        println!(
            "aggregate over {:>6} tags x {} libraries: {:>8.3} ms ({} rows)",
            keep,
            sub.n_libraries(),
            dt * 1e3,
            sumy.len()
        );
    }
    // diff() is linear in tags.
    let sumy = gea_core::aggregate("all", &base.matrix);
    let start = Instant::now();
    let gap = gea_core::diff("g", &sumy, &sumy);
    println!(
        "diff over {} tags: {:.3} ms ({} rows)",
        sumy.len(),
        start.elapsed().as_secs_f64() * 1e3,
        gap.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut experiments: BTreeMap<&str, &str> = BTreeMap::new();
    for (id, desc) in [
        ("table-2.2", "fragment of the SAGE data"),
        ("fig-3.5", "diff() worked example"),
        ("fig-3.6", "set-operation worked example"),
        ("table-3.1", "index budget analysis"),
        (
            "table-3.2",
            "populate() savings per index hit + index-choice ablation",
        ),
        ("table-4.1", "Allen interval relations"),
        ("case-1", "cancerous vs normal brain (Figures 4.2/4.3/4.10)"),
        ("case-2", "inside vs outside the fascicle (Figure 4.11)"),
        ("case-3", "consistent genes across tissues (Figure 4.13)"),
        ("case-4", "tissue-unique genes (Figure 4.14)"),
        ("case-5", "user-defined ENUM verification (Figure 4.15)"),
        ("cleaning", "section 4.2 pre-processing statistics"),
        ("eadb", "annotation search chain (Figure 4.22)"),
        ("lineage", "operation history (Figure 4.18)"),
        ("baselines", "clustering algorithm comparison"),
        ("xprofiler", "pooled-comparison baseline vs GEA gaps"),
        ("compression", "fascicle semantic-compression ablation"),
        ("complexity", "section 3.3.1 operation scaling"),
    ] {
        experiments.insert(id, desc);
    }

    if args.iter().any(|a| a == "--list") {
        for (id, desc) in &experiments {
            println!("{id:<12} {desc}");
        }
        return;
    }
    if let Some(e) = &exp {
        if !experiments.contains_key(e.as_str()) {
            eprintln!("unknown experiment {e:?}; use --list");
            std::process::exit(1);
        }
    }

    let (corpus, truth) = demo_matrix(SEED);
    let ctx = Ctx {
        fast,
        corpus,
        truth,
    };

    let run = |id: &str| exp.as_deref().map(|e| e == id).unwrap_or(true);
    if run("table-2.2") {
        exp_table_2_2(&ctx);
    }
    if run("fig-3.5") {
        exp_fig_3_5();
    }
    if run("fig-3.6") {
        exp_fig_3_6();
    }
    if run("table-3.1") {
        exp_table_3_1();
    }
    if run("table-3.2") {
        exp_table_3_2(&ctx);
    }
    if run("table-4.1") {
        exp_table_4_1();
    }
    if run("case-1") {
        exp_case_1(&ctx);
    }
    if run("case-2") {
        exp_case_2(&ctx);
    }
    if run("case-3") {
        exp_case_3(&ctx);
    }
    if run("case-4") {
        exp_case_4(&ctx);
    }
    if run("case-5") {
        exp_case_5(&ctx);
    }
    if run("cleaning") {
        exp_cleaning(&ctx);
    }
    if run("eadb") {
        exp_eadb(&ctx);
    }
    if run("lineage") {
        exp_lineage(&ctx);
    }
    if run("baselines") {
        exp_baselines(&ctx);
    }
    if run("xprofiler") {
        exp_xprofiler(&ctx);
    }
    if run("compression") {
        exp_compression(&ctx);
    }
    if run("complexity") {
        exp_complexity(&ctx);
    }
}
