//! Tiered hot-path kernel bench: the `aggregate`/`populate` perf
//! trajectories with bit-identity gates.
//!
//! ```text
//! hotpath [--kick-tires | --full] [--threads N] [--out-dir PATH]
//! ```
//!
//! `--kick-tires` (the default) runs the seconds-scale corpus once and
//! only enforces the identity gates — it writes nothing, so it is safe
//! for every CI run and cannot flake on a loaded host. `--full` runs the
//! thesis-scale corpus with interleaved repetitions and writes
//! `BENCH_aggregate.json` and `BENCH_populate.json` into `--out-dir`
//! (default: the working directory). Both tiers exit non-zero if any
//! kernel variant's output diverges from its scalar oracle.

use gea_bench::hotpath::{run_aggregate, run_populate, to_json, HotpathConfig, HotpathRow};

fn usage() -> ! {
    eprintln!("usage: hotpath [--kick-tires | --full] [--threads N] [--out-dir PATH]");
    std::process::exit(2);
}

fn report(op: &str, rows: &[HotpathRow]) -> bool {
    for r in rows {
        eprintln!(
            "hotpath: {op:>9}  {:>9}  {:8.1} ms  identical {}",
            r.variant, r.wall_ms, r.identical
        );
    }
    rows.iter().all(|r| r.identical)
}

fn main() {
    let mut cfg = HotpathConfig::kick_tires();
    let mut out_dir = String::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--kick-tires" => cfg = HotpathConfig::kick_tires(),
            "--full" => cfg = HotpathConfig::full(),
            "--threads" => match args.next().map(|v| v.parse()) {
                Some(Ok(n)) => cfg.threads = n,
                _ => usage(),
            },
            "--out-dir" => match args.next() {
                Some(p) => out_dir = p,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    eprintln!(
        "hotpath: {} tier, {} tags x {} libs, {} threads, {} reps (host parallelism {})",
        cfg.tier.name(),
        cfg.n_tags,
        cfg.n_libs,
        cfg.threads,
        cfg.repetitions,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let agg = run_aggregate(&cfg);
    let pop = run_populate(&cfg);
    let ok = report("aggregate", &agg) & report("populate", &pop);

    if cfg.tier == gea_bench::hotpath::Tier::Full {
        for (op, rows) in [("aggregate", &agg), ("populate", &pop)] {
            let path = format!("{out_dir}/BENCH_{op}.json");
            if let Err(e) = std::fs::write(&path, to_json(op, &cfg, rows)) {
                eprintln!("hotpath: writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("hotpath: wrote {path}");
        }
    }

    if !ok {
        eprintln!("hotpath: IDENTITY FAILURE — a kernel variant diverged from its oracle");
        std::process::exit(1);
    }
}
