//! Emit `BENCH_router.json`: `gea-router` latency/throughput per op
//! class over loopback backends, byte-identity-gated against a direct
//! single-server reference on both a synthetic workload and the shipped
//! example scripts.
//!
//! ```text
//! router [--fast | --smoke] [--out PATH]
//! ```
//!
//! `--fast` runs the seconds-scale CI shape (arms for 1 and 2 backends,
//! one repetition); `--smoke` runs the 2-backend arm only and writes no
//! JSON — the byte-identity gate alone, for tier-1 CI; `--out` overrides
//! the output path (default `BENCH_router.json` in the working
//! directory). Every mode exits non-zero if any router arm's transcript
//! diverges from the single-server reference.

use gea_bench::router::{run, to_json, RouterBenchConfig};

fn usage() -> ! {
    eprintln!("usage: router [--fast | --smoke] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut cfg = RouterBenchConfig::default();
    let mut smoke = false;
    let mut out_path = String::from("BENCH_router.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--fast" => cfg = RouterBenchConfig::fast(),
            "--smoke" => {
                smoke = true;
                cfg = RouterBenchConfig {
                    backend_counts: vec![2],
                    repetitions: 1,
                    ..RouterBenchConfig::default()
                };
            }
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    eprintln!(
        "router: arms for {:?} backend(s), {} rep(s) (host parallelism {})",
        cfg.backend_counts,
        cfg.repetitions,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let arms = run(&cfg);
    for arm in &arms {
        for op in &arm.ops {
            eprintln!(
                "router: {:>9}  {:>11}  {:3} ops  mean {:8.2} ms  {:8.1} ops/s",
                arm.label, op.op, op.count, op.mean_ms, op.ops_per_sec
            );
        }
        eprintln!(
            "router: {:>9}  workload identical {}  scripts identical {}",
            arm.label, arm.workload_identical, arm.scripts_identical
        );
    }
    if !smoke {
        let json = to_json(&cfg, &arms);
        if let Err(e) = std::fs::write(&out_path, &json) {
            eprintln!("router: writing {out_path}: {e}");
            std::process::exit(1);
        }
        eprintln!("router: wrote {out_path}");
    }
    if !arms.iter().all(|a| a.identical()) {
        eprintln!("router: DETERMINISM FAILURE — router transcript diverged from single server");
        std::process::exit(1);
    }
}
