//! Emit `BENCH_mine_backends.json`: serial-vs-sharded comparison of every
//! registry mining backend (`fascicles`, `isa`, `simplex`) on the
//! thesis-scale synthetic corpus.
//!
//! ```text
//! mine_backends [--fast] [--threads N] [--out PATH]
//! ```
//!
//! `--fast` runs the seconds-scale CI shape; `--threads` overrides the
//! sharded worker count (default 4); `--out` overrides the output path
//! (default `BENCH_mine_backends.json` in the working directory). Exits
//! non-zero if any backend's sharded driver output differs from serial —
//! the bench doubles as an end-to-end determinism check on real workload
//! data.

use gea_bench::mine_backends::{run, to_json, MineBackendsConfig};

fn usage() -> ! {
    eprintln!("usage: mine_backends [--fast] [--threads N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut cfg = MineBackendsConfig::default();
    let mut out_path = String::from("BENCH_mine_backends.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--fast" => {
                let threads = cfg.threads;
                cfg = MineBackendsConfig::fast();
                cfg.threads = threads;
            }
            "--threads" => match args.next().map(|v| v.parse()) {
                Some(Ok(n)) => cfg.threads = n,
                _ => usage(),
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    eprintln!(
        "mine_backends: {} tags x {} libs, {} threads, {} reps (host parallelism {})",
        cfg.n_tags,
        cfg.n_libs,
        cfg.threads,
        cfg.repetitions,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let rows = run(&cfg);
    for r in &rows {
        eprintln!(
            "mine_backends: {:>9}  serial {:8.1} ms  sharded {:8.1} ms  speedup {:5.2}x  clusters {:>3}  identical {}",
            r.backend, r.serial_ms, r.sharded_ms, r.speedup, r.clusters, r.identical
        );
    }
    let json = to_json(&cfg, &rows);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("mine_backends: writing {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("mine_backends: wrote {out_path}");
    if !rows.iter().all(|r| r.identical) {
        eprintln!("mine_backends: DETERMINISM FAILURE — sharded output differs from serial");
        std::process::exit(1);
    }
}
