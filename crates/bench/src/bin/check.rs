//! Static-analysis latency bench: the full `gea-check` analysis —
//! diagnostics plus the abstract cost interpretation — timed over every
//! checked-in example script.
//!
//! ```text
//! check [--reps N] [--scripts DIR] [--out-dir PATH]
//! ```
//!
//! Analysis is the server's pre-flight gate (`check`, `--max-cost`) and
//! the CLI's lint path, so its latency is a user-facing number: this
//! writes one `BENCH_check.json` row per script recording commands
//! analyzed, diagnostics produced, and the median wall time of the
//! complete pass. The run double-checks the analyzer's verdicts while it
//! times them (the case study must be clean, the ill-typed fixture must
//! not be) so a broken analyzer cannot post a fast number.

use std::time::Instant;

use gea_check::{cost_script, CostModel, CostSeed};

struct Row {
    script: String,
    commands: usize,
    diagnostics: usize,
    clean: bool,
    wall_us: f64,
    reps: usize,
}

fn usage() -> ! {
    eprintln!("usage: check [--reps N] [--scripts DIR] [--out-dir PATH]");
    std::process::exit(2);
}

/// One full analysis pass: diagnostics, then (on a clean script, exactly
/// as `--check --cost` and the server's budget gate do) the abstract
/// cost interpretation.
fn analyze(text: &str) -> (usize, usize, bool, u64) {
    let report = gea_check::check_script(text);
    let clean = report.is_clean();
    let mut sink = 0u64;
    if clean {
        let cost = cost_script(
            &CostModel::default_coefficients(),
            &CostSeed::script_default(),
            text,
        );
        sink = cost.total;
    }
    (report.commands, report.diagnostics.len(), clean, sink)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let mut reps = 25usize;
    let mut scripts_dir = String::from("examples/scripts");
    let mut out_dir = String::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--reps" => match args.next().map(|v| v.parse()) {
                Some(Ok(n)) if n > 0 => reps = n,
                _ => usage(),
            },
            "--scripts" => match args.next() {
                Some(d) => scripts_dir = d,
                None => usage(),
            },
            "--out-dir" => match args.next() {
                Some(p) => out_dir = p,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    let mut paths: Vec<_> = match std::fs::read_dir(&scripts_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "gql"))
            .collect(),
        Err(e) => {
            eprintln!("check: reading {scripts_dir}: {e}");
            std::process::exit(1);
        }
    };
    paths.sort();
    if paths.is_empty() {
        eprintln!("check: no .gql scripts under {scripts_dir}");
        std::process::exit(1);
    }

    let mut rows = Vec::new();
    let mut sink = 0u64;
    for path in &paths {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("check: reading {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        // Warm-up pass also yields the verdict the timing loop re-checks.
        let (commands, diagnostics, clean, s) = analyze(&text);
        sink = sink.wrapping_add(s);
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            let (_, _, c, s) = analyze(&text);
            let us = t0.elapsed().as_secs_f64() * 1e6;
            assert_eq!(c, clean, "analyzer verdict flapped on {name}");
            sink = sink.wrapping_add(s);
            samples.push(us);
        }
        let wall_us = median(&mut samples);
        eprintln!(
            "check: {name:>26}  {commands:>3} command(s)  {diagnostics:>2} diagnostic(s)  \
             {}  {wall_us:9.1} us/pass",
            if clean { "clean" } else { "dirty" }
        );
        rows.push(Row {
            script: name.into_owned(),
            commands,
            diagnostics,
            clean,
            wall_us,
            reps,
        });
    }

    // Verdict gate: timing a broken analyzer is worse than no number.
    let verdict = |n: &str| rows.iter().find(|r| r.script == n).map(|r| r.clean);
    if verdict("brain_case_study.gql") == Some(false) {
        eprintln!("check: brain_case_study.gql must analyze clean");
        std::process::exit(1);
    }
    if verdict("ill_typed.gql") == Some(true) {
        eprintln!("check: ill_typed.gql must analyze dirty");
        std::process::exit(1);
    }

    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"check_analysis_latency\",\n");
    out.push_str(&format!("  \"scripts_dir\": \"{scripts_dir}\",\n"));
    out.push_str(&format!("  \"cost_sink\": {sink},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"script\": \"{}\", \"commands\": {}, \"diagnostics\": {}, \
             \"clean\": {}, \"wall_us\": {:.1}, \"reps\": {}}}{}\n",
            r.script,
            r.commands,
            r.diagnostics,
            r.clean,
            r.wall_us,
            r.reps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = format!("{out_dir}/BENCH_check.json");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("check: writing {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("check: wrote {path}");
}
