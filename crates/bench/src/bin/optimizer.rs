//! Emit `BENCH_optimizer.json`: rewrites applied, cache hit-rate delta
//! from key unification, and end-to-end latency (optimized vs literal
//! serial) on the shipped example scripts.
//!
//! ```text
//! optimizer [--fast] [--seed N] [--out PATH]
//! ```
//!
//! `--fast` runs a single repetition (the CI shape); `--out` overrides
//! the output path (default `BENCH_optimizer.json` in the working
//! directory). Exits non-zero if any optimized transcript differs from
//! literal serial execution — the bench doubles as an end-to-end
//! equivalence check on the real example scripts.

use gea_bench::optimizer::{run, to_json, OptimizerConfig};

fn usage() -> ! {
    eprintln!("usage: optimizer [--fast] [--seed N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut cfg = OptimizerConfig::default();
    let mut out_path = String::from("BENCH_optimizer.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--fast" => cfg.repetitions = OptimizerConfig::fast().repetitions,
            "--seed" => match args.next().map(|v| v.parse()) {
                Some(Ok(n)) => cfg.seed = n,
                _ => usage(),
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    eprintln!(
        "optimizer: seed {}, {} repetition(s)",
        cfg.seed, cfg.repetitions
    );
    let rows = run(&cfg);
    for r in &rows {
        eprintln!(
            "optimizer: {:>17}  {:>2} cmds  {} rewrites  serial {:8.1} ms  optimized {:8.1} ms  speedup {:5.2}x  hit-rate delta {:+.4}  identical {}",
            r.script, r.commands, r.rewrites, r.serial_ms, r.optimized_ms, r.speedup, r.hit_rate_delta, r.identical
        );
    }
    let json = to_json(&cfg, &rows);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("optimizer: writing {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("optimizer: wrote {out_path}");
    if !rows.iter().all(|r| r.identical) {
        eprintln!("optimizer: EQUIVALENCE FAILURE — optimized transcript differs from serial");
        std::process::exit(1);
    }
}
