//! The router experiment behind `BENCH_router.json`: what `gea-router`
//! costs and guarantees over loopback backends.
//!
//! Two measurements per arm (direct single server, then the router over
//! 1, 2, … backends):
//!
//! * **per-op latency/throughput** — a synthetic workload covering every
//!   routed verb class (session control, extensional builds, scattered
//!   mines, aggregation, populate, reads), timed per request over the
//!   wire;
//! * **byte identity** — the workload transcript *and* the shipped
//!   example scripts replayed over the wire must match the direct
//!   single-server reference reply-for-reply. The bench doubles as the
//!   router's end-to-end determinism gate on real scripts, and any run
//!   exits non-zero on divergence.
//!
//! Everything binds `127.0.0.1:0`, so runs never collide on ports.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gea_router::{Router, RouterConfig, RouterHandle};
use gea_server::{GeaClient, Server, ServerConfig, ServerHandle};

/// Experiment shape.
#[derive(Debug, Clone)]
pub struct RouterBenchConfig {
    /// Demo-corpus seed every session opens from.
    pub seed: u64,
    /// Router arms to measure: one arm per backend count.
    pub backend_counts: Vec<usize>,
    /// Workload repetitions per arm (each in a fresh session).
    pub repetitions: usize,
}

impl Default for RouterBenchConfig {
    fn default() -> RouterBenchConfig {
        RouterBenchConfig {
            seed: 42,
            backend_counts: vec![1, 2, 3],
            repetitions: 3,
        }
    }
}

impl RouterBenchConfig {
    /// The seconds-scale CI shape: one repetition, two arms.
    pub fn fast() -> RouterBenchConfig {
        RouterBenchConfig {
            backend_counts: vec![1, 2],
            repetitions: 1,
            ..RouterBenchConfig::default()
        }
    }
}

/// The example scripts replayed over the wire for the identity check,
/// embedded so the bench binary is relocatable.
pub const SCRIPTS: &[(&str, &str)] = &[
    (
        "brain_case_study",
        include_str!("../../../examples/scripts/brain_case_study.gql"),
    ),
    (
        "mine_backends",
        include_str!("../../../examples/scripts/mine_backends.gql"),
    ),
];

/// One op class's timing within one arm.
#[derive(Debug)]
pub struct OpRow {
    /// Verb class (`mine`, `aggregate`, `read`, …).
    pub op: &'static str,
    /// Requests timed across all repetitions.
    pub count: usize,
    /// Total wall-clock across those requests.
    pub total_ms: f64,
    /// `total_ms / count`.
    pub mean_ms: f64,
    /// `count / total` in requests per second.
    pub ops_per_sec: f64,
}

/// One arm's measurements.
#[derive(Debug)]
pub struct ArmRow {
    /// `direct` for the single-server reference, `router-N` otherwise.
    pub label: String,
    /// Backends behind the arm (1 for `direct`).
    pub backends: usize,
    /// Whether requests traverse `gea-router`.
    pub via_router: bool,
    /// Whether the synthetic workload transcript matched the reference.
    pub workload_identical: bool,
    /// Whether every example-script transcript matched the reference.
    pub scripts_identical: bool,
    /// Per-op-class timings.
    pub ops: Vec<OpRow>,
}

impl ArmRow {
    /// Both identity checks passed.
    pub fn identical(&self) -> bool {
        self.workload_identical && self.scripts_identical
    }
}

/// The synthetic workload: one command per routed verb class, in a
/// fresh per-repetition session so repetitions never collide on names.
fn workload(rep: usize, seed: u64) -> Vec<(&'static str, String)> {
    vec![
        ("session", format!("open w{rep} demo {seed}")),
        ("extensional", "dataset E brain".to_string()),
        ("mine", "mine E a 50 3 6".to_string()),
        ("aggregate", "groups a_1".to_string()),
        (
            "extensional",
            "gap g a_1CancerFasTbl a_1NormalTable".to_string(),
        ),
        ("read", "topgap g 5".to_string()),
        ("read", "show sumy a_1CancerFasTbl 3".to_string()),
        ("read", "fascicles".to_string()),
        (
            "mine",
            "mine E m with isa seeds=6 t_tags=0.8 t_libs=0.8".to_string(),
        ),
        ("populate", "populate P a_1CancerFasTbl E".to_string()),
        ("read", "lineage".to_string()),
    ]
}

/// A script's wire-sendable lines: comments and blanks dropped (the
/// server sends no reply for them), the front-end `load-demo` spelled as
/// its wire equivalent in a per-script session.
fn wire_lines(idx: usize, text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|l| {
            let l = l.trim();
            if l.is_empty() || l.starts_with('#') {
                return None;
            }
            Some(match l.strip_prefix("load-demo ") {
                Some(seed) => format!("open smoke{idx} demo {seed}"),
                None => l.to_string(),
            })
        })
        .collect()
}

/// Canonical transcript entry for one reply.
fn fmt_reply(reply: &gea_server::wire::Reply) -> String {
    match reply {
        Ok(payload) => format!("OK\n{payload}"),
        Err((code, message)) => format!("ERR {code} {message}"),
    }
}

/// One backend fleet plus (optionally) a router in front, with the
/// address a client should talk to.
struct Fixture {
    servers: Vec<(ServerHandle, JoinHandle<()>)>,
    router: Option<(RouterHandle, JoinHandle<()>)>,
    addr: SocketAddr,
}

impl Fixture {
    fn direct() -> Fixture {
        let (addr, handle, join) = spawn_server();
        Fixture {
            servers: vec![(handle, join)],
            router: None,
            addr,
        }
    }

    fn routed(backends: usize) -> Fixture {
        let servers: Vec<(SocketAddr, ServerHandle, JoinHandle<()>)> =
            (0..backends).map(|_| spawn_server()).collect();
        let router = Router::bind(RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: servers.iter().map(|(a, _, _)| a.to_string()).collect(),
            ..RouterConfig::default()
        })
        .expect("bind router");
        let addr = router.local_addr();
        let handle = router.handle();
        let join = std::thread::spawn(move || router.run().expect("serve router"));
        Fixture {
            servers: servers.into_iter().map(|(_, h, j)| (h, j)).collect(),
            router: Some((handle, join)),
            addr,
        }
    }

    fn shutdown(self) {
        if let Some((handle, join)) = self.router {
            handle.shutdown();
            join.join().expect("router thread");
        }
        for (handle, join) in self.servers {
            handle.shutdown();
            join.join().expect("server thread");
        }
    }
}

fn spawn_server() -> (SocketAddr, ServerHandle, JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        lock_timeout: Duration::from_secs(120),
        ..ServerConfig::default()
    })
    .expect("bind backend");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve backend"));
    (addr, handle, join)
}

/// Run the synthetic workload and the example scripts against `addr`,
/// returning (per-op timings, workload transcript, script transcripts).
fn drive(addr: SocketAddr, cfg: &RouterBenchConfig) -> (Vec<OpRow>, Vec<String>, Vec<Vec<String>>) {
    let mut client = GeaClient::connect(addr).expect("connect");
    // (class, count, total seconds) in first-seen order, so every arm
    // reports op classes in the same stable order.
    let mut classes: Vec<(&'static str, usize, f64)> = Vec::new();
    let mut transcript = Vec::new();
    for rep in 0..cfg.repetitions.max(1) {
        for (class, line) in workload(rep, cfg.seed) {
            let start = Instant::now();
            let reply = client.request(&line).expect("workload request");
            let elapsed = start.elapsed().as_secs_f64();
            transcript.push(fmt_reply(&reply));
            match classes.iter_mut().find(|(c, _, _)| *c == class) {
                Some((_, n, secs)) => {
                    *n += 1;
                    *secs += elapsed;
                }
                None => classes.push((class, 1, elapsed)),
            }
        }
    }
    let scripts = SCRIPTS
        .iter()
        .enumerate()
        .map(|(idx, (_, text))| {
            wire_lines(idx, text)
                .iter()
                .map(|line| fmt_reply(&client.request(line).expect("script request")))
                .collect()
        })
        .collect();
    let ops = classes
        .into_iter()
        .map(|(op, count, secs)| OpRow {
            op,
            count,
            total_ms: secs * 1e3,
            mean_ms: secs * 1e3 / count as f64,
            ops_per_sec: count as f64 / secs.max(1e-9),
        })
        .collect();
    (ops, transcript, scripts)
}

/// Run the experiment: the direct reference arm, then one router arm per
/// configured backend count, each compared reply-for-reply against the
/// reference.
pub fn run(cfg: &RouterBenchConfig) -> Vec<ArmRow> {
    let fixture = Fixture::direct();
    let (ref_ops, ref_workload, ref_scripts) = drive(fixture.addr, cfg);
    fixture.shutdown();
    let mut arms = vec![ArmRow {
        label: "direct".to_string(),
        backends: 1,
        via_router: false,
        workload_identical: true,
        scripts_identical: true,
        ops: ref_ops,
    }];
    for &n in &cfg.backend_counts {
        let fixture = Fixture::routed(n);
        let (ops, workload, scripts) = drive(fixture.addr, cfg);
        fixture.shutdown();
        arms.push(ArmRow {
            label: format!("router-{n}"),
            backends: n,
            via_router: true,
            workload_identical: workload == ref_workload,
            scripts_identical: scripts == ref_scripts,
            ops,
        });
    }
    arms
}

/// Render the arms as the `BENCH_router.json` document.
pub fn to_json(cfg: &RouterBenchConfig, arms: &[ArmRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"router\",\n");
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"repetitions\": {},\n", cfg.repetitions));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str("  \"arms\": [\n");
    for (i, arm) in arms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"backends\": {}, \"via_router\": {}, \
             \"workload_identical\": {}, \"scripts_identical\": {}, \"ops\": [\n",
            arm.label, arm.backends, arm.via_router, arm.workload_identical, arm.scripts_identical
        ));
        for (j, op) in arm.ops.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"op\": \"{}\", \"count\": {}, \"total_ms\": {:.3}, \
                 \"mean_ms\": {:.3}, \"ops_per_sec\": {:.1}}}{}\n",
                op.op,
                op.count,
                op.total_ms,
                op.mean_ms,
                op.ops_per_sec,
                if j + 1 < arm.ops.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < arms.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_backend_arm_is_identical_and_renders() {
        let cfg = RouterBenchConfig {
            backend_counts: vec![1],
            repetitions: 1,
            ..RouterBenchConfig::default()
        };
        let arms = run(&cfg);
        assert_eq!(arms.len(), 2);
        assert!(arms.iter().all(|a| a.identical()), "{arms:?}");
        let routed = &arms[1];
        assert!(routed.via_router);
        // Every workload verb class was timed at least once.
        for class in [
            "session",
            "extensional",
            "mine",
            "aggregate",
            "populate",
            "read",
        ] {
            assert!(
                routed.ops.iter().any(|o| o.op == class && o.count > 0),
                "missing op class {class}"
            );
        }
        let json = to_json(&cfg, &arms);
        assert!(json.contains("\"label\": \"direct\""), "{json}");
        assert!(json.contains("\"label\": \"router-1\""), "{json}");
        assert!(json.contains("\"scripts_identical\": true"), "{json}");
    }

    #[test]
    fn wire_lines_strip_comments_and_respell_load_demo() {
        let lines = wire_lines(1, "# c\n\nload-demo 7\nmine E f 50 3 6\n");
        assert_eq!(lines, vec!["open smoke1 demo 7", "mine E f 50 3 6"]);
    }
}
