//! # gea-bench — the evaluation harness
//!
//! Shared workloads and experiment drivers behind the `repro` binary (which
//! regenerates every table and figure of the thesis's evaluation) and the
//! Criterion benches. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record.

#![warn(missing_docs)]

pub mod baselines;
pub mod hotpath;
pub mod mine_backends;
pub mod optimizer;
pub mod parallel;
pub mod populate_experiment;
pub mod router;
pub mod workloads;

pub use populate_experiment::{table_3_2, Table32Config, Table32Row};
