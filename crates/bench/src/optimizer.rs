//! The optimizer experiment behind `BENCH_optimizer.json`: what `gea-opt`
//! buys on the shipped example scripts.
//!
//! Three measurements per script:
//!
//! * **rewrites** — how many plan rewrites fire (fusions + self-compare
//!   fast paths);
//! * **end-to-end latency** — wall-clock of executing the script's GQL
//!   commands on a fresh demo session, literal serial vs optimized plan,
//!   continue-on-error (the REPL/server mode). The bench doubles as an
//!   equivalence check: the two transcripts (and post-run lineage) must be
//!   byte-identical or the run fails;
//! * **cache hit-rate delta** — a lint workload model: every command is
//!   `check`-linted twice, once as written and once in its algebraically
//!   canonical spelling (as a normalizing client would). Baseline keys
//!   (`canonical()`) treat the spellings as distinct entries; unified keys
//!   ([`gea_opt::cache_key`]) share one. The delta is the hit-rate gain
//!   from key unification — zero for scripts with no canonicalizable
//!   command, positive as soon as one appears.

use std::collections::BTreeSet;
use std::time::Instant;

use gea_check::gql::{parse, GqlCommand, Request};
use gea_core::session::GeaSession;
use gea_sage::clean::CleaningConfig;
use gea_sage::generate::{generate, GeneratorConfig};
use gea_server::{engine, optexec};

/// Experiment shape.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Demo-corpus seed the sessions open from.
    pub seed: u64,
    /// Timed repetitions per arm; the minimum is reported.
    pub repetitions: usize,
}

impl Default for OptimizerConfig {
    fn default() -> OptimizerConfig {
        OptimizerConfig {
            seed: 42,
            repetitions: 3,
        }
    }
}

impl OptimizerConfig {
    /// The seconds-scale CI shape: a single repetition.
    pub fn fast() -> OptimizerConfig {
        OptimizerConfig {
            repetitions: 1,
            ..OptimizerConfig::default()
        }
    }
}

/// One script's measurements.
#[derive(Debug)]
pub struct ScriptRow {
    /// Script name (file stem under `examples/scripts/`).
    pub script: &'static str,
    /// GQL commands executed (session-control lines excluded).
    pub commands: usize,
    /// Rewrites the optimizer applied to the pipeline.
    pub rewrites: usize,
    /// Literal serial execution, best-of-N wall-clock.
    pub serial_ms: f64,
    /// Optimized-plan execution, best-of-N wall-clock.
    pub optimized_ms: f64,
    /// `serial_ms / optimized_ms`.
    pub speedup: f64,
    /// Whether the two transcripts (and lineage) were byte-identical.
    pub identical: bool,
    /// Lint-workload cache hit rate with plain `canonical()` keys.
    pub baseline_hit_rate: f64,
    /// Lint-workload cache hit rate with unified optimizer keys.
    pub unified_hit_rate: f64,
    /// `unified_hit_rate - baseline_hit_rate`.
    pub hit_rate_delta: f64,
}

/// The scripts under test, embedded so the bench binary is relocatable.
pub const SCRIPTS: &[(&str, &str)] = &[
    (
        "brain_case_study",
        include_str!("../../../examples/scripts/brain_case_study.gql"),
    ),
    (
        "optimizer_demo",
        include_str!("../../../examples/scripts/optimizer_demo.gql"),
    ),
];

/// The GQL commands of a script (comments and session-control lines are
/// not part of the measured pipeline).
pub fn script_commands(text: &str) -> Vec<GqlCommand> {
    text.lines()
        .filter_map(|l| match parse(l.trim()) {
            Ok(Some(Request::Gql(cmd))) => Some(cmd),
            _ => None,
        })
        .collect()
}

fn open_session(seed: u64) -> GeaSession {
    let (corpus, _) = generate(&GeneratorConfig::demo(seed));
    GeaSession::open(corpus, &CleaningConfig::default()).expect("demo session")
}

fn transcript(outputs: &optexec::StepOutputs) -> Vec<String> {
    outputs
        .iter()
        .map(|(i, r)| match r {
            Ok(reply) => format!("{i} OK {reply}"),
            Err(e) => format!("{i} ERR {} {}", e.code, e.message),
        })
        .collect()
}

fn lineage(session: &GeaSession) -> String {
    engine::execute_read(session, &GqlCommand::Lineage).unwrap_or_default()
}

/// Hit rate of the lint workload under one key scheme: each command is
/// linted as written and again in its canonical algebraic spelling; a
/// repeat key is a hit.
fn lint_hit_rate(cmds: &[GqlCommand], key: impl Fn(&GqlCommand) -> String) -> f64 {
    let mut seen = BTreeSet::new();
    let mut hits = 0usize;
    let mut total = 0usize;
    for cmd in cmds {
        for spelling in [cmd.clone(), gea_opt::canonicalize_cmd(cmd)] {
            let k = key(&GqlCommand::Check(vec![spelling]));
            total += 1;
            if !seen.insert(k) {
                hits += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Run the experiment over every embedded script.
pub fn run(cfg: &OptimizerConfig) -> Vec<ScriptRow> {
    let mut rows = Vec::new();
    for (name, text) in SCRIPTS {
        let cmds = script_commands(text);
        let plan = gea_opt::optimize(&cmds);

        let mut serial_ms = f64::MAX;
        let mut optimized_ms = f64::MAX;
        let mut identical = true;
        for _ in 0..cfg.repetitions.max(1) {
            let mut plain = open_session(cfg.seed);
            let start = Instant::now();
            let want: optexec::StepOutputs = cmds
                .iter()
                .enumerate()
                .map(|(i, c)| (i, engine::execute(&mut plain, c)))
                .collect();
            serial_ms = serial_ms.min(start.elapsed().as_secs_f64() * 1e3);

            let mut opt = open_session(cfg.seed);
            let start = Instant::now();
            let got = optexec::run_plan(&mut opt, &plan, false);
            optimized_ms = optimized_ms.min(start.elapsed().as_secs_f64() * 1e3);

            identical &= transcript(&want) == transcript(&got) && lineage(&plain) == lineage(&opt);
        }

        let baseline = lint_hit_rate(&cmds, |c| c.canonical());
        let unified = lint_hit_rate(&cmds, gea_opt::cache_key);
        rows.push(ScriptRow {
            script: name,
            commands: cmds.len(),
            rewrites: plan.rewrites.len(),
            serial_ms,
            optimized_ms,
            speedup: serial_ms / optimized_ms.max(1e-9),
            identical,
            baseline_hit_rate: baseline,
            unified_hit_rate: unified,
            hit_rate_delta: unified - baseline,
        });
    }
    rows
}

/// Render the rows as the `BENCH_optimizer.json` document.
pub fn to_json(cfg: &OptimizerConfig, rows: &[ScriptRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"optimizer\",\n");
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"repetitions\": {},\n", cfg.repetitions));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"script\": \"{}\", \"commands\": {}, \"rewrites\": {}, \
             \"serial_ms\": {:.3}, \"optimized_ms\": {:.3}, \"speedup\": {:.3}, \
             \"identical\": {}, \"baseline_hit_rate\": {:.4}, \
             \"unified_hit_rate\": {:.4}, \"hit_rate_delta\": {:.4}}}{}\n",
            r.script,
            r.commands,
            r.rewrites,
            r.serial_ms,
            r.optimized_ms,
            r.speedup,
            r.identical,
            r.baseline_hit_rate,
            r.unified_hit_rate,
            r.hit_rate_delta,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_is_identical_and_renders() {
        let cfg = OptimizerConfig::fast();
        let rows = run(&cfg);
        assert_eq!(rows.len(), SCRIPTS.len());
        assert!(rows.iter().all(|r| r.identical), "{rows:?}");
        // The demo script is the one engineered to rewrite heavily and to
        // contain a canonicalizable spelling (union-of-self), so key
        // unification must gain hit rate there.
        let demo = rows.iter().find(|r| r.script == "optimizer_demo").unwrap();
        assert!(demo.rewrites >= 5, "{demo:?}");
        assert!(demo.hit_rate_delta > 0.0, "{demo:?}");
        let json = to_json(&cfg, &rows);
        for (name, _) in SCRIPTS {
            assert!(json.contains(&format!("\"script\": \"{name}\"")), "{json}");
        }
    }
}
