//! Tiered hot-path kernel benchmark behind `BENCH_aggregate.json` and
//! `BENCH_populate.json`.
//!
//! Where `parallel` measures serial-vs-sharded wall time per operator,
//! this experiment records the *perf trajectory* of the two columnar hot
//! paths — three variants per operator, every later variant checked
//! bit-identical against the first:
//!
//! * `aggregate`: the pre-blocking scalar reference kernel
//!   ([`gea_core::sumy::reference`]), the fused 4-lane blocked kernel
//!   ([`gea_core::sumy::aggregate`]), and the sharded driver
//!   ([`gea_exec::aggregate_sharded`]).
//! * `populate`: the library-at-a-time scan ([`populate_scan`]), the
//!   selection-vector columnar pruner ([`populate_columnar`]), and the
//!   sharded driver ([`gea_exec::populate_columnar_sharded`]).
//!
//! Two tiers: **kick-tires** (seconds-scale corpus, one repetition —
//! identity gate only, for every CI run) and **full** (thesis-scale
//! corpus, repeated — emits the JSON documents, for the nightly lane).
//! Within a repetition the variants run interleaved (A B C A B C …), so
//! no variant systematically inherits a warmed cache or a settled
//! allocator from running second in a block.

use std::time::Instant;

use gea_core::populate::{populate_columnar, populate_scan, PopulateStats};
use gea_core::sumy::{aggregate, reference, SumyTable};
use gea_core::ExecConfig;
use gea_exec::{aggregate_sharded, populate_columnar_sharded};
use gea_sage::library::LibraryId;
use gea_sage::tag::TagId;

use crate::workloads::populate_workload;

/// Which rung of the harness to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Seconds-scale corpus, one repetition, identity checks only.
    KickTires,
    /// Thesis-scale corpus, repeated and timed, JSON emitted.
    Full,
}

impl Tier {
    /// The tier's name as it appears in the emitted JSON.
    pub fn name(self) -> &'static str {
        match self {
            Tier::KickTires => "kick-tires",
            Tier::Full => "full",
        }
    }
}

/// Shape of one hot-path experiment.
#[derive(Debug, Clone)]
pub struct HotpathConfig {
    /// Tier (sets the default corpus scale and repetition count).
    pub tier: Tier,
    /// Tags in the corpus.
    pub n_tags: usize,
    /// Libraries in the corpus.
    pub n_libs: usize,
    /// Clustered member libraries (the populate answer by construction).
    pub n_members: usize,
    /// Member window width (per-condition selectivity knob).
    pub member_width: f64,
    /// Worker threads for the sharded variant.
    pub threads: usize,
    /// Interleaved repetitions; each variant keeps its minimum wall time.
    pub repetitions: usize,
    /// RNG seed for the synthetic corpus.
    pub seed: u64,
}

impl HotpathConfig {
    /// The thesis-scale full tier (the `parallel` experiment's corpus).
    pub fn full() -> HotpathConfig {
        HotpathConfig {
            tier: Tier::Full,
            n_tags: 60_000,
            n_libs: 100,
            n_members: 5,
            member_width: 0.75,
            threads: 4,
            repetitions: 3,
            seed: 2002,
        }
    }

    /// The seconds-scale kick-tires tier for every CI run.
    pub fn kick_tires() -> HotpathConfig {
        HotpathConfig {
            tier: Tier::KickTires,
            n_tags: 4_000,
            n_libs: 60,
            n_members: 4,
            member_width: 0.7,
            threads: 4,
            repetitions: 1,
            seed: 7,
        }
    }
}

/// One variant's measurement within an operator's trajectory.
#[derive(Debug, Clone)]
pub struct HotpathRow {
    /// Variant name (`reference`/`blocked`/`sharded` for aggregate;
    /// `scan`/`columnar`/`sharded` for populate).
    pub variant: &'static str,
    /// Minimum wall time over the repetitions, milliseconds.
    pub wall_ms: f64,
    /// Bit-identical to the operator's first (oracle) variant. The
    /// oracle row itself records `true`.
    pub identical: bool,
}

/// Time one closure invocation in milliseconds.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// A named kernel variant to be timed: label + boxed thunk.
type Variant<'a, T> = (&'static str, Box<dyn FnMut() -> T + 'a>);

/// Run `variants` interleaved for `repetitions` rounds, keeping each
/// variant's minimum wall time and final result.
fn interleave<T>(
    repetitions: usize,
    variants: &mut [Variant<'_, T>],
) -> Vec<(&'static str, T, f64)> {
    let mut best: Vec<f64> = vec![f64::INFINITY; variants.len()];
    let mut out: Vec<Option<T>> = variants.iter().map(|_| None).collect();
    for _ in 0..repetitions.max(1) {
        for (i, (_, f)) in variants.iter_mut().enumerate() {
            let (v, ms) = timed(&mut **f);
            best[i] = best[i].min(ms);
            out[i] = Some(v);
        }
    }
    variants
        .iter()
        .zip(out)
        .zip(best)
        .map(|(((name, _), v), ms)| (*name, v.expect("at least one repetition ran"), ms))
        .collect()
}

/// The `aggregate` trajectory: scalar reference → blocked kernel →
/// sharded driver, all three timed interleaved and compared for bit
/// identity against the reference.
pub fn run_aggregate(cfg: &HotpathConfig) -> Vec<HotpathRow> {
    let exec = ExecConfig::with_threads(cfg.threads.max(1));
    let w = populate_workload(
        cfg.n_tags,
        cfg.n_libs,
        cfg.n_members,
        cfg.member_width,
        cfg.seed,
    );
    let matrix = &w.table.matrix;
    let reference_rows = || {
        SumyTable::new(
            "agg",
            (0..matrix.n_tags())
                .map(|i| reference::aggregate_row(matrix, TagId(i as u32)))
                .collect(),
        )
    };
    let mut variants: Vec<Variant<'_, SumyTable>> = vec![
        ("reference", Box::new(reference_rows)),
        ("blocked", Box::new(|| aggregate("agg", matrix))),
        (
            "sharded",
            Box::new(|| aggregate_sharded("agg", matrix, &exec).0),
        ),
    ];
    let measured = interleave(cfg.repetitions, &mut variants);
    let oracle = measured[0].1.clone();
    measured
        .into_iter()
        .map(|(variant, table, wall_ms)| HotpathRow {
            variant,
            wall_ms,
            identical: table == oracle,
        })
        .collect()
}

/// The `populate` trajectory: library-at-a-time scan → selection-vector
/// columnar pruner → sharded driver. Identity is on the hit list (the
/// strategies charge different `comparisons` by design); the sharded
/// variant must additionally reproduce the columnar variant's stats,
/// which is folded into its `identical` flag.
pub fn run_populate(cfg: &HotpathConfig) -> Vec<HotpathRow> {
    let exec = ExecConfig::with_threads(cfg.threads.max(1));
    let w = populate_workload(
        cfg.n_tags,
        cfg.n_libs,
        cfg.n_members,
        cfg.member_width,
        cfg.seed,
    );
    let member_ids: Vec<LibraryId> = w.members.iter().map(|&m| LibraryId(m as u32)).collect();
    let members = w.table.with_libraries("members", &member_ids);
    let sumy = aggregate("def", &members.matrix);
    let table = &w.table;

    type PopulateOut = (Vec<LibraryId>, PopulateStats);
    let mut variants: Vec<Variant<'_, PopulateOut>> = vec![
        ("scan", Box::new(|| populate_scan(&sumy, table))),
        ("columnar", Box::new(|| populate_columnar(&sumy, table))),
        (
            "sharded",
            Box::new(|| {
                let (hits, stats, _) = populate_columnar_sharded(&sumy, table, &exec);
                (hits, stats)
            }),
        ),
    ];
    let measured = interleave(cfg.repetitions, &mut variants);
    let oracle_hits = measured[0].1 .0.clone();
    let columnar_stats = measured[1].1 .1;
    measured
        .into_iter()
        .map(|(variant, (hits, stats), wall_ms)| HotpathRow {
            variant,
            wall_ms,
            identical: hits == oracle_hits && (variant != "sharded" || stats == columnar_stats),
        })
        .collect()
}

/// Render one operator's trajectory as its `BENCH_<op>.json` document.
pub fn to_json(op: &str, cfg: &HotpathConfig, rows: &[HotpathRow]) -> String {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"experiment\": \"{op}_hotpath\",\n"));
    out.push_str(&format!("  \"tier\": \"{}\",\n", cfg.tier.name()));
    out.push_str(&format!("  \"host_parallelism\": {host},\n"));
    out.push_str(&format!("  \"threads\": {},\n", cfg.threads));
    out.push_str(&format!(
        "  \"corpus\": {{\"n_tags\": {}, \"n_libs\": {}, \"n_members\": {}, \"member_width\": {}, \"seed\": {}}},\n",
        cfg.n_tags, cfg.n_libs, cfg.n_members, cfg.member_width, cfg.seed
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"variant\": \"{}\", \"wall_ms\": {:.3}, \"identical\": {}}}{}\n",
            r.variant,
            r.wall_ms,
            r.identical,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HotpathConfig {
        HotpathConfig {
            tier: Tier::KickTires,
            n_tags: 300,
            n_libs: 20,
            n_members: 3,
            member_width: 0.7,
            threads: 2,
            repetitions: 1,
            seed: 11,
        }
    }

    #[test]
    fn aggregate_trajectory_is_identical_and_renders() {
        let cfg = tiny();
        let rows = run_aggregate(&cfg);
        assert_eq!(
            rows.iter().map(|r| r.variant).collect::<Vec<_>>(),
            ["reference", "blocked", "sharded"]
        );
        assert!(rows.iter().all(|r| r.identical), "divergence: {rows:?}");
        let json = to_json("aggregate", &cfg, &rows);
        assert!(json.contains("\"experiment\": \"aggregate_hotpath\""));
        assert!(json.contains("\"tier\": \"kick-tires\""));
        assert!(!json.contains("\"identical\": false"));
    }

    #[test]
    fn populate_trajectory_is_identical_and_renders() {
        let cfg = tiny();
        let rows = run_populate(&cfg);
        assert_eq!(
            rows.iter().map(|r| r.variant).collect::<Vec<_>>(),
            ["scan", "columnar", "sharded"]
        );
        assert!(rows.iter().all(|r| r.identical), "divergence: {rows:?}");
        let json = to_json("populate", &cfg, &rows);
        assert!(json.contains("\"experiment\": \"populate_hotpath\""));
    }
}
