//! ENUM tables — extensional cluster enumerations (thesis §3.1.1).
//!
//! In the extensional world a cluster is an explicit enumeration of the
//! libraries it contains, with columns for the cluster's (compact) tags
//! (Figure 3.2). The original cleaned SAGE data set itself is "a
//! 'degenerate' cluster" stored the same way. An [`EnumTable`] is a named
//! view: an expression matrix restricted to the cluster's libraries and
//! tags.

use gea_sage::library::{LibraryId, LibraryMeta, LibraryProperty};
use gea_sage::tag::{Tag, TagId};
use gea_sage::{ExpressionMatrix, TissueType};

/// A named extensional cluster: libraries × tags with expression levels.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumTable {
    /// Table name, e.g. `brain35k_4` or `Ebrain`.
    pub name: String,
    /// The enumerated data. Libraries are the cluster's members; tags are
    /// the cluster's columns.
    pub matrix: ExpressionMatrix,
}

impl EnumTable {
    /// Wrap a matrix as a named ENUM table.
    pub fn new(name: &str, matrix: ExpressionMatrix) -> EnumTable {
        EnumTable {
            name: name.to_string(),
            matrix,
        }
    }

    /// Number of member libraries.
    pub fn n_libraries(&self) -> usize {
        self.matrix.n_libraries()
    }

    /// Number of tag columns.
    pub fn n_tags(&self) -> usize {
        self.matrix.n_tags()
    }

    /// Member library metadata, in order.
    pub fn libraries(&self) -> &[LibraryMeta] {
        self.matrix.libraries()
    }

    /// Library ids whose metadata satisfies `keep` — relational selection
    /// on the auxiliary columns (σ tissueType = 'brain' in Case 1 step 1).
    pub fn library_ids_where(&self, mut keep: impl FnMut(&LibraryMeta) -> bool) -> Vec<LibraryId> {
        self.matrix
            .library_ids()
            .filter(|&id| keep(self.matrix.library(id)))
            .collect()
    }

    /// σ on libraries: a new named ENUM table containing only the selected
    /// libraries.
    pub fn select_libraries(
        &self,
        name: &str,
        keep: impl FnMut(&LibraryMeta) -> bool,
    ) -> EnumTable {
        let ids = self.library_ids_where(keep);
        EnumTable::new(name, self.matrix.select_libraries(&ids))
    }

    /// Restrict to an explicit library-id list (populate()'s output path,
    /// and Case 5's user-defined tissue sets).
    pub fn with_libraries(&self, name: &str, ids: &[LibraryId]) -> EnumTable {
        EnumTable::new(name, self.matrix.select_libraries(ids))
    }

    /// The tissue-type dataset constructor of §4.3.1.2 step 1:
    /// `E_tissue = σ_tissueType(SAGE)`.
    pub fn select_tissue(&self, name: &str, tissue: &TissueType) -> EnumTable {
        self.select_libraries(name, |m| &m.tissue == tissue)
    }

    /// Library minus: members of `self` that are not members of `other`
    /// (matched by library name) — Case 1 step 4's
    /// `ENUM₂ = σ_cancerous(E_brain) − ENUM₁`.
    pub fn minus(&self, name: &str, other: &EnumTable) -> EnumTable {
        let other_names: std::collections::HashSet<&str> =
            other.libraries().iter().map(|m| m.name.as_str()).collect();
        self.select_libraries(name, |m| !other_names.contains(m.name.as_str()))
    }

    /// Restrict the tag columns to `tags` (a fascicle's ENUM table has
    /// "the columns representing the compact tags of the fascicle").
    pub fn select_tags(&self, name: &str, tags: &[TagId]) -> EnumTable {
        let keep: std::collections::HashSet<Tag> =
            tags.iter().map(|&t| self.matrix.tag_of(t)).collect();
        EnumTable::new(name, self.matrix.select_tags(|_, tag| keep.contains(&tag)))
    }

    /// The purity check of Figure 4.8: `Some(property)` when every member
    /// library has `property`.
    pub fn is_pure(&self, property: LibraryProperty) -> bool {
        !self.libraries().is_empty() && self.libraries().iter().all(|m| m.has_property(property))
    }

    /// All properties the table is pure on.
    pub fn pure_properties(&self) -> Vec<LibraryProperty> {
        LibraryProperty::ALL
            .into_iter()
            .filter(|&p| self.is_pure(p))
            .collect()
    }

    /// Member library names, in order.
    pub fn library_names(&self) -> Vec<&str> {
        self.libraries().iter().map(|m| m.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_sage::corpus::library_meta;
    use gea_sage::library::{NeoplasticState, TissueSource};
    use gea_sage::tag::TagUniverse;

    fn table() -> EnumTable {
        let universe = TagUniverse::from_tags(
            ["AAAAAAAAAA", "CCCCCCCCCC"]
                .iter()
                .map(|s| s.parse().unwrap()),
        );
        let libs = vec![
            library_meta(
                "b_c1",
                TissueType::Brain,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
            library_meta(
                "b_c2",
                TissueType::Brain,
                NeoplasticState::Cancerous,
                TissueSource::CellLine,
            ),
            library_meta(
                "b_n1",
                TissueType::Brain,
                NeoplasticState::Normal,
                TissueSource::BulkTissue,
            ),
            library_meta(
                "k_c1",
                TissueType::Kidney,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
        ];
        EnumTable::new(
            "SAGE",
            ExpressionMatrix::from_rows(
                universe,
                libs,
                vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]],
            ),
        )
    }

    #[test]
    fn tissue_selection() {
        let t = table();
        let brain = t.select_tissue("Ebrain", &TissueType::Brain);
        assert_eq!(brain.n_libraries(), 3);
        assert_eq!(brain.library_names(), vec!["b_c1", "b_c2", "b_n1"]);
    }

    #[test]
    fn case_1_control_group_construction() {
        let t = table();
        let brain = t.select_tissue("Ebrain", &TissueType::Brain);
        // Pretend the fascicle picked b_c1 only.
        let enum1 = brain.with_libraries("ENUM1", &[LibraryId(0)]);
        let cancerous = brain.select_libraries("canc", |m| m.state == NeoplasticState::Cancerous);
        let enum2 = cancerous.minus("ENUM2", &enum1);
        assert_eq!(enum2.library_names(), vec!["b_c2"]);
        let enum3 = brain.select_libraries("ENUM3", |m| m.state == NeoplasticState::Normal);
        assert_eq!(enum3.library_names(), vec!["b_n1"]);
    }

    #[test]
    fn purity_check() {
        let t = table();
        let cancerous = t.select_libraries("c", |m| m.state == NeoplasticState::Cancerous);
        assert!(cancerous.is_pure(LibraryProperty::Cancer));
        assert!(!cancerous.is_pure(LibraryProperty::BulkTissue));
        assert_eq!(cancerous.pure_properties(), vec![LibraryProperty::Cancer]);
        // An empty table is pure on nothing.
        let empty = t.select_libraries("e", |_| false);
        assert!(empty.pure_properties().is_empty());
    }

    #[test]
    fn tag_restriction() {
        let t = table();
        let c: Tag = "CCCCCCCCCC".parse().unwrap();
        let cid = t.matrix.id_of(c).unwrap();
        let sub = t.select_tags("sub", &[cid]);
        assert_eq!(sub.n_tags(), 1);
        assert_eq!(sub.matrix.tag_of(TagId(0)), c);
        assert_eq!(sub.n_libraries(), 4);
    }

    #[test]
    fn values_survive_selection() {
        let t = table();
        let brain = t.select_tissue("Ebrain", &TissueType::Brain);
        let a = brain.matrix.id_of("AAAAAAAAAA".parse().unwrap()).unwrap();
        assert_eq!(brain.matrix.tag_row(a), &[1.0, 2.0, 3.0]);
    }
}
