//! Top-gap manipulation (thesis §4.4.3).
//!
//! After a GAP table is computed, the analyst usually inspects only the
//! top-x tags with the most extreme gap values. "Calculate Top Gap"
//! (Figure 4.19) derives a new table named `{gap}_{x}` holding those rows;
//! "View Top Gap" (Figure 4.20) renders it; Figure 4.10 plots one top tag's
//! per-library distribution — reproduced here as a data series for the
//! bench harness to print.

use gea_sage::library::NeoplasticState;
use gea_sage::tag::Tag;

use crate::enum_table::EnumTable;
use crate::gap::GapTable;

/// Ranking orders for top-gap extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopGapOrder {
    /// Largest gap values first (the thesis's "top gaps").
    HighestValue,
    /// Most negative first.
    LowestValue,
    /// Largest |gap| first — extremes of either sign.
    LargestMagnitude,
}

/// Derive the top-`x` non-NULL rows of `gap` under `order`, as a new table
/// named `{gap.name}_{x}`.
pub fn top_gaps(gap: &GapTable, x: usize, order: TopGapOrder) -> GapTable {
    let non_null = gap.drop_null_gaps("tmp");
    let mut rows = non_null.rows().to_vec();
    rows.sort_by(|a, b| {
        let ga = a.gap().expect("nulls dropped");
        let gb = b.gap().expect("nulls dropped");
        match order {
            TopGapOrder::HighestValue => gb.total_cmp(&ga),
            TopGapOrder::LowestValue => ga.total_cmp(&gb),
            TopGapOrder::LargestMagnitude => gb.abs().total_cmp(&ga.abs()),
        }
        .then(a.tag.cmp(&b.tag))
    });
    rows.truncate(x);
    // GapTable stores rows tag-sorted; rank order is recoverable from the
    // gap values, which is how the display helpers list them.
    GapTable::new(&format!("{}_{}", gap.name, x), gap.columns.clone(), rows)
}

/// One library's point in a Figure 4.10-style distribution plot.
#[derive(Debug, Clone, PartialEq)]
pub struct TagPlotPoint {
    /// Library name (x axis).
    pub library: String,
    /// Expression level of the plotted tag (y axis).
    pub level: f64,
    /// Plot series the library belongs to.
    pub series: PlotSeries,
}

/// The three series of the case-study figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlotSeries {
    /// Cancerous library inside the fascicle (the red dots of Figure 4.10).
    CancerInFascicle,
    /// Cancerous library outside the fascicle.
    CancerOutsideFascicle,
    /// Normal library (the blue squares).
    Normal,
}

impl PlotSeries {
    /// Legend label used by the figures.
    pub fn label(self) -> &'static str {
        match self {
            PlotSeries::CancerInFascicle => "Cancer in Fascicle",
            PlotSeries::CancerOutsideFascicle => "Cancer Not in Fascicle",
            PlotSeries::Normal => "Normal",
        }
    }
}

/// Build the per-library distribution of one tag over an ENUM table,
/// labeling each library by fascicle membership and neoplastic state —
/// the data behind Figures 4.2, 4.3, 4.10 and 4.11.
pub fn tag_distribution(
    table: &EnumTable,
    tag: Tag,
    fascicle_member_names: &[String],
) -> Vec<TagPlotPoint> {
    let Some(tid) = table.matrix.id_of(tag) else {
        return Vec::new();
    };
    table
        .matrix
        .library_ids()
        .map(|lib| {
            let meta = table.matrix.library(lib);
            let series = if fascicle_member_names.iter().any(|n| n == &meta.name) {
                PlotSeries::CancerInFascicle
            } else if meta.state == NeoplasticState::Cancerous {
                PlotSeries::CancerOutsideFascicle
            } else {
                PlotSeries::Normal
            };
            TagPlotPoint {
                library: meta.name.clone(),
                level: table.matrix.value(tid, lib),
                series,
            }
        })
        .collect()
}

/// Group means of a distribution, one per series present — the bar heights
/// the case-study figures report (e.g. Figure 4.2's ≈275 vs ≈100).
pub fn series_means(points: &[TagPlotPoint]) -> Vec<(PlotSeries, f64, usize)> {
    [
        PlotSeries::CancerInFascicle,
        PlotSeries::CancerOutsideFascicle,
        PlotSeries::Normal,
    ]
    .into_iter()
    .filter_map(|series| {
        let values: Vec<f64> = points
            .iter()
            .filter(|p| p.series == series)
            .map(|p| p.level)
            .collect();
        if values.is_empty() {
            None
        } else {
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            Some((series, mean, values.len()))
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::GapRow;
    use gea_sage::corpus::library_meta;
    use gea_sage::library::TissueSource;
    use gea_sage::tag::TagUniverse;
    use gea_sage::{ExpressionMatrix, TissueType};

    fn gap() -> GapTable {
        GapTable::new(
            "g",
            vec!["Gap".to_string()],
            vec![
                GapRow {
                    tag: "AAAAAAAAAA".parse().unwrap(),
                    tag_no: 0,
                    gaps: vec![Some(5.0)],
                },
                GapRow {
                    tag: "CCCCCCCCCC".parse().unwrap(),
                    tag_no: 1,
                    gaps: vec![Some(-20.0)],
                },
                GapRow {
                    tag: "GGGGGGGGGG".parse().unwrap(),
                    tag_no: 2,
                    gaps: vec![None],
                },
                GapRow {
                    tag: "TTTTTTTTTT".parse().unwrap(),
                    tag_no: 3,
                    gaps: vec![Some(12.0)],
                },
            ],
        )
    }

    #[test]
    fn top_by_value_and_magnitude() {
        let g = gap();
        let top2 = top_gaps(&g, 2, TopGapOrder::HighestValue);
        assert_eq!(top2.name, "g_2");
        let tags: Vec<String> = top2.rows().iter().map(|r| r.tag.to_string()).collect();
        // Highest values: 12 and 5 (NULL excluded).
        assert!(tags.contains(&"TTTTTTTTTT".to_string()));
        assert!(tags.contains(&"AAAAAAAAAA".to_string()));

        let mag = top_gaps(&g, 1, TopGapOrder::LargestMagnitude);
        assert_eq!(mag.rows()[0].tag.to_string(), "CCCCCCCCCC");

        let low = top_gaps(&g, 1, TopGapOrder::LowestValue);
        assert_eq!(low.rows()[0].tag.to_string(), "CCCCCCCCCC");
    }

    #[test]
    fn top_x_larger_than_table_returns_all_non_null() {
        let g = gap();
        let all = top_gaps(&g, 100, TopGapOrder::HighestValue);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn distribution_labels_series() {
        let universe = TagUniverse::from_tags(["AAAAAAAAAA".parse::<Tag>().unwrap()]);
        let libs = vec![
            library_meta(
                "c_in",
                TissueType::Brain,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
            library_meta(
                "c_out",
                TissueType::Brain,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
            library_meta(
                "n",
                TissueType::Brain,
                NeoplasticState::Normal,
                TissueSource::BulkTissue,
            ),
        ];
        let table = EnumTable::new(
            "E",
            ExpressionMatrix::from_rows(universe, libs, vec![vec![275.0, 180.0, 100.0]]),
        );
        let points = tag_distribution(&table, "AAAAAAAAAA".parse().unwrap(), &["c_in".to_string()]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].series, PlotSeries::CancerInFascicle);
        assert_eq!(points[1].series, PlotSeries::CancerOutsideFascicle);
        assert_eq!(points[2].series, PlotSeries::Normal);
        let means = series_means(&points);
        assert_eq!(means.len(), 3);
        assert_eq!(means[0].1, 275.0);
        assert_eq!(means[2].1, 100.0);
    }

    #[test]
    fn distribution_of_unknown_tag_is_empty() {
        let universe = TagUniverse::from_tags(["AAAAAAAAAA".parse::<Tag>().unwrap()]);
        let libs = vec![library_meta(
            "x",
            TissueType::Brain,
            NeoplasticState::Normal,
            TissueSource::BulkTissue,
        )];
        let table = EnumTable::new(
            "E",
            ExpressionMatrix::from_rows(universe, libs, vec![vec![1.0]]),
        );
        assert!(tag_distribution(&table, "CCCCCCCCCC".parse().unwrap(), &[]).is_empty());
    }
}
