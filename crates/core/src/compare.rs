//! GAP comparison — the thirteen analysis queries of Case 3 (§4.3.3).
//!
//! After combining two GAP tables (GAPa, GAPb) with union, intersection or
//! difference, "the GEA provides thirteen queries for further analysis of
//! the result". Each GAP table was computed as `diff(SUMYa, SUMYb)`;
//! *higher expression in SUMYa* therefore means a positive gap, and *lower*
//! a negative gap. Queries 6–13 contrast the two tables and so "only apply
//! to Union and Intersection, but not Difference".

use crate::gap::{GapRow, GapTable};
use crate::setops::{gap_intersect, gap_minus, gap_union};

/// How two GAP tables are combined before querying (Figure 4.13's radio
/// buttons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// Tags of either table.
    Union,
    /// Tags common to both tables.
    Intersect,
    /// Tags of the first table only.
    Difference,
}

/// The thirteen queries, numbered as the thesis lists them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareQuery {
    /// 1. Tags always higher in SUMYa in both GAP tables (both gaps
    ///    positive).
    HigherInAInBoth,
    /// 2. Tags always lower in SUMYa in both GAP tables (both negative).
    LowerInAInBoth,
    /// 3. Tags always higher in SUMYb in both GAP tables (≡ query 2 by
    ///    antisymmetry, listed separately in the thesis's menu).
    HigherInBInBoth,
    /// 4. Tags always lower in SUMYb in both GAP tables (≡ query 1).
    LowerInBInBoth,
    /// 5. All tags with non-NULL gap values in both GAP tables.
    NonNullInBoth,
    /// 6. Higher in SUMYa of GAPa, but not in SUMYa of GAPb.
    HigherInAOfFirstOnly,
    /// 7. Lower in SUMYa of GAPa, but not in SUMYa of GAPb.
    LowerInAOfFirstOnly,
    /// 8. Higher in SUMYb of GAPa, but not in SUMYb of GAPb.
    HigherInBOfFirstOnly,
    /// 9. Lower in SUMYb of GAPa, but not in SUMYb of GAPb.
    LowerInBOfFirstOnly,
    /// 10. Higher in SUMYa of GAPb, but not in SUMYa of GAPa.
    HigherInAOfSecondOnly,
    /// 11. Lower in SUMYa of GAPb, but not in SUMYa of GAPa.
    LowerInAOfSecondOnly,
    /// 12. Higher in SUMYb of GAPb, but not in SUMYb of GAPa.
    HigherInBOfSecondOnly,
    /// 13. Lower in SUMYb of GAPb, but not in SUMYb of GAPa.
    LowerInBOfSecondOnly,
}

impl CompareQuery {
    /// All thirteen queries in menu order.
    pub const ALL: [CompareQuery; 13] = [
        CompareQuery::HigherInAInBoth,
        CompareQuery::LowerInAInBoth,
        CompareQuery::HigherInBInBoth,
        CompareQuery::LowerInBInBoth,
        CompareQuery::NonNullInBoth,
        CompareQuery::HigherInAOfFirstOnly,
        CompareQuery::LowerInAOfFirstOnly,
        CompareQuery::HigherInBOfFirstOnly,
        CompareQuery::LowerInBOfFirstOnly,
        CompareQuery::HigherInAOfSecondOnly,
        CompareQuery::LowerInAOfSecondOnly,
        CompareQuery::HigherInBOfSecondOnly,
        CompareQuery::LowerInBOfSecondOnly,
    ];

    /// The thesis's menu wording.
    pub fn description(self) -> &'static str {
        match self {
            CompareQuery::HigherInAInBoth => {
                "Tags always have higher expression values in SUMYa in both GAP tables"
            }
            CompareQuery::LowerInAInBoth => {
                "Tags always have lower expression values in SUMYa in both GAP tables"
            }
            CompareQuery::HigherInBInBoth => {
                "Tags always have higher expression values in SUMYb in both GAP tables"
            }
            CompareQuery::LowerInBInBoth => {
                "Tags always have lower expression values in SUMYb in both GAP tables"
            }
            CompareQuery::NonNullInBoth => "All tags have non-null gap values in both GAP tables",
            CompareQuery::HigherInAOfFirstOnly => {
                "Tags have higher expression in SUMYa of GAPa, not in SUMYa of GAPb"
            }
            CompareQuery::LowerInAOfFirstOnly => {
                "Tags have lower expression in SUMYa of GAPa, not in SUMYa of GAPb"
            }
            CompareQuery::HigherInBOfFirstOnly => {
                "Tags have higher expression in SUMYb of GAPa, not in SUMYb of GAPb"
            }
            CompareQuery::LowerInBOfFirstOnly => {
                "Tags have lower expression in SUMYb of GAPa, not in SUMYb of GAPb"
            }
            CompareQuery::HigherInAOfSecondOnly => {
                "Tags have higher expression in SUMYa of GAPb, not in SUMYa of GAPa"
            }
            CompareQuery::LowerInAOfSecondOnly => {
                "Tags have lower expression in SUMYa of GAPb, not in SUMYa of GAPa"
            }
            CompareQuery::HigherInBOfSecondOnly => {
                "Tags have higher expression in SUMYb of GAPb, not in SUMYb of GAPa"
            }
            CompareQuery::LowerInBOfSecondOnly => {
                "Tags have lower expression in SUMYb of GAPb, not in SUMYb of GAPa"
            }
        }
    }

    /// Whether the query is meaningful after `op` — queries 6–13 need both
    /// tables' gap columns, which Difference does not carry.
    pub fn applies_to(self, op: CompareOp) -> bool {
        match self {
            CompareQuery::HigherInAInBoth
            | CompareQuery::LowerInAInBoth
            | CompareQuery::HigherInBInBoth
            | CompareQuery::LowerInBInBoth
            | CompareQuery::NonNullInBoth => true,
            _ => op != CompareOp::Difference,
        }
    }

    fn matches(self, row: &GapRow) -> bool {
        // In combined tables, column 0 is GAPa's gap and column 1 GAPb's.
        // Difference results carry only GAPa's column.
        let ga = row.gaps.first().copied().flatten();
        let gb = row.gaps.get(1).copied().flatten();
        let pos = |g: Option<f64>| matches!(g, Some(v) if v > 0.0);
        let neg = |g: Option<f64>| matches!(g, Some(v) if v < 0.0);
        match self {
            CompareQuery::HigherInAInBoth | CompareQuery::LowerInBInBoth => {
                pos(ga) && (row.gaps.len() < 2 || pos(gb))
            }
            CompareQuery::LowerInAInBoth | CompareQuery::HigherInBInBoth => {
                neg(ga) && (row.gaps.len() < 2 || neg(gb))
            }
            CompareQuery::NonNullInBoth => row.gaps.iter().all(|g| g.is_some()),
            CompareQuery::HigherInAOfFirstOnly | CompareQuery::LowerInBOfFirstOnly => {
                pos(ga) && !pos(gb)
            }
            CompareQuery::LowerInAOfFirstOnly | CompareQuery::HigherInBOfFirstOnly => {
                neg(ga) && !neg(gb)
            }
            CompareQuery::HigherInAOfSecondOnly | CompareQuery::LowerInBOfSecondOnly => {
                pos(gb) && !pos(ga)
            }
            CompareQuery::LowerInAOfSecondOnly | CompareQuery::HigherInBOfSecondOnly => {
                neg(gb) && !neg(ga)
            }
        }
    }
}

/// Combine two GAP tables and answer one of the thirteen queries — the
/// Compare GAP button of Figure 4.13.
///
/// Returns `None` when `query` does not apply to `op` (the thesis's GUI
/// hides those menu entries).
pub fn compare_gaps(
    name: &str,
    first: &GapTable,
    second: &GapTable,
    op: CompareOp,
    query: CompareQuery,
) -> Option<GapTable> {
    if !query.applies_to(op) {
        return None;
    }
    let combined = match op {
        CompareOp::Union => gap_union(name, first, second),
        CompareOp::Intersect => gap_intersect(name, first, second),
        CompareOp::Difference => gap_minus(name, first, second),
    };
    Some(combined.select(name, |r| query.matches(r)))
}

/// The optimizer's probe-free fast path for `compare(g, g, op, query)` —
/// a comparison of a GAP table with itself.
///
/// Exactly equivalent to [`compare_gaps`]`(name, g, g, op, query)` without
/// building the second operand view or binary-searching `row_for`:
///
/// * **Union ≡ Intersect on self.** Every tag matches itself (`GapTable`
///   construction asserts tag uniqueness), so `gap_union`'s second loop
///   (tags only in the second operand) contributes nothing and both ops
///   produce the input rows with their gap columns doubled — the same
///   qualified column set, in the same sorted row order.
/// * **Difference on self is empty.** Every tag of the first operand occurs
///   in the second, so `gap_minus` keeps nothing; the result still carries
///   the first operand's (unqualified) columns.
///
/// Returns `None` exactly when [`compare_gaps`] would: the query does not
/// apply to the op. Audited for byte-identical downstream output in
/// `tests/opt_audit.rs`.
pub fn compare_gaps_self(
    name: &str,
    g: &GapTable,
    op: CompareOp,
    query: CompareQuery,
) -> Option<GapTable> {
    if !query.applies_to(op) {
        return None;
    }
    let combined = match op {
        CompareOp::Difference => GapTable::new(name, g.columns.clone(), Vec::new()),
        CompareOp::Union | CompareOp::Intersect => {
            // combined_columns(g, g): both operands qualify as the same
            // source table.
            let mut columns = Vec::with_capacity(g.columns.len() * 2);
            for _ in 0..2 {
                for c in &g.columns {
                    columns.push(format!("{}.{}", g.name, c));
                }
            }
            let rows = g
                .rows()
                .iter()
                .map(|r| {
                    let mut gaps = r.gaps.clone();
                    gaps.extend_from_slice(&r.gaps);
                    GapRow {
                        tag: r.tag,
                        tag_no: r.tag_no,
                        gaps,
                    }
                })
                .collect();
            GapTable::new(name, columns, rows)
        }
    };
    Some(combined.select(name, |r| query.matches(r)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::GapRow;

    fn gap_table(name: &str, rows: &[(&str, Option<f64>)]) -> GapTable {
        GapTable::new(
            name,
            vec!["Gap".to_string()],
            rows.iter()
                .enumerate()
                .map(|(i, (tag, gap))| GapRow {
                    tag: tag.parse().unwrap(),
                    tag_no: i as u32,
                    gaps: vec![*gap],
                })
                .collect(),
        )
    }

    fn brain_and_breast() -> (GapTable, GapTable) {
        // Four shared tags covering all sign combinations, plus one private
        // tag each.
        let brain = gap_table(
            "brain_gap",
            &[
                ("AAAAAAAAAA", Some(-5.0)), // lower in cancer, both
                ("CCCCCCCCCC", Some(4.0)),  // higher in cancer, both
                ("GGGGGGGGGG", Some(-2.0)), // lower in brain only
                ("TTTTTTTTTT", None),       // null in brain
                ("ACACACACAC", Some(1.0)),  // brain-only tag
            ],
        );
        let breast = gap_table(
            "breast_gap",
            &[
                ("AAAAAAAAAA", Some(-9.0)),
                ("CCCCCCCCCC", Some(7.0)),
                ("GGGGGGGGGG", Some(3.0)),
                ("TTTTTTTTTT", Some(2.0)),
                ("GTGTGTGTGT", Some(-1.0)), // breast-only tag
            ],
        );
        (brain, breast)
    }

    #[test]
    fn case_3_lower_in_cancer_across_tissues() {
        // The thesis's Case 3: intersect the brain and breast GAP tables
        // and run query 2 — tags always lower in the cancerous SUMY.
        let (brain, breast) = brain_and_breast();
        let result = compare_gaps(
            "brainBreastIntersect1",
            &brain,
            &breast,
            CompareOp::Intersect,
            CompareQuery::LowerInAInBoth,
        )
        .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.rows()[0].tag.to_string(), "AAAAAAAAAA");
    }

    #[test]
    fn query_1_higher_in_both() {
        let (brain, breast) = brain_and_breast();
        let result = compare_gaps(
            "q1",
            &brain,
            &breast,
            CompareOp::Intersect,
            CompareQuery::HigherInAInBoth,
        )
        .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.rows()[0].tag.to_string(), "CCCCCCCCCC");
    }

    #[test]
    fn queries_2_and_3_agree_by_antisymmetry() {
        let (brain, breast) = brain_and_breast();
        let q2 = compare_gaps(
            "q2",
            &brain,
            &breast,
            CompareOp::Intersect,
            CompareQuery::LowerInAInBoth,
        )
        .unwrap();
        let q3 = compare_gaps(
            "q3",
            &brain,
            &breast,
            CompareOp::Intersect,
            CompareQuery::HigherInBInBoth,
        )
        .unwrap();
        assert_eq!(q2.project_tags(), q3.project_tags());
    }

    #[test]
    fn query_5_non_null_in_both() {
        let (brain, breast) = brain_and_breast();
        let result = compare_gaps(
            "q5",
            &brain,
            &breast,
            CompareOp::Intersect,
            CompareQuery::NonNullInBoth,
        )
        .unwrap();
        // TTTTTTTTTT is NULL in brain → excluded; 3 shared non-null tags.
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn case_4_difference_finds_tissue_unique_tags() {
        // Case 4: tags with a (negative) gap unique to brain — Difference
        // keeps brain-only tags; then query 2 on the single remaining
        // column.
        let (brain, breast) = brain_and_breast();
        let unique = compare_gaps(
            "brainBreastDiff1",
            &brain,
            &breast,
            CompareOp::Difference,
            CompareQuery::LowerInAInBoth,
        )
        .unwrap();
        // Brain-only tag with negative gap: none (ACACACACAC is +1).
        assert!(unique.is_empty());
        let unique_pos = compare_gaps(
            "d2",
            &brain,
            &breast,
            CompareOp::Difference,
            CompareQuery::HigherInAInBoth,
        )
        .unwrap();
        assert_eq!(unique_pos.len(), 1);
        assert_eq!(unique_pos.rows()[0].tag.to_string(), "ACACACACAC");
    }

    #[test]
    fn contrast_queries_6_to_13() {
        let (brain, breast) = brain_and_breast();
        // Query 7: lower in SUMYa of GAPa but not of GAPb →
        // GGGGGGGGGG (−2 in brain, +3 in breast).
        let q7 = compare_gaps(
            "q7",
            &brain,
            &breast,
            CompareOp::Intersect,
            CompareQuery::LowerInAOfFirstOnly,
        )
        .unwrap();
        assert_eq!(q7.project_tags().len(), 1);
        assert_eq!(q7.rows()[0].tag.to_string(), "GGGGGGGGGG");
        // Query 10: higher in SUMYa of GAPb but not of GAPa →
        // GGGGGGGGGG again (+3 in breast, −2 in brain), and TTTTTTTTTT
        // (+2 in breast, NULL in brain) under Union.
        let q10 = compare_gaps(
            "q10",
            &brain,
            &breast,
            CompareOp::Union,
            CompareQuery::HigherInAOfSecondOnly,
        )
        .unwrap();
        let tags: Vec<String> = q10.rows().iter().map(|r| r.tag.to_string()).collect();
        assert!(tags.contains(&"GGGGGGGGGG".to_string()));
        assert!(tags.contains(&"TTTTTTTTTT".to_string()));
    }

    #[test]
    fn contrast_queries_do_not_apply_to_difference() {
        let (brain, breast) = brain_and_breast();
        for q in &CompareQuery::ALL[5..] {
            assert!(
                compare_gaps("x", &brain, &breast, CompareOp::Difference, *q).is_none(),
                "{q:?} should not apply to Difference"
            );
        }
        for q in &CompareQuery::ALL[..5] {
            assert!(compare_gaps("x", &brain, &breast, CompareOp::Difference, *q).is_some());
        }
    }

    #[test]
    fn all_queries_have_descriptions() {
        for q in CompareQuery::ALL {
            assert!(!q.description().is_empty());
        }
    }

    #[test]
    fn self_fast_path_matches_general_compare_for_every_op_and_query() {
        let (brain, _) = brain_and_breast();
        for op in [
            CompareOp::Union,
            CompareOp::Intersect,
            CompareOp::Difference,
        ] {
            for q in CompareQuery::ALL {
                let slow = compare_gaps("c", &brain, &brain, op, q);
                let fast = compare_gaps_self("c", &brain, op, q);
                match (slow, fast) {
                    (None, None) => {}
                    (Some(s), Some(f)) => {
                        assert_eq!(s.name, f.name, "{op:?} {q:?}");
                        assert_eq!(s.columns, f.columns, "{op:?} {q:?}");
                        assert_eq!(s.rows(), f.rows(), "{op:?} {q:?}");
                    }
                    (s, f) => panic!("{op:?} {q:?}: applicability diverged: {s:?} vs {f:?}"),
                }
            }
        }
    }
}
