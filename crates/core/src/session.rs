//! The GEA analysis session — the toolkit's front door.
//!
//! A [`GeaSession`] owns the cleaned data set, the named intermediate
//! tables (ENUM / SUMY / GAP), the lineage DAG, and the relational database
//! the tables are materialized into. Its methods are the thesis's *macro
//! operations* (§4.1): "immediately after the mining operation, both the
//! SUMY table and the corresponding ENUM table are created with an
//! automatic invocation of the populate operation. … the output of an
//! operation becomes the input of another", so each case study of Chapter 4
//! is a short sequence of session calls (see `examples/brain_case_study.rs`).

use std::collections::BTreeMap;
use std::fmt;

use gea_cluster::{FascicleParams, ToleranceVector};
use gea_relstore::Database;
use gea_sage::clean::{clean, CleaningConfig, CleaningReport};
use gea_sage::corpus::SageCorpus;
use gea_sage::library::{LibraryId, LibraryProperty};
use gea_sage::tag::Tag;
use gea_sage::TissueType;

use crate::compare::{compare_gaps, compare_gaps_self, CompareOp, CompareQuery};
use crate::enum_table::EnumTable;
use crate::gap::{diff, GapTable};
use crate::lineage::{Lineage, LineageError, NodeId, NodeKind};
use crate::mine::{generate_metadata, mine, MinedCluster, Miner};
use crate::relational::{enum_to_relation, gap_to_relation, sumy_to_relation};
use crate::sumy::{aggregate_tags, SumyTable};
use crate::topgap::{tag_distribution, top_gaps, TagPlotPoint, TopGapOrder};

/// Parallel-execution knobs carried by a session: how many worker threads
/// the sharded drivers may spawn and how many contiguous shards an
/// operator's input is partitioned into. Sharding is an execution detail
/// only — every sharded driver is byte-identical to its serial
/// counterpart — so this configuration is *not* part of the persisted
/// session state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads the sharded drivers may use (min 1).
    pub threads: usize,
    /// Contiguous shards an operator's input is split into (min 1).
    pub shards: usize,
}

impl ExecConfig {
    /// Single-threaded, single-shard: the serial path.
    pub fn serial() -> ExecConfig {
        ExecConfig {
            threads: 1,
            shards: 1,
        }
    }

    /// `threads` workers and one shard per worker; `0` means the default
    /// (available parallelism).
    pub fn with_threads(threads: usize) -> ExecConfig {
        if threads == 0 {
            return ExecConfig::default();
        }
        ExecConfig {
            threads,
            shards: threads,
        }
    }
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecConfig {
            threads,
            shards: threads,
        }
    }
}

/// One completed parallel-operator execution, noted on the session so
/// front-ends (the server's `stats` counters) can observe executor
/// activity without threading a metrics handle through `gea-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecEvent {
    /// Operator name (`"mine"`, `"populate"`, `"aggregate"`).
    pub op: &'static str,
    /// Shards the input was split into.
    pub shards: usize,
    /// Wall-clock time of the parallel section, in microseconds.
    pub wall_us: u64,
    /// Summed per-worker busy time (a CPU-time proxy), in microseconds.
    pub busy_us: u64,
}

/// Session-level errors.
#[derive(Debug)]
pub enum GeaError {
    /// The requested table does not exist.
    NotFound {
        /// `ENUM`, `SUMY`, `GAP` or `fascicle`.
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// A table with that name already exists (the Figure 4.28 redundancy
    /// check; use a fresh name or delete first).
    NameTaken(String),
    /// A fascicle failed the purity check for the requested property —
    /// "if a fascicle is non-pure … the analysis of this fascicle is
    /// terminated" (Figure 4.8).
    NotPure {
        /// The fascicle.
        fascicle: String,
        /// The property it is impure on.
        property: LibraryProperty,
    },
    /// The operation produced or received an empty library set.
    EmptyGroup(String),
    /// Lineage bookkeeping failed.
    Lineage(LineageError),
    /// A requested comparison query does not apply to the comparison
    /// operation (queries 6–13 under Difference).
    QueryNotApplicable,
}

impl From<LineageError> for GeaError {
    fn from(e: LineageError) -> GeaError {
        GeaError::Lineage(e)
    }
}

impl fmt::Display for GeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeaError::NotFound { kind, name } => write!(f, "no {kind} table named {name:?}"),
            GeaError::NameTaken(name) => write!(
                f,
                "a table named {name:?} already exists; replace or choose another name"
            ),
            GeaError::NotPure { fascicle, property } => write!(
                f,
                "fascicle {fascicle:?} is not pure on property {property}"
            ),
            GeaError::EmptyGroup(what) => write!(f, "{what} selected no libraries"),
            GeaError::Lineage(e) => write!(f, "{e}"),
            GeaError::QueryNotApplicable => {
                f.write_str("this query applies only to union/intersection comparisons")
            }
        }
    }
}

impl std::error::Error for GeaError {}

/// A mined fascicle's bookkeeping within a session.
#[derive(Debug, Clone)]
pub struct FascicleRecord {
    /// Fascicle name (`brain35k_4`).
    pub name: String,
    /// The data set it was mined from.
    pub dataset: String,
    /// Member library names.
    pub members: Vec<String>,
    /// Compact tags.
    pub compact_tags: Vec<Tag>,
    /// Name of the automatically created SUMY definition.
    pub sumy_name: String,
    /// Purity results, filled in by [`GeaSession::purity_check`].
    pub purity: Vec<LibraryProperty>,
    /// Mining backend that produced it (`fascicles`, `isa`, `simplex`).
    /// Snapshots written before backends existed restore as `fascicles`.
    pub backend: String,
    /// Backend parameters as rendered `(key, value)` pairs — the full
    /// provenance needed to reproduce the mine that made this fascicle.
    pub params: Vec<(String, String)>,
}

/// Names of the three control-group SUMY tables of §4.3.1.2 steps 4–5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlGroups {
    /// Libraries in the fascicle (`…CancerFasTbl`).
    pub in_fascicle: String,
    /// Libraries with the same property but outside the fascicle
    /// (`…CanNotInFasTbl`).
    pub outside_fascicle: String,
    /// Libraries with the opposite property (`…NormalTable`).
    pub contrast: String,
}

/// The side-effect-free inputs of the `formSUM` macro operation
/// ([`GeaSession::form_control_groups`]): the three result names, the
/// compact-tag ids within the source data set, and the three library
/// selections the SUMY aggregations run over. Computed under `&self`, so
/// shard-scoped front-ends (the router's scatter verbs) can evaluate any
/// tag range of the aggregations under a shared read lock and hand the
/// merged rows back to [`GeaSession::form_control_groups_with`].
#[derive(Debug, Clone)]
pub struct ControlGroupInputs {
    /// The three result-table names.
    pub names: ControlGroups,
    /// Compact-tag ids within the *data set* matrix, in record order.
    pub compact_ids: Vec<gea_sage::tag::TagId>,
    /// Fascicle members selected out of the data set (the temporary
    /// selection the in-fascicle SUMY aggregates over; never installed).
    pub in_members: EnumTable,
    /// ENUM₂: same property, outside the fascicle.
    pub outside: EnumTable,
    /// ENUM₃: the contrasting property.
    pub contrast: EnumTable,
}

/// The complete state of a [`GeaSession`], decomposed into owned parts —
/// the unit of persistence for `gea_core::persist`'s full-fidelity
/// snapshot format. Everything a session holds is here except the
/// name→node index, which is derivable from the lineage and rebuilt by
/// [`GeaSession::from_snapshot`].
pub struct SessionSnapshot {
    /// The raw corpus.
    pub corpus: SageCorpus,
    /// The cleaned root data set (`SAGE`).
    pub base: EnumTable,
    /// The cleaning report.
    pub report: CleaningReport,
    /// Materialized relational tables.
    pub db: Database,
    /// The lineage DAG.
    pub lineage: Lineage,
    /// Derived ENUM tables by name.
    pub enums: BTreeMap<String, EnumTable>,
    /// SUMY tables by name.
    pub sumys: BTreeMap<String, SumyTable>,
    /// GAP tables by name.
    pub gaps: BTreeMap<String, GapTable>,
    /// Fascicle records by name.
    pub fascicles: BTreeMap<String, FascicleRecord>,
}

/// One GEA analysis session.
pub struct GeaSession {
    corpus: SageCorpus,
    base: EnumTable,
    report: CleaningReport,
    db: Database,
    lineage: Lineage,
    enums: BTreeMap<String, EnumTable>,
    sumys: BTreeMap<String, SumyTable>,
    gaps: BTreeMap<String, GapTable>,
    fascicles: BTreeMap<String, FascicleRecord>,
    nodes: BTreeMap<String, NodeId>,
    exec: ExecConfig,
    exec_events: Vec<ExecEvent>,
}

impl GeaSession {
    /// Open a session: run the §4.2 cleaning pipeline over a raw corpus and
    /// register the cleaned data set as the root ENUM table `SAGE`.
    pub fn open(corpus: SageCorpus, config: &CleaningConfig) -> Result<GeaSession, GeaError> {
        let (matrix, report) = clean(&corpus, config);
        let base = EnumTable::new("SAGE", matrix);
        let mut lineage = Lineage::new();
        let root = lineage.record(
            "SAGE",
            NodeKind::Enum,
            "clean",
            vec![
                (
                    "min_tolerance".to_string(),
                    config.min_tolerance.to_string(),
                ),
                (
                    "scale_to".to_string(),
                    config
                        .scale_to
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| "none".to_string()),
                ),
            ],
            &[],
        )?;
        let mut nodes = BTreeMap::new();
        nodes.insert("SAGE".to_string(), root);
        Ok(GeaSession {
            corpus,
            base,
            report,
            db: Database::new(),
            lineage,
            enums: BTreeMap::new(),
            sumys: BTreeMap::new(),
            gaps: BTreeMap::new(),
            fascicles: BTreeMap::new(),
            nodes,
            exec: ExecConfig::default(),
            exec_events: Vec::new(),
        })
    }

    /// Open a session directly over a prepared expression matrix — the
    /// microarray path (§2.4): chip intensities converted by
    /// `gea_sage::microarray::to_expression_matrix` need no §4.2 error
    /// removal, so they enter the toolkit here. The raw-corpus searches
    /// (library totals, tissue listings over raw counts) see an empty
    /// corpus; everything else behaves identically.
    pub fn open_matrix(
        matrix: gea_sage::ExpressionMatrix,
        source_description: &str,
    ) -> Result<GeaSession, GeaError> {
        let n_tags = matrix.n_tags();
        let base = EnumTable::new("SAGE", matrix);
        let mut lineage = Lineage::new();
        let root = lineage.record(
            "SAGE",
            NodeKind::Enum,
            "load_matrix",
            vec![("source".to_string(), source_description.to_string())],
            &[],
        )?;
        let mut nodes = BTreeMap::new();
        nodes.insert("SAGE".to_string(), root);
        Ok(GeaSession {
            corpus: SageCorpus::new(),
            base,
            report: CleaningReport {
                raw_union_tags: n_tags,
                kept_tags: n_tags,
                removed_fraction_per_library: Vec::new(),
                freq1_union_fraction: 0.0,
                min_tolerance: 0,
                scale_to: None,
            },
            db: Database::new(),
            lineage,
            enums: BTreeMap::new(),
            sumys: BTreeMap::new(),
            gaps: BTreeMap::new(),
            fascicles: BTreeMap::new(),
            nodes,
            exec: ExecConfig::default(),
            exec_events: Vec::new(),
        })
    }

    /// Reassemble a session from a [`SessionSnapshot`] (the persistence
    /// path). The name→node index is rebuilt from the lineage: live node
    /// names are unique (enforced by `Lineage::record`), so the last
    /// occurrence wins harmlessly.
    pub fn from_snapshot(snapshot: SessionSnapshot) -> GeaSession {
        let mut nodes = BTreeMap::new();
        for node in snapshot.lineage.iter() {
            nodes.insert(node.name.clone(), node.id);
        }
        GeaSession {
            corpus: snapshot.corpus,
            base: snapshot.base,
            report: snapshot.report,
            db: snapshot.db,
            lineage: snapshot.lineage,
            enums: snapshot.enums,
            sumys: snapshot.sumys,
            gaps: snapshot.gaps,
            fascicles: snapshot.fascicles,
            nodes,
            exec: ExecConfig::default(),
            exec_events: Vec::new(),
        }
    }

    /// Run an xProfiler-style pooled comparison (§2.3.3) between two named
    /// library groups of a data set — the baseline workflow, for
    /// contrasting with the mined-fascicle GAP workflow.
    pub fn xprofiler(
        &self,
        dataset: &str,
        group_a: &[&str],
        group_b: &[&str],
    ) -> Result<crate::xprofiler::XProfilerResult, GeaError> {
        let table = self.enum_table(dataset)?;
        let resolve =
            |names: &[&str]| table.library_ids_where(|m| names.contains(&m.name.as_str()));
        let a = resolve(group_a);
        let b = resolve(group_b);
        if a.is_empty() || b.is_empty() {
            return Err(GeaError::EmptyGroup("xProfiler pool".to_string()));
        }
        Ok(crate::xprofiler::compare_pools(table, &a, &b))
    }

    // ----- accessors ------------------------------------------------------

    /// The raw corpus (for the §4.4.4.2 searches).
    pub fn corpus(&self) -> &SageCorpus {
        &self.corpus
    }

    /// The session's parallel-execution configuration.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec
    }

    /// Replace the parallel-execution configuration.
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.exec = config;
    }

    /// Note a completed parallel-operator execution (called by the
    /// `gea-exec` drivers' session wrappers).
    pub fn note_exec(&mut self, event: ExecEvent) {
        self.exec_events.push(event);
    }

    /// Take the accumulated executor events, leaving the buffer empty.
    /// Front-ends drain this after each command to feed their counters.
    pub fn drain_exec_events(&mut self) -> Vec<ExecEvent> {
        std::mem::take(&mut self.exec_events)
    }

    /// The cleaned root data set.
    pub fn base(&self) -> &EnumTable {
        &self.base
    }

    /// The cleaning report.
    pub fn cleaning_report(&self) -> &CleaningReport {
        &self.report
    }

    /// The lineage DAG.
    pub fn lineage(&self) -> &Lineage {
        &self.lineage
    }

    /// The relational database of materialized tables.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Look up an ENUM table (the root `SAGE` included).
    pub fn enum_table(&self, name: &str) -> Result<&EnumTable, GeaError> {
        if name == "SAGE" {
            return Ok(&self.base);
        }
        self.enums.get(name).ok_or(GeaError::NotFound {
            kind: "ENUM",
            name: name.to_string(),
        })
    }

    /// Look up a SUMY table.
    pub fn sumy(&self, name: &str) -> Result<&SumyTable, GeaError> {
        self.sumys.get(name).ok_or(GeaError::NotFound {
            kind: "SUMY",
            name: name.to_string(),
        })
    }

    /// Look up a GAP table.
    pub fn gap(&self, name: &str) -> Result<&GapTable, GeaError> {
        self.gaps.get(name).ok_or(GeaError::NotFound {
            kind: "GAP",
            name: name.to_string(),
        })
    }

    /// Look up a fascicle record.
    pub fn fascicle(&self, name: &str) -> Result<&FascicleRecord, GeaError> {
        self.fascicles.get(name).ok_or(GeaError::NotFound {
            kind: "fascicle",
            name: name.to_string(),
        })
    }

    /// Names of all fascicles mined so far.
    pub fn fascicle_names(&self) -> Vec<&str> {
        self.fascicles.keys().map(|s| s.as_str()).collect()
    }

    /// All derived ENUM tables by name (the root `SAGE` excluded).
    pub fn enum_tables(&self) -> &BTreeMap<String, EnumTable> {
        &self.enums
    }

    /// All SUMY tables by name.
    pub fn sumy_tables(&self) -> &BTreeMap<String, SumyTable> {
        &self.sumys
    }

    /// All GAP tables by name.
    pub fn gap_tables(&self) -> &BTreeMap<String, GapTable> {
        &self.gaps
    }

    /// All fascicle records by name.
    pub fn fascicle_records(&self) -> &BTreeMap<String, FascicleRecord> {
        &self.fascicles
    }

    /// Approximate heap bytes held by the named derived tables (ENUM,
    /// SUMY, GAP) and fascicle records — the part of the session only it
    /// can see; [`crate::mem::ApproxMem`] for `GeaSession` adds the
    /// corpus, base matrix, database, and lineage on top.
    pub fn named_tables_bytes(&self) -> usize {
        use crate::mem::ApproxMem;
        self.enums.approx_bytes()
            + self.sumys.approx_bytes()
            + self.gaps.approx_bytes()
            + self.fascicles.approx_bytes()
    }

    fn check_name_free(&self, name: &str) -> Result<(), GeaError> {
        if name == "SAGE"
            || self.enums.contains_key(name)
            || self.sumys.contains_key(name)
            || self.gaps.contains_key(name)
        {
            return Err(GeaError::NameTaken(name.to_string()));
        }
        Ok(())
    }

    fn node(&self, name: &str) -> Option<NodeId> {
        self.nodes.get(name).copied()
    }

    fn record_node(
        &mut self,
        name: &str,
        kind: NodeKind,
        op: &str,
        params: Vec<(String, String)>,
        parents: &[NodeId],
    ) -> Result<NodeId, GeaError> {
        let id = self.lineage.record(name, kind, op, params, parents)?;
        self.nodes.insert(name.to_string(), id);
        Ok(id)
    }

    // ----- data set construction (§4.3.1.2 step 1, Case 5) ----------------

    /// Create a tissue-type data set: `E = σ_tissueType(SAGE)` (Figure 4.4).
    pub fn create_tissue_dataset(
        &mut self,
        name: &str,
        tissue: &TissueType,
    ) -> Result<(), GeaError> {
        self.check_name_free(name)?;
        let table = self.base.select_tissue(name, tissue);
        if table.n_libraries() == 0 {
            return Err(GeaError::EmptyGroup(format!("tissue type {tissue}")));
        }
        let parent = self.node("SAGE").expect("root exists");
        self.record_node(
            name,
            NodeKind::Enum,
            "select_tissue",
            vec![("tissue".to_string(), tissue.to_string())],
            &[parent],
        )?;
        self.enums.insert(name.to_string(), table);
        Ok(())
    }

    /// Create a user-defined data set from explicit library names
    /// (Figure 4.15's customize window).
    pub fn create_custom_dataset(
        &mut self,
        name: &str,
        library_names: &[&str],
    ) -> Result<(), GeaError> {
        self.check_name_free(name)?;
        let table = self
            .base
            .select_libraries(name, |m| library_names.contains(&m.name.as_str()));
        if table.n_libraries() == 0 {
            return Err(GeaError::EmptyGroup("custom data set".to_string()));
        }
        let parent = self.node("SAGE").expect("root exists");
        self.record_node(
            name,
            NodeKind::Enum,
            "custom_dataset",
            vec![("libraries".to_string(), library_names.join(","))],
            &[parent],
        )?;
        self.enums.insert(name.to_string(), table);
        Ok(())
    }

    /// `σ_libraries(dataset)`: a new ENUM table keeping only the named
    /// libraries of an existing data set — the GQL `select` operation
    /// (a generalization of [`GeaSession::create_custom_dataset`], which
    /// always selects from the root).
    pub fn select_dataset_libraries(
        &mut self,
        name: &str,
        dataset: &str,
        library_names: &[&str],
    ) -> Result<(), GeaError> {
        self.select_dataset_libraries_traced(name, dataset, library_names, None)
    }

    /// [`GeaSession::select_dataset_libraries`] with an optional optimizer
    /// trace: when the selection ran as part of a fused plan step, the rule
    /// name is recorded as a lineage param (`optimizer`). Params never
    /// appear in the rendered lineage tree, so traced and untraced runs are
    /// wire-identical; the trace survives in snapshots for provenance.
    pub fn select_dataset_libraries_traced(
        &mut self,
        name: &str,
        dataset: &str,
        library_names: &[&str],
        optimizer: Option<&str>,
    ) -> Result<(), GeaError> {
        self.check_name_free(name)?;
        let source = self.enum_table(dataset)?;
        let table = source.select_libraries(name, |m| library_names.contains(&m.name.as_str()));
        if table.n_libraries() == 0 {
            return Err(GeaError::EmptyGroup(format!("selection from {dataset}")));
        }
        let parent = self.node(dataset).ok_or_else(|| GeaError::NotFound {
            kind: "ENUM",
            name: dataset.to_string(),
        })?;
        let mut params = vec![
            ("dataset".to_string(), dataset.to_string()),
            ("libraries".to_string(), library_names.join(",")),
        ];
        if let Some(rule) = optimizer {
            params.push(("optimizer".to_string(), rule.to_string()));
        }
        self.record_node(name, NodeKind::Enum, "select_libraries", params, &[parent])?;
        self.enums.insert(name.to_string(), table);
        Ok(())
    }

    /// `π_tags(dataset)`: a new ENUM table keeping only the given tags of an
    /// existing data set — the GQL `project` operation. Tags absent from the
    /// data set are ignored; projecting onto nothing is an error.
    pub fn project_dataset_tags(
        &mut self,
        name: &str,
        dataset: &str,
        tags: &[Tag],
    ) -> Result<(), GeaError> {
        self.check_name_free(name)?;
        let source = self.enum_table(dataset)?;
        let ids: Vec<_> = tags
            .iter()
            .filter_map(|&t| source.matrix.id_of(t))
            .collect();
        if ids.is_empty() {
            return Err(GeaError::EmptyGroup(format!(
                "projection of {dataset} onto {} tag(s)",
                tags.len()
            )));
        }
        let table = source.select_tags(name, &ids);
        let parent = self.node(dataset).ok_or_else(|| GeaError::NotFound {
            kind: "ENUM",
            name: dataset.to_string(),
        })?;
        self.record_node(
            name,
            NodeKind::Enum,
            "project_tags",
            vec![
                ("dataset".to_string(), dataset.to_string()),
                ("tags".to_string(), ids.len().to_string()),
            ],
            &[parent],
        )?;
        self.enums.insert(name.to_string(), table);
        Ok(())
    }

    // ----- mining (§4.3.1.2 steps 2–3) -------------------------------------

    /// The Figure 4.5 metadata generator for a registered data set.
    pub fn metadata(
        &self,
        dataset: &str,
        width_fraction: f64,
    ) -> Result<ToleranceVector, GeaError> {
        Ok(generate_metadata(self.enum_table(dataset)?, width_fraction))
    }

    /// Calculate fascicles over a data set (Figure 4.6) and — as the macro
    /// operation prescribes — create each fascicle's ENUM and SUMY tables
    /// automatically. Returns the fascicle names (`{out}_1`, `{out}_2`, …).
    pub fn calculate_fascicles(
        &mut self,
        dataset: &str,
        out: &str,
        width_fraction: f64,
        params: &FascicleParams,
    ) -> Result<Vec<String>, GeaError> {
        let table = self.enum_table(dataset)?.clone();
        let tol = generate_metadata(&table, width_fraction);
        let clusters = mine(&table, out, &Miner::Fascicles(params.clone()), Some(&tol));
        self.install_mined_fascicles(dataset, width_fraction, params, &table, clusters)
    }

    /// Install the clusters of a completed `mine` pass over `table` (the
    /// current contents of `dataset`) as fascicles: lineage nodes, the
    /// per-fascicle ENUM/SUMY tables, relational materialization, and the
    /// fascicle records. Split out of [`GeaSession::calculate_fascicles`]
    /// so parallel front-ends (`gea-exec`) can run the mine itself on
    /// their own executor and hand the clusters back for bookkeeping that
    /// is identical to the serial path.
    pub fn install_mined_fascicles(
        &mut self,
        dataset: &str,
        width_fraction: f64,
        params: &FascicleParams,
        table: &EnumTable,
        clusters: Vec<MinedCluster>,
    ) -> Result<Vec<String>, GeaError> {
        let lineage_params = vec![
            ("tissue_dataset".to_string(), dataset.to_string()),
            (
                "compact_attrs".to_string(),
                params.min_compact_attrs.to_string(),
            ),
            ("width_fraction".to_string(), width_fraction.to_string()),
            ("batch".to_string(), params.batch_size.to_string()),
            ("min_size".to_string(), params.min_records.to_string()),
        ];
        let backend_params = vec![
            (
                "compact_attrs".to_string(),
                params.min_compact_attrs.to_string(),
            ),
            ("width_fraction".to_string(), width_fraction.to_string()),
            ("batch".to_string(), params.batch_size.to_string()),
            ("min_size".to_string(), params.min_records.to_string()),
        ];
        self.install_mined_clusters(
            dataset,
            "Fascicles",
            lineage_params,
            "fascicles",
            backend_params,
            table,
            clusters,
        )
    }

    /// Backend-generic form of [`GeaSession::install_mined_fascicles`]:
    /// the same bookkeeping (lineage node, ENUM/SUMY materialization,
    /// relational table, fascicle record), parameterized over the lineage
    /// operation label and the backend provenance recorded on each
    /// fascicle. `gea-exec`'s backend drivers (`isa`, `simplex`) call
    /// this directly; the Fascicles path delegates here with its historic
    /// labels, so its lineage and tables are byte-identical to before the
    /// backend subsystem existed.
    #[allow(clippy::too_many_arguments)]
    pub fn install_mined_clusters(
        &mut self,
        dataset: &str,
        operation: &str,
        lineage_params: Vec<(String, String)>,
        backend: &str,
        backend_params: Vec<(String, String)>,
        table: &EnumTable,
        clusters: Vec<MinedCluster>,
    ) -> Result<Vec<String>, GeaError> {
        let parent = self.node(dataset).ok_or_else(|| GeaError::NotFound {
            kind: "ENUM",
            name: dataset.to_string(),
        })?;
        let mut names = Vec::with_capacity(clusters.len());
        for cluster in clusters {
            self.check_name_free(&cluster.name)?;
            self.record_node(
                &cluster.name,
                NodeKind::Fascicle,
                operation,
                lineage_params.clone(),
                &[parent],
            )?;
            // The fascicle's ENUM identity: member libraries × compact tags.
            let members_enum = table
                .with_libraries(&cluster.name, &cluster.libraries)
                .select_tags(&cluster.name, &cluster.compact_tags);
            let record = FascicleRecord {
                name: cluster.name.clone(),
                dataset: dataset.to_string(),
                members: members_enum
                    .libraries()
                    .iter()
                    .map(|m| m.name.clone())
                    .collect(),
                compact_tags: cluster
                    .compact_tags
                    .iter()
                    .map(|&t| table.matrix.tag_of(t))
                    .collect(),
                sumy_name: cluster.name.clone(),
                purity: Vec::new(),
                backend: backend.to_string(),
                params: backend_params.clone(),
            };
            self.db.create_or_replace(
                &cluster.name,
                enum_to_relation(&members_enum).map_err(|e| GeaError::EmptyGroup(e.to_string()))?,
            );
            self.enums.insert(cluster.name.clone(), members_enum);
            self.sumys.insert(cluster.name.clone(), cluster.sumy);
            self.fascicles.insert(cluster.name.clone(), record);
            names.push(cluster.name);
        }
        Ok(names)
    }

    // ----- the populate operator (§3.3) ------------------------------------

    /// The thesis's populate operator as a macro operation: materialize
    /// the ENUM of `dataset` libraries whose expression satisfies every
    /// per-tag condition of the SUMY, restricted to the SUMY's tags —
    /// "the populate operator converts a cluster from its intensional/SUMY
    /// form to its extensional/ENUM form".
    pub fn populate_from_sumy(
        &mut self,
        name: &str,
        sumy: &str,
        dataset: &str,
    ) -> Result<usize, GeaError> {
        self.populate_from_sumy_with(name, sumy, dataset, |s, t| {
            crate::populate::populate_columnar(s, t).0
        })
    }

    /// [`GeaSession::populate_from_sumy`] with a pluggable evaluation of
    /// the populate operator, so `gea-exec` can route the scan through its
    /// sharded drivers. The callback must return exactly the hit list
    /// [`crate::populate::populate_scan`] returns (the columnar pruning
    /// kernel and the sharded drivers all do — same predicate, same
    /// ascending order) — the bookkeeping (lineage, relational
    /// materialization, naming) is shared, so results are identical by
    /// construction whenever the hits are.
    pub fn populate_from_sumy_with(
        &mut self,
        name: &str,
        sumy: &str,
        dataset: &str,
        populate_fn: impl FnOnce(&SumyTable, &EnumTable) -> Vec<LibraryId>,
    ) -> Result<usize, GeaError> {
        self.populate_from_sumy_traced(name, sumy, dataset, None, populate_fn)
    }

    /// [`GeaSession::populate_from_sumy_with`] with an optional optimizer
    /// rule name recorded as a lineage param (`optimizer`), the same
    /// wire-invisible annotation the compare/fusion fast paths leave.
    pub fn populate_from_sumy_traced(
        &mut self,
        name: &str,
        sumy: &str,
        dataset: &str,
        optimizer: Option<&str>,
        populate_fn: impl FnOnce(&SumyTable, &EnumTable) -> Vec<LibraryId>,
    ) -> Result<usize, GeaError> {
        self.check_name_free(name)?;
        let sumy_table = self.sumy(sumy)?.clone();
        let table = self.enum_table(dataset)?.clone();
        let libs = populate_fn(&sumy_table, &table);
        let result = crate::populate::materialize_populate(name, &sumy_table, &table, &libs);
        if result.n_libraries() == 0 {
            return Err(GeaError::EmptyGroup(format!("populate({sumy}, {dataset})")));
        }
        let parents: Vec<NodeId> = [sumy, dataset]
            .iter()
            .filter_map(|n| self.node(n))
            .collect();
        let mut params = vec![
            ("sumy".to_string(), sumy.to_string()),
            ("dataset".to_string(), dataset.to_string()),
        ];
        if let Some(rule) = optimizer {
            params.push(("optimizer".to_string(), rule.to_string()));
        }
        self.record_node(name, NodeKind::Enum, "populate", params, &parents)?;
        self.db.create_or_replace(
            name,
            enum_to_relation(&result).map_err(|e| GeaError::EmptyGroup(e.to_string()))?,
        );
        let hits = result.n_libraries();
        self.enums.insert(name.to_string(), result);
        Ok(hits)
    }

    // ----- purity and control groups (§4.3.1.2 steps 4–5) ------------------

    /// The purity check without the bookkeeping: which properties all of a
    /// fascicle's member libraries share. Unlike [`GeaSession::purity_check`]
    /// this takes `&self`, so concurrent front-ends (the query server) can
    /// answer it under a shared read lock.
    pub fn purity_properties(&self, fascicle: &str) -> Result<Vec<LibraryProperty>, GeaError> {
        self.fascicle(fascicle)?;
        Ok(self.enum_table(fascicle)?.pure_properties())
    }

    /// The Figure 4.8 purity check: which properties all member libraries
    /// share. The result is remembered on the fascicle record.
    pub fn purity_check(&mut self, fascicle: &str) -> Result<Vec<LibraryProperty>, GeaError> {
        let table = self.enum_table(fascicle)?.clone();
        let purity = table.pure_properties();
        let record = self.fascicles.get_mut(fascicle).ok_or(GeaError::NotFound {
            kind: "fascicle",
            name: fascicle.to_string(),
        })?;
        record.purity = purity.clone();
        Ok(purity)
    }

    /// The `formSUM` macro operation: for a fascicle pure on `property`,
    /// create ENUM₂ (same property, outside the fascicle), ENUM₃ (the
    /// contrasting property), and their SUMY tables over the fascicle's
    /// compact tags. Errors with [`GeaError::NotPure`] otherwise.
    pub fn form_control_groups(
        &mut self,
        fascicle: &str,
        property: LibraryProperty,
    ) -> Result<ControlGroups, GeaError> {
        self.form_control_groups_with(fascicle, property, aggregate_tags)
    }

    /// Compute the side-effect-free inputs of the `formSUM` macro operation:
    /// result-table names, the compact-tag ids within the data-set matrix,
    /// and the three library selections (in-fascicle, outside, contrast).
    /// Performs every validation `formSUM` does (purity, free names,
    /// non-empty groups) but installs nothing, so distributed executors can
    /// aggregate the selections shard-by-shard before committing results.
    pub fn control_group_inputs(
        &self,
        fascicle: &str,
        property: LibraryProperty,
    ) -> Result<ControlGroupInputs, GeaError> {
        let record = self.fascicle(fascicle)?.clone();
        let fas_enum = self.enum_table(fascicle)?.clone();
        if !fas_enum.is_pure(property) {
            return Err(GeaError::NotPure {
                fascicle: fascicle.to_string(),
                property,
            });
        }
        let dataset = self.enum_table(&record.dataset)?.clone();
        let members: std::collections::HashSet<&str> =
            record.members.iter().map(|s| s.as_str()).collect();

        let (prop_label, contrast_label, contrast_property) = match property {
            LibraryProperty::Cancer => ("Cancer", "Normal", LibraryProperty::Normal),
            LibraryProperty::Normal => ("Normal", "Cancer", LibraryProperty::Cancer),
            LibraryProperty::BulkTissue => ("Bulk", "CellLine", LibraryProperty::CellLine),
            LibraryProperty::CellLine => ("CellLine", "Bulk", LibraryProperty::BulkTissue),
        };
        let names = ControlGroups {
            in_fascicle: format!("{fascicle}{prop_label}FasTbl"),
            outside_fascicle: format!("{fascicle}{}NotInFasTbl", prop_label_short(prop_label)),
            contrast: format!("{fascicle}{contrast_label}Table"),
        };
        for n in [&names.in_fascicle, &names.outside_fascicle, &names.contrast] {
            self.check_name_free(n)?;
        }

        // Compact-tag ids within the *dataset* matrix.
        let compact_ids: Vec<_> = record
            .compact_tags
            .iter()
            .filter_map(|&t| dataset.matrix.id_of(t))
            .collect();

        // ENUM₂: same property, not in the fascicle.
        let outside = dataset.select_libraries(&names.outside_fascicle, |m| {
            m.has_property(property) && !members.contains(m.name.as_str())
        });
        // ENUM₃: the contrasting property.
        let contrast =
            dataset.select_libraries(&names.contrast, |m| m.has_property(contrast_property));
        for (label, table) in [("outside group", &outside), ("contrast group", &contrast)] {
            if table.n_libraries() == 0 {
                return Err(GeaError::EmptyGroup(label.to_string()));
            }
        }

        let in_members = dataset.select_libraries("tmp", |m| members.contains(m.name.as_str()));
        Ok(ControlGroupInputs {
            names,
            compact_ids,
            in_members,
            outside,
            contrast,
        })
    }

    /// [`GeaSession::form_control_groups`] with a pluggable aggregator.
    /// The serial path passes [`aggregate_tags`]; `gea-exec` passes its
    /// sharded equivalent (byte-identical output, parallel evaluation).
    /// The aggregator sees `(table name, matrix, compact tag ids)` exactly
    /// as `aggregate_tags` would.
    pub fn form_control_groups_with(
        &mut self,
        fascicle: &str,
        property: LibraryProperty,
        mut aggregate: impl FnMut(
            &str,
            &gea_sage::ExpressionMatrix,
            &[gea_sage::tag::TagId],
        ) -> SumyTable,
    ) -> Result<ControlGroups, GeaError> {
        let ControlGroupInputs {
            names,
            compact_ids,
            in_members,
            outside,
            contrast,
        } = self.control_group_inputs(fascicle, property)?;

        // SUMY tables over the compact tags only.
        let sumy_in = aggregate(&names.in_fascicle, &in_members.matrix, &compact_ids);
        let sumy_out = aggregate(&names.outside_fascicle, &outside.matrix, &compact_ids);
        let sumy_contrast = aggregate(&names.contrast, &contrast.matrix, &compact_ids);

        let parent = self.node(fascicle).expect("fascicle recorded");
        for (sumy, enum_table) in [
            (&sumy_in, None),
            (&sumy_out, Some(&outside)),
            (&sumy_contrast, Some(&contrast)),
        ] {
            self.record_node(
                &sumy.name.clone(),
                NodeKind::Sumy,
                "aggregate",
                vec![("property".to_string(), property.to_string())],
                &[parent],
            )?;
            self.db.create_or_replace(
                &sumy.name,
                sumy_to_relation(sumy).map_err(|e| GeaError::EmptyGroup(e.to_string()))?,
            );
            if let Some(t) = enum_table {
                self.enums.insert(t.name.clone(), (*t).clone());
            }
        }
        self.sumys.insert(sumy_in.name.clone(), sumy_in);
        self.sumys.insert(sumy_out.name.clone(), sumy_out);
        self.sumys.insert(sumy_contrast.name.clone(), sumy_contrast);
        Ok(names)
    }

    // ----- gaps (§4.3.1.2 steps 6–7, Figures 4.9/4.12) ----------------------

    /// `GAP = diff(SUMY₁, SUMY₂)`, materialized and recorded under both
    /// parents.
    pub fn create_gap(
        &mut self,
        name: &str,
        first_sumy: &str,
        second_sumy: &str,
    ) -> Result<(), GeaError> {
        self.check_name_free(name)?;
        if self.gaps.contains_key(name) {
            return Err(GeaError::NameTaken(name.to_string()));
        }
        let s1 = self.sumy(first_sumy)?;
        let s2 = self.sumy(second_sumy)?;
        let gap = diff(name, s1, s2);
        let parents: Vec<NodeId> = [first_sumy, second_sumy]
            .iter()
            .filter_map(|n| self.node(n))
            .collect();
        self.record_node(
            name,
            NodeKind::Gap,
            "diff",
            vec![
                ("sumy1".to_string(), first_sumy.to_string()),
                ("sumy2".to_string(), second_sumy.to_string()),
            ],
            &parents,
        )?;
        self.db.create_or_replace(
            name,
            gap_to_relation(&gap).map_err(|e| GeaError::EmptyGroup(e.to_string()))?,
        );
        self.gaps.insert(name.to_string(), gap);
        Ok(())
    }

    /// The Figure 4.19 "Calculate Top Gap" operation: derive `{gap}_{x}`.
    pub fn calculate_top_gap(
        &mut self,
        gap: &str,
        x: usize,
        order: TopGapOrder,
    ) -> Result<String, GeaError> {
        let source = self.gap(gap)?;
        let top = top_gaps(source, x, order);
        let top_name = top.name.clone();
        if self.gaps.contains_key(&top_name) {
            return Err(GeaError::NameTaken(top_name));
        }
        let parent = self.node(gap).into_iter().collect::<Vec<_>>();
        self.record_node(
            &top_name,
            NodeKind::TopGap,
            "top_gap",
            vec![("x".to_string(), x.to_string())],
            &parent,
        )?;
        self.db.create_or_replace(
            &top_name,
            gap_to_relation(&top).map_err(|e| GeaError::EmptyGroup(e.to_string()))?,
        );
        self.gaps.insert(top_name.clone(), top);
        Ok(top_name)
    }

    /// The Figure 4.13 GAP comparison: combine two GAP tables with `op`
    /// and answer `query`.
    pub fn compare_gaps(
        &mut self,
        name: &str,
        first: &str,
        second: &str,
        op: CompareOp,
        query: CompareQuery,
    ) -> Result<(), GeaError> {
        self.check_name_free(name)?;
        let g1 = self.gap(first)?;
        let g2 = self.gap(second)?;
        let result = compare_gaps(name, g1, g2, op, query).ok_or(GeaError::QueryNotApplicable)?;
        let parents: Vec<NodeId> = [first, second]
            .iter()
            .filter_map(|n| self.node(n))
            .collect();
        self.record_node(
            name,
            NodeKind::Compare,
            "compare",
            vec![
                ("op".to_string(), format!("{op:?}")),
                ("query".to_string(), format!("{query:?}")),
            ],
            &parents,
        )?;
        self.db.create_or_replace(
            name,
            gap_to_relation(&result).map_err(|e| GeaError::EmptyGroup(e.to_string()))?,
        );
        self.gaps.insert(name.to_string(), result);
        Ok(())
    }

    /// The optimizer's fast path for a self-operand GAP comparison:
    /// observationally equivalent to
    /// [`compare_gaps`](GeaSession::compare_gaps)`(name, gap, gap, op,
    /// query)` — same result table, same error precedence (name conflict,
    /// then operand lookup, then query applicability), same lineage shape
    /// including the duplicated parent edge — but computed without building
    /// a second operand view or probing `row_for`. The *original* op is
    /// recorded in lineage, plus a wire-invisible `optimizer` param naming
    /// the rule that installed the step.
    pub fn compare_gaps_self_rewritten(
        &mut self,
        name: &str,
        gap: &str,
        op: CompareOp,
        query: CompareQuery,
        rule: &str,
    ) -> Result<(), GeaError> {
        self.check_name_free(name)?;
        // The serial path resolves both operands; for equal names the
        // second lookup can only repeat the first's outcome, so one
        // resolution reproduces the same error.
        let g = self.gap(gap)?;
        let result = compare_gaps_self(name, g, op, query).ok_or(GeaError::QueryNotApplicable)?;
        // Same duplicated parent list the serial path builds from
        // `[first, second]` when both name the same table.
        let parents: Vec<NodeId> = [gap, gap].iter().filter_map(|n| self.node(n)).collect();
        self.record_node(
            name,
            NodeKind::Compare,
            "compare",
            vec![
                ("op".to_string(), format!("{op:?}")),
                ("query".to_string(), format!("{query:?}")),
                ("optimizer".to_string(), rule.to_string()),
            ],
            &parents,
        )?;
        self.db.create_or_replace(
            name,
            gap_to_relation(&result).map_err(|e| GeaError::EmptyGroup(e.to_string()))?,
        );
        self.gaps.insert(name.to_string(), result);
        Ok(())
    }

    /// The optimizer's fused `gap` + `topgap` step: derive the diff *and*
    /// its top-`x` in one pass, reading the just-computed table instead of
    /// re-validating and re-looking it up.
    ///
    /// Two-phase outcome mirroring the serial command pair:
    ///
    /// * outer `Err` — the `gap` phase failed; nothing was installed (the
    ///   paired `topgap` would then have run against whatever `name`
    ///   previously meant, which is the *caller's* fallback to arrange);
    /// * `Ok(Err(_))` — the gap was created and committed, but the top
    ///   name was already taken (the only failure `calculate_top_gap` can
    ///   hit once its source exists); the gap stays, as it would serially;
    /// * `Ok(Ok(top_name))` — both tables installed.
    ///
    /// Both lineage nodes carry the wire-invisible `optimizer` param.
    pub fn create_gap_with_top(
        &mut self,
        name: &str,
        first_sumy: &str,
        second_sumy: &str,
        x: usize,
        order: TopGapOrder,
        rule: &str,
    ) -> Result<Result<String, GeaError>, GeaError> {
        // Phase 1 — create_gap, step for step.
        self.check_name_free(name)?;
        if self.gaps.contains_key(name) {
            return Err(GeaError::NameTaken(name.to_string()));
        }
        let s1 = self.sumy(first_sumy)?;
        let s2 = self.sumy(second_sumy)?;
        let gap = diff(name, s1, s2);
        // The fusion: the top-x derives from the diff still in hand —
        // `calculate_top_gap`'s source lookup and its (here unreachable)
        // not-found error are skipped entirely.
        let top = top_gaps(&gap, x, order);
        let parents: Vec<NodeId> = [first_sumy, second_sumy]
            .iter()
            .filter_map(|n| self.node(n))
            .collect();
        self.record_node(
            name,
            NodeKind::Gap,
            "diff",
            vec![
                ("sumy1".to_string(), first_sumy.to_string()),
                ("sumy2".to_string(), second_sumy.to_string()),
                ("optimizer".to_string(), rule.to_string()),
            ],
            &parents,
        )?;
        self.db.create_or_replace(
            name,
            gap_to_relation(&gap).map_err(|e| GeaError::EmptyGroup(e.to_string()))?,
        );
        self.gaps.insert(name.to_string(), gap);

        // Phase 2 — calculate_top_gap's commit sequence. A failure here
        // leaves phase 1 installed, exactly as the serial pair would.
        let top_name = top.name.clone();
        if self.gaps.contains_key(&top_name) {
            return Ok(Err(GeaError::NameTaken(top_name)));
        }
        let parent = self.node(name).into_iter().collect::<Vec<_>>();
        if let Err(e) = self.record_node(
            &top_name,
            NodeKind::TopGap,
            "top_gap",
            vec![
                ("x".to_string(), x.to_string()),
                ("optimizer".to_string(), rule.to_string()),
            ],
            &parent,
        ) {
            return Ok(Err(e));
        }
        match gap_to_relation(&top).map_err(|e| GeaError::EmptyGroup(e.to_string())) {
            Ok(rel) => self.db.create_or_replace(&top_name, rel),
            Err(e) => return Ok(Err(e)),
        }
        self.gaps.insert(top_name.clone(), top);
        Ok(Ok(top_name))
    }

    // ----- inspection -------------------------------------------------------

    /// Figure 4.10's per-library distribution of one tag over a data set,
    /// with libraries labeled by membership in `fascicle`.
    pub fn tag_plot(
        &self,
        dataset: &str,
        tag: Tag,
        fascicle: &str,
    ) -> Result<Vec<TagPlotPoint>, GeaError> {
        let table = self.enum_table(dataset)?;
        let record = self.fascicle(fascicle)?;
        Ok(tag_distribution(table, tag, &record.members))
    }

    /// Attach a user comment to a recorded table (Figure 4.18).
    pub fn comment(&mut self, table: &str, comment: &str) -> Result<(), GeaError> {
        let id = self.node(table).ok_or(GeaError::NotFound {
            kind: "lineage",
            name: table.to_string(),
        })?;
        self.lineage.set_comment(id, comment)?;
        Ok(())
    }

    /// Regenerate a contents-only-deleted table from its recorded state —
    /// "if the user wants to re-generate the content of the table, the
    /// stored metadata can be used directly" (§4.4.2). The intensional
    /// definition survives the truncation, so re-materialization is a pure
    /// replay.
    pub fn regenerate(&mut self, table: &str) -> Result<(), GeaError> {
        let id = self.node(table).ok_or(GeaError::NotFound {
            kind: "lineage",
            name: table.to_string(),
        })?;
        let node = self.lineage.get(id)?;
        if node.materialized {
            return Ok(()); // nothing to do
        }
        // Re-materialize the same identity that was originally stored: the
        // node's kind disambiguates names shared by a fascicle's ENUM and
        // SUMY forms.
        let missing = || GeaError::NotFound {
            kind: "table",
            name: table.to_string(),
        };
        let relation = match node.kind {
            NodeKind::Gap | NodeKind::TopGap | NodeKind::Compare => {
                let g = self.gaps.get(table).ok_or_else(missing)?;
                gap_to_relation(g).map_err(|e| GeaError::EmptyGroup(e.to_string()))?
            }
            NodeKind::Sumy => {
                let t = self.sumys.get(table).ok_or_else(missing)?;
                sumy_to_relation(t).map_err(|e| GeaError::EmptyGroup(e.to_string()))?
            }
            NodeKind::Enum | NodeKind::Fascicle => {
                let e = self.enums.get(table).ok_or_else(missing)?;
                enum_to_relation(e).map_err(|e| GeaError::EmptyGroup(e.to_string()))?
            }
        };
        self.db.create_or_replace(table, relation);
        self.lineage.rematerialize(id)?;
        Ok(())
    }

    /// Delete a table: cascade removes it and everything derived from it;
    /// otherwise only the materialized contents are dropped (the metadata
    /// survives for regeneration).
    pub fn delete(&mut self, table: &str, cascade: bool) -> Result<Vec<String>, GeaError> {
        let id = self.node(table).ok_or(GeaError::NotFound {
            kind: "lineage",
            name: table.to_string(),
        })?;
        let removed = if cascade {
            let names = self.lineage.delete_cascade(id)?;
            for n in &names {
                self.nodes.remove(n);
                self.enums.remove(n);
                self.sumys.remove(n);
                self.gaps.remove(n);
                self.fascicles.remove(n);
                let _ = self.db.drop_table(n);
            }
            names
        } else {
            let names = self.lineage.delete_contents(id)?;
            for n in &names {
                let _ = self.db.truncate(n);
            }
            names
        };
        Ok(removed)
    }
}

fn prop_label_short(label: &str) -> &str {
    match label {
        "Cancer" => "Can",
        "Normal" => "Nor",
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_sage::generate::{generate, GeneratorConfig};

    fn session() -> (GeaSession, gea_sage::GroundTruth) {
        let (corpus, truth) = generate(&GeneratorConfig::demo(101));
        let session = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        (session, truth)
    }

    /// Choose `k` the way a thesis user does (Figure 4.6 shows them trying
    /// 25k/30k/35k of ~60k tags): high enough that only a genuinely
    /// agreeing group qualifies. We derive it from the planted fascicle's
    /// own compact count, minus a 10 % margin — compactness is antitone in
    /// set growth, so any superset scores strictly lower.
    fn brain_params(s: &GeaSession, truth: &gea_sage::GroundTruth) -> FascicleParams {
        use gea_cluster::dataset::AttrSource;
        let table = s.enum_table("Ebrain").unwrap();
        let tol = s.metadata("Ebrain", 0.10).unwrap();
        let view = crate::mine::MatrixView::new(table);
        let members = truth.fascicle_members_of(&TissueType::Brain);
        let ids: Vec<usize> = table
            .libraries()
            .iter()
            .enumerate()
            .filter(|(_, m)| members.contains(&m.name))
            .map(|(i, _)| i)
            .collect();
        let compact = (0..view.n_attrs())
            .filter(|&a| {
                let vals = view.attr_values(a);
                let lo = ids.iter().map(|&r| vals[r]).fold(f64::INFINITY, f64::min);
                let hi = ids
                    .iter()
                    .map(|&r| vals[r])
                    .fold(f64::NEG_INFINITY, f64::max);
                hi - lo <= tol.get(a)
            })
            .count();
        FascicleParams {
            min_compact_attrs: compact * 9 / 10,
            min_records: 3,
            batch_size: 6,
        }
    }

    #[test]
    fn case_1_pipeline_recovers_planted_structure() {
        let (mut s, truth) = session();
        s.create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        let fascicles = s
            .calculate_fascicles("Ebrain", "brain", 0.10, &brain_params(&s, &truth))
            .unwrap();
        assert!(!fascicles.is_empty(), "no fascicles found");
        // Find the fascicle matching the planted cancerous group.
        let planted = truth.fascicle_members_of(&TissueType::Brain);
        let target = fascicles
            .iter()
            .find(|f| {
                let rec = s.fascicle(f).unwrap();
                rec.members.iter().all(|m| planted.contains(m)) && rec.members.len() >= 2
            })
            .cloned()
            .unwrap_or_else(|| {
                panic!(
                    "no fascicle within the planted members {planted:?}; got {:?}",
                    fascicles
                        .iter()
                        .map(|f| s.fascicle(f).unwrap().members.clone())
                        .collect::<Vec<_>>()
                )
            });
        let purity = s.purity_check(&target).unwrap();
        assert!(purity.contains(&LibraryProperty::Cancer));
        let groups = s
            .form_control_groups(&target, LibraryProperty::Cancer)
            .unwrap();
        s.create_gap("canvsnor_gap", &groups.in_fascicle, &groups.contrast)
            .unwrap();
        let gap = s.gap("canvsnor_gap").unwrap();
        assert!(!gap.is_empty());
        // The RIBOSOMAL PROTEIN L12 marker must surface with a positive
        // gap (higher in cancer-in-fascicle than normal) if it is compact.
        let marker = truth.tag_of_gene("RIBOSOMAL PROTEIN L12").unwrap();
        if let Some(row) = gap.row_for(marker) {
            let g = row.gap().expect("marker bands must separate");
            assert!(g > 0.0, "marker gap {g} not positive");
        }
        // Lineage recorded the chain.
        let tree = s.lineage().render_tree();
        assert!(tree.contains("Ebrain"));
        assert!(tree.contains("canvsnor_gap"));
    }

    #[test]
    fn open_matrix_supports_microarray_style_input() {
        let (corpus, _) = generate(&GeneratorConfig::demo(103));
        let (matrix, _) = gea_sage::clean::clean(&corpus, &CleaningConfig::default());
        let mut s = GeaSession::open_matrix(matrix, "microarray test").unwrap();
        s.create_tissue_dataset("Eb", &TissueType::Brain).unwrap();
        assert!(s.enum_table("Eb").unwrap().n_libraries() > 0);
        assert!(s.lineage().find_by_name("SAGE").unwrap().operation == "load_matrix");
        // Raw-corpus searches degrade gracefully.
        assert!(s.corpus().is_empty());
    }

    #[test]
    fn session_xprofiler_pools() {
        let (mut s, _) = session();
        s.create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        let cancer: Vec<String> = s
            .enum_table("Ebrain")
            .unwrap()
            .libraries()
            .iter()
            .filter(|m| m.state == gea_sage::NeoplasticState::Cancerous)
            .map(|m| m.name.clone())
            .collect();
        let normal: Vec<String> = s
            .enum_table("Ebrain")
            .unwrap()
            .libraries()
            .iter()
            .filter(|m| m.state == gea_sage::NeoplasticState::Normal)
            .map(|m| m.name.clone())
            .collect();
        let ca: Vec<&str> = cancer.iter().map(|x| x.as_str()).collect();
        let no: Vec<&str> = normal.iter().map(|x| x.as_str()).collect();
        let result = s.xprofiler("Ebrain", &ca, &no).unwrap();
        assert!(!result.rows.is_empty());
        assert!(!result.significant(0.05).is_empty());
        // Unknown groups error.
        assert!(matches!(
            s.xprofiler("Ebrain", &["ghost"], &no),
            Err(GeaError::EmptyGroup(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut s, _) = session();
        s.create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        assert!(matches!(
            s.create_tissue_dataset("Ebrain", &TissueType::Breast),
            Err(GeaError::NameTaken(_))
        ));
    }

    #[test]
    fn empty_tissue_rejected() {
        let (mut s, _) = session();
        assert!(matches!(
            s.create_tissue_dataset("Eskin", &TissueType::Skin),
            Err(GeaError::EmptyGroup(_))
        ));
    }

    #[test]
    fn custom_dataset_and_deletion() {
        let (mut s, _) = session();
        let names: Vec<String> = s
            .base()
            .library_names()
            .iter()
            .take(3)
            .map(|s| s.to_string())
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        s.create_custom_dataset("newBrain", &refs).unwrap();
        assert_eq!(s.enum_table("newBrain").unwrap().n_libraries(), 3);
        // Cascade delete removes the table and its lineage node.
        let removed = s.delete("newBrain", true).unwrap();
        assert_eq!(removed, vec!["newBrain".to_string()]);
        assert!(s.enum_table("newBrain").is_err());
    }

    #[test]
    fn impure_fascicle_blocks_control_groups() {
        let (mut s, truth) = session();
        s.create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        let fascicles = s
            .calculate_fascicles("Ebrain", "brain", 0.10, &brain_params(&s, &truth))
            .unwrap();
        for f in &fascicles {
            let purity = s.purity_check(f).unwrap();
            if !purity.contains(&LibraryProperty::Normal) {
                assert!(matches!(
                    s.form_control_groups(f, LibraryProperty::Normal),
                    Err(GeaError::NotPure { .. }) | Err(GeaError::EmptyGroup(_))
                ));
                return;
            }
        }
    }

    #[test]
    fn regenerate_after_contents_only_delete() {
        let (mut s, truth) = session();
        s.create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        let fascicles = s
            .calculate_fascicles("Ebrain", "brain", 0.10, &brain_params(&s, &truth))
            .unwrap();
        let f = fascicles[0].clone();
        let before = s.database().get(&f).unwrap().clone();
        assert!(before.n_rows() > 0);
        s.delete(&f, false).unwrap();
        assert_eq!(s.database().get(&f).unwrap().n_rows(), 0);
        assert!(!s.lineage().find_by_name(&f).unwrap().materialized);
        s.regenerate(&f).unwrap();
        assert_eq!(s.database().get(&f).unwrap(), &before);
        assert!(s.lineage().find_by_name(&f).unwrap().materialized);
        // Regenerating a live table is a no-op.
        s.regenerate(&f).unwrap();
        // Unknown table errors.
        assert!(s.regenerate("ghost").is_err());
    }

    #[test]
    fn populate_from_sumy_materializes_the_extension() {
        let (mut s, truth) = session();
        s.create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        let fascicles = s
            .calculate_fascicles("Ebrain", "brain", 0.10, &brain_params(&s, &truth))
            .unwrap();
        let f = fascicles[0].clone();
        let hits = s.populate_from_sumy("P", &f, "Ebrain").unwrap();
        assert!(hits > 0);
        let p = s.enum_table("P").unwrap();
        assert_eq!(p.n_libraries(), hits);
        // The populated ENUM holds exactly the fascicle's members (the
        // mine auto-populated its own extension from the same SUMY) and
        // is restricted to the SUMY's tags.
        let members = &s.fascicle(&f).unwrap().members;
        for m in members {
            assert!(p.libraries().iter().any(|l| &l.name == m), "{m} missing");
        }
        assert_eq!(p.n_tags(), s.sumy(&f).unwrap().len());
        // Lineage records the operation with both parents; the relation
        // is materialized and regenerable after a contents-only delete.
        let node = s.lineage().find_by_name("P").unwrap();
        assert_eq!(node.operation, "populate");
        let before = s.database().get("P").unwrap().clone();
        s.delete("P", false).unwrap();
        s.regenerate("P").unwrap();
        assert_eq!(s.database().get("P").unwrap(), &before);
        // Name conflicts and missing inputs are rejected.
        assert!(matches!(
            s.populate_from_sumy("P", &f, "Ebrain"),
            Err(GeaError::NameTaken(_))
        ));
        assert!(s.populate_from_sumy("Q", "ghost", "Ebrain").is_err());
        assert!(s.populate_from_sumy("Q", &f, "ghost").is_err());
    }

    #[test]
    fn top_gap_derivation() {
        let (mut s, truth) = session();
        s.create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        let fascicles = s
            .calculate_fascicles("Ebrain", "brain", 0.10, &brain_params(&s, &truth))
            .unwrap();
        let target = fascicles
            .iter()
            .find(|f| {
                let t = s.enum_table(f).unwrap().clone();
                t.is_pure(LibraryProperty::Cancer)
            })
            .cloned();
        let Some(target) = target else { return };
        let groups = s
            .form_control_groups(&target, LibraryProperty::Cancer)
            .unwrap();
        s.create_gap("g", &groups.in_fascicle, &groups.contrast)
            .unwrap();
        let top_name = s
            .calculate_top_gap("g", 10, TopGapOrder::LargestMagnitude)
            .unwrap();
        assert_eq!(top_name, "g_10");
        assert!(s.gap("g_10").unwrap().len() <= 10);
        // Materialized into the database as well.
        assert!(s.database().exists("g_10"));
    }
}
