//! Set operations in the intensional world (thesis §3.2.3).
//!
//! These operators "apply to either a pair of GAP or a pair of SUMY tables.
//! The intent is to manipulate at the level of tags":
//!
//! * **minus** — tags in the first table that are missing from the second
//!   (Figure 3.6's GAP₃);
//! * **intersect** — the common tags *with their corresponding values from
//!   both tables*: the result GAP table carries one gap column per input
//!   (Figure 3.6's GAP₄ has columns Gap₁ and Gap₂);
//! * **union** — defined similarly to intersection; tags present in only
//!   one input carry NULL in the other's columns.

use crate::gap::{GapRow, GapTable};
use crate::sumy::SumyTable;

/// GAP minus: rows of `first` whose tag does not appear in `second`. Keeps
/// `first`'s gap columns.
pub fn gap_minus(name: &str, first: &GapTable, second: &GapTable) -> GapTable {
    let rows = first
        .rows()
        .iter()
        .filter(|r| second.row_for(r.tag).is_none())
        .cloned()
        .collect();
    GapTable::new(name, first.columns.clone(), rows)
}

fn combined_columns(first: &GapTable, second: &GapTable) -> Vec<String> {
    // Column names qualified by source table, as in Figure 4.13's display
    // of two gap values per tag.
    let mut columns = Vec::with_capacity(first.columns.len() + second.columns.len());
    for c in &first.columns {
        columns.push(format!("{}.{}", first.name, c));
    }
    for c in &second.columns {
        columns.push(format!("{}.{}", second.name, c));
    }
    columns
}

/// GAP intersect: common tags, with the gap columns of both inputs side by
/// side.
pub fn gap_intersect(name: &str, first: &GapTable, second: &GapTable) -> GapTable {
    let columns = combined_columns(first, second);
    let rows = first
        .rows()
        .iter()
        .filter_map(|r1| {
            second.row_for(r1.tag).map(|r2| {
                let mut gaps = r1.gaps.clone();
                gaps.extend(r2.gaps.iter().copied());
                GapRow {
                    tag: r1.tag,
                    tag_no: r1.tag_no,
                    gaps,
                }
            })
        })
        .collect();
    GapTable::new(name, columns, rows)
}

/// GAP union: every tag of either input; missing sides padded with NULL.
pub fn gap_union(name: &str, first: &GapTable, second: &GapTable) -> GapTable {
    let columns = combined_columns(first, second);
    let mut rows: Vec<GapRow> = Vec::new();
    for r1 in first.rows() {
        let mut gaps = r1.gaps.clone();
        match second.row_for(r1.tag) {
            Some(r2) => gaps.extend(r2.gaps.iter().copied()),
            None => gaps.extend(std::iter::repeat_n(None, second.columns.len())),
        }
        rows.push(GapRow {
            tag: r1.tag,
            tag_no: r1.tag_no,
            gaps,
        });
    }
    for r2 in second.rows() {
        if first.row_for(r2.tag).is_none() {
            let mut gaps: Vec<Option<f64>> =
                std::iter::repeat_n(None, first.columns.len()).collect();
            gaps.extend(r2.gaps.iter().copied());
            rows.push(GapRow {
                tag: r2.tag,
                tag_no: r2.tag_no,
                gaps,
            });
        }
    }
    GapTable::new(name, columns, rows)
}

/// SUMY minus: rows of `first` whose tag does not appear in `second`.
pub fn sumy_minus(name: &str, first: &SumyTable, second: &SumyTable) -> SumyTable {
    let rows = first
        .rows()
        .iter()
        .filter(|r| second.row_for(r.tag).is_none())
        .cloned()
        .collect();
    SumyTable::new(name, rows)
}

/// SUMY intersect: rows of `first` whose tag also appears in `second`
/// (aggregates taken from `first`; pair with another intersect the other
/// way around to see both sides).
pub fn sumy_intersect(name: &str, first: &SumyTable, second: &SumyTable) -> SumyTable {
    let rows = first
        .rows()
        .iter()
        .filter(|r| second.row_for(r.tag).is_some())
        .cloned()
        .collect();
    SumyTable::new(name, rows)
}

/// SUMY union: all of `first`'s rows plus `second`'s rows for tags absent
/// from `first`.
pub fn sumy_union(name: &str, first: &SumyTable, second: &SumyTable) -> SumyTable {
    let mut rows: Vec<_> = first.rows().to_vec();
    rows.extend(
        second
            .rows()
            .iter()
            .filter(|r| first.row_for(r.tag).is_none())
            .cloned(),
    );
    SumyTable::new(name, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::GapRow;

    fn gap_row(tag: &str, no: u32, gap: Option<f64>) -> GapRow {
        GapRow {
            tag: tag.parse().unwrap(),
            tag_no: no,
            gaps: vec![gap],
        }
    }

    /// The literal GAP₁ and GAP₂ of Figure 3.6 (tag names stand in for
    /// Tag1..Tag5).
    fn figure_3_6_tables() -> (GapTable, GapTable) {
        let gap1 = GapTable::new(
            "GAP1",
            vec!["Gap".to_string()],
            vec![
                gap_row("AAAAAAAAAA", 1, Some(-11.0)), // Tag1
                gap_row("CCCCCCCCCC", 2, Some(2.0)),   // Tag2
                gap_row("GGGGGGGGGG", 3, None),        // Tag3 NULL
                gap_row("TTTTTTTTTT", 4, Some(5.0)),   // Tag4
            ],
        );
        let gap2 = GapTable::new(
            "GAP2",
            vec!["Gap".to_string()],
            vec![
                gap_row("AAAAAAAAAA", 1, Some(-8.0)),
                gap_row("GGGGGGGGGG", 3, Some(9.0)),
                gap_row("TTTTTTTTTT", 4, Some(10.0)),
                gap_row("ACGTACGTAC", 5, Some(11.0)), // Tag5
            ],
        );
        (gap1, gap2)
    }

    #[test]
    fn figure_3_6_minus() {
        let (g1, g2) = figure_3_6_tables();
        let g3 = gap_minus("GAP3", &g1, &g2);
        // GAP₃ contains only Tag2 with gap 2.
        assert_eq!(g3.len(), 1);
        let row = &g3.rows()[0];
        assert_eq!(row.tag.to_string(), "CCCCCCCCCC");
        assert_eq!(row.gap(), Some(2.0));
    }

    #[test]
    fn figure_3_6_intersect() {
        let (g1, g2) = figure_3_6_tables();
        let g4 = gap_intersect("GAP4", &g1, &g2);
        // GAP₄: Tag1 (−11, −8), Tag3 (NULL, 9), Tag4 (5, 10) — two gap
        // columns.
        assert_eq!(g4.len(), 3);
        assert_eq!(g4.columns.len(), 2);
        let t1 = g4.row_for("AAAAAAAAAA".parse().unwrap()).unwrap();
        assert_eq!(t1.gaps, vec![Some(-11.0), Some(-8.0)]);
        let t3 = g4.row_for("GGGGGGGGGG".parse().unwrap()).unwrap();
        assert_eq!(t3.gaps, vec![None, Some(9.0)]);
        let t4 = g4.row_for("TTTTTTTTTT".parse().unwrap()).unwrap();
        assert_eq!(t4.gaps, vec![Some(5.0), Some(10.0)]);
    }

    #[test]
    fn gap_union_pads_with_null() {
        let (g1, g2) = figure_3_6_tables();
        let u = gap_union("U", &g1, &g2);
        assert_eq!(u.len(), 5);
        let t2 = u.row_for("CCCCCCCCCC".parse().unwrap()).unwrap();
        assert_eq!(t2.gaps, vec![Some(2.0), None]);
        let t5 = u.row_for("ACGTACGTAC".parse().unwrap()).unwrap();
        assert_eq!(t5.gaps, vec![None, Some(11.0)]);
    }

    #[test]
    fn set_op_algebra() {
        let (g1, g2) = figure_3_6_tables();
        // |minus| + |intersect| = |first|.
        let m = gap_minus("m", &g1, &g2);
        let i = gap_intersect("i", &g1, &g2);
        assert_eq!(m.len() + i.len(), g1.len());
        // |union| = |first| + |second| − |intersect|.
        let u = gap_union("u", &g1, &g2);
        assert_eq!(u.len(), g1.len() + g2.len() - i.len());
        // minus with self is empty; intersect with self is self-sized.
        assert!(gap_minus("e", &g1, &g1).is_empty());
        assert_eq!(gap_intersect("s", &g1, &g1).len(), g1.len());
    }

    #[test]
    fn sumy_set_ops() {
        use crate::interval::Interval;
        use crate::sumy::SumyRow;
        use std::collections::BTreeMap;
        let row = |tag: &str, no: u32, avg: f64| SumyRow {
            tag: tag.parse().unwrap(),
            tag_no: no,
            range: Interval::new(0.0, avg * 2.0).unwrap(),
            average: avg,
            std_dev: 1.0,
            extras: BTreeMap::new(),
        };
        let s1 = SumyTable::new(
            "s1",
            vec![row("AAAAAAAAAA", 1, 5.0), row("CCCCCCCCCC", 2, 8.0)],
        );
        let s2 = SumyTable::new(
            "s2",
            vec![row("CCCCCCCCCC", 2, 100.0), row("GGGGGGGGGG", 3, 9.0)],
        );
        let m = sumy_minus("m", &s1, &s2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.rows()[0].tag.to_string(), "AAAAAAAAAA");
        let i = sumy_intersect("i", &s1, &s2);
        assert_eq!(i.len(), 1);
        // Values come from the first table.
        assert_eq!(i.rows()[0].average, 8.0);
        let u = sumy_union("u", &s1, &s2);
        assert_eq!(u.len(), 3);
        assert_eq!(
            u.row_for("CCCCCCCCCC".parse().unwrap()).unwrap().average,
            8.0
        );
    }
}
