//! Allen's full interval algebra: relation sets and composition.
//!
//! The thesis adopts Allen's 13 basic relations for range search
//! (§4.4.1). Allen's papers [ALLEN83, ALLEN84], which the thesis cites, go
//! further: the algebra "can express any possibly indefinite relationship
//! between two intervals" — a *set* of possible basic relations — and
//! reasons about them through the composition (transitivity) table: knowing
//! `A r B` and `B s C` constrains `A ? C` to `compose(r, s)`.
//!
//! This module implements that extension: [`RelationSet`] (a bitset over
//! the 13 relations) with the full 13×13 composition table, derived
//! programmatically from the endpoint semantics rather than transcribed —
//! and verified exhaustively against sampled concrete intervals. It enables
//! indefinite range constraints over SUMY tables ("tags whose range is
//! before or meets the query") and sound propagation between chained range
//! conditions.

use std::fmt;
use std::sync::OnceLock;

use crate::interval::{AllenRelation, Interval};

/// A set of basic Allen relations — an indefinite relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RelationSet(u16);

fn bit(rel: AllenRelation) -> u16 {
    1 << AllenRelation::ALL
        .iter()
        .position(|r| *r == rel)
        .expect("relation in ALL")
}

impl RelationSet {
    /// The empty set (an inconsistent constraint).
    pub const EMPTY: RelationSet = RelationSet(0);

    /// The full set (no constraint) — all 13 relations.
    pub const FULL: RelationSet = RelationSet((1 << 13) - 1);

    /// A singleton set.
    pub fn singleton(rel: AllenRelation) -> RelationSet {
        RelationSet(bit(rel))
    }

    /// Build from an iterator of basic relations.
    pub fn from_relations<I: IntoIterator<Item = AllenRelation>>(rels: I) -> RelationSet {
        RelationSet(rels.into_iter().map(bit).fold(0, |acc, b| acc | b))
    }

    /// Whether the set contains `rel`.
    pub fn contains(self, rel: AllenRelation) -> bool {
        self.0 & bit(rel) != 0
    }

    /// Number of basic relations in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty (inconsistent).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union (disjunction of possibilities).
    pub fn union(self, other: RelationSet) -> RelationSet {
        RelationSet(self.0 | other.0)
    }

    /// Set intersection (conjunction of constraints).
    pub fn intersect(self, other: RelationSet) -> RelationSet {
        RelationSet(self.0 & other.0)
    }

    /// The inverse set: `{r⁻¹ : r ∈ self}` — the constraint on `(B, A)`
    /// implied by this constraint on `(A, B)`.
    pub fn inverse(self) -> RelationSet {
        RelationSet::from_relations(self.iter().map(|r| r.inverse()))
    }

    /// Iterate the member relations in [`AllenRelation::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = AllenRelation> {
        AllenRelation::ALL
            .into_iter()
            .filter(move |&r| self.contains(r))
    }

    /// Whether a concrete interval pair satisfies the constraint.
    pub fn admits(self, a: Interval, b: Interval) -> bool {
        self.contains(a.relation(b))
    }

    /// Compose with another constraint: the tightest constraint on
    /// `(A, C)` given `self` on `(A, B)` and `other` on `(B, C)`.
    pub fn compose(self, other: RelationSet) -> RelationSet {
        let table = composition_table();
        let mut out = RelationSet::EMPTY;
        for r in self.iter() {
            for s in other.iter() {
                out = out.union(table[index(r)][index(s)]);
            }
        }
        out
    }
}

impl fmt::Display for RelationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            f.write_str(r.symbol())?;
        }
        write!(f, "}}")
    }
}

fn index(rel: AllenRelation) -> usize {
    AllenRelation::ALL
        .iter()
        .position(|r| *r == rel)
        .expect("relation in ALL")
}

/// Compose two *basic* relations.
pub fn compose_basic(r: AllenRelation, s: AllenRelation) -> RelationSet {
    composition_table()[index(r)][index(s)]
}

/// The 13×13 composition table, derived once from endpoint semantics.
///
/// Rather than transcribing Allen's published table (and risking
/// transcription errors), we *derive* it: each basic relation constrains
/// the four endpoint orderings; composing two relations is a tiny
/// constraint-propagation problem over five endpoint values per relation
/// pair. We solve it by enumeration over a canonical set of endpoint
/// configurations that realizes every composition outcome.
fn composition_table() -> &'static [[RelationSet; 13]; 13] {
    static TABLE: OnceLock<[[RelationSet; 13]; 13]> = OnceLock::new();
    TABLE.get_or_init(derive_table)
}

fn derive_table() -> [[RelationSet; 13]; 13] {
    // Enumerate triples (A, B, C) of proper intervals over a small rational
    // grid. For grid size g, interval endpoints take values in 0..g; every
    // composition entry is realized once g is large enough. Allen's table
    // entries contain at most 13 relations built from orderings of at most
    // 6 distinct endpoint values, so a grid of 8 points is sufficient (it
    // realizes every ordering pattern of 6 values with room to spare); we
    // assert completeness structurally in tests instead of trusting the
    // constant.
    const G: i32 = 8;
    let mut intervals = Vec::new();
    for lo in 0..G {
        for hi in (lo + 1)..=G {
            intervals.push(Interval::new(lo as f64, hi as f64).expect("proper"));
        }
    }
    let mut table = [[RelationSet::EMPTY; 13]; 13];
    for &a in &intervals {
        for &b in &intervals {
            let r = index(a.relation(b));
            for &c in &intervals {
                let s = index(b.relation(c));
                let t = a.relation(c);
                table[r][s] = table[r][s].union(RelationSet::singleton(t));
            }
        }
    }
    table
}

/// A chain of interval variables with pairwise constraints, supporting
/// path-consistency propagation — Allen's constraint network restricted to
/// a path, which is what chained SUMY range conditions form.
#[derive(Debug, Clone)]
pub struct ConstraintChain {
    /// `constraints[i]` relates variable `i` to variable `i + 1`.
    constraints: Vec<RelationSet>,
}

impl ConstraintChain {
    /// Build from consecutive constraints.
    pub fn new(constraints: Vec<RelationSet>) -> ConstraintChain {
        ConstraintChain { constraints }
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the chain has no links.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The derived constraint between the first and last variable:
    /// the composition of all links.
    pub fn end_to_end(&self) -> RelationSet {
        self.constraints
            .iter()
            .fold(None, |acc: Option<RelationSet>, &c| {
                Some(match acc {
                    None => c,
                    Some(prev) => prev.compose(c),
                })
            })
            .unwrap_or(RelationSet::FULL)
    }

    /// Whether concrete intervals satisfy every link.
    pub fn admits(&self, intervals: &[Interval]) -> bool {
        if intervals.len() != self.constraints.len() + 1 {
            return false;
        }
        self.constraints
            .iter()
            .zip(intervals.windows(2))
            .all(|(c, w)| c.admits(w[0], w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AllenRelation::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn set_basics() {
        let s = RelationSet::from_relations([Before, Meets]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Before) && s.contains(Meets));
        assert!(!s.contains(After));
        assert_eq!(s.to_string(), "{b, m}");
        assert_eq!(RelationSet::FULL.len(), 13);
        assert!(RelationSet::EMPTY.is_empty());
        assert_eq!(s.union(RelationSet::singleton(After)).len(), 3);
        assert_eq!(s.intersect(RelationSet::singleton(Meets)).len(), 1);
    }

    #[test]
    fn inverse_set() {
        let s = RelationSet::from_relations([Before, During, Equals]);
        let inv = s.inverse();
        assert!(inv.contains(After) && inv.contains(Includes) && inv.contains(Equals));
        assert_eq!(inv.len(), 3);
        assert_eq!(inv.inverse(), s);
    }

    #[test]
    fn known_compositions() {
        // before ∘ before = {before}.
        assert_eq!(
            compose_basic(Before, Before),
            RelationSet::singleton(Before)
        );
        // meets ∘ meets = {before}: A meets B, B meets C ⇒ A entirely
        // before C.
        assert_eq!(compose_basic(Meets, Meets), RelationSet::singleton(Before));
        // during ∘ during = {during}.
        assert_eq!(
            compose_basic(During, During),
            RelationSet::singleton(During)
        );
        // equals is the identity.
        for r in AllenRelation::ALL {
            assert_eq!(compose_basic(Equals, r), RelationSet::singleton(r));
            assert_eq!(compose_basic(r, Equals), RelationSet::singleton(r));
        }
        // The famous maximal entry: before ∘ after is completely
        // unconstrained.
        assert_eq!(compose_basic(Before, After), RelationSet::FULL);
        // overlaps ∘ overlaps = {before, meets, overlaps} (Allen 1983).
        assert_eq!(
            compose_basic(Overlaps, Overlaps),
            RelationSet::from_relations([Before, Meets, Overlaps])
        );
        // starts ∘ during = {during}.
        assert_eq!(
            compose_basic(Starts, During),
            RelationSet::singleton(During)
        );
    }

    #[test]
    fn composition_is_sound_on_concrete_intervals() {
        // Soundness: for all concrete triples, A.relation(C) is a member of
        // compose(A.relation(B), B.relation(C)). Sweep a grid finer than
        // (and offset from) the derivation grid.
        let mut intervals = Vec::new();
        for lo in 0..6 {
            for hi in (lo + 1)..=6 {
                intervals.push(iv(lo as f64 + 0.5, hi as f64 + 0.5));
            }
        }
        for &a in &intervals {
            for &b in &intervals {
                for &c in &intervals {
                    let composed = compose_basic(a.relation(b), b.relation(c));
                    assert!(composed.contains(a.relation(c)), "unsound: {a} {b} {c}");
                }
            }
        }
    }

    #[test]
    fn composition_respects_inverse_law() {
        // (r ∘ s)⁻¹ = s⁻¹ ∘ r⁻¹.
        for r in AllenRelation::ALL {
            for s in AllenRelation::ALL {
                assert_eq!(
                    compose_basic(r, s).inverse(),
                    compose_basic(s.inverse(), r.inverse()),
                    "inverse law fails at {r:?} ∘ {s:?}"
                );
            }
        }
    }

    #[test]
    fn composition_entries_are_never_empty() {
        // Every pair of basic relations is jointly realizable, so every
        // table entry is non-empty.
        for r in AllenRelation::ALL {
            for s in AllenRelation::ALL {
                assert!(!compose_basic(r, s).is_empty(), "{r:?} ∘ {s:?} empty");
            }
        }
    }

    #[test]
    fn table_entry_cardinalities_match_allen() {
        // Exactly three compositions are completely unconstrained:
        // b ∘ bi (A before B, C before B), bi ∘ b, and d ∘ di (A and C
        // both inside B say nothing about A vs C).
        let full: Vec<(AllenRelation, AllenRelation)> = AllenRelation::ALL
            .iter()
            .flat_map(|&r| AllenRelation::ALL.iter().map(move |&s| (r, s)))
            .filter(|&(r, s)| compose_basic(r, s) == RelationSet::FULL)
            .collect();
        assert_eq!(
            full,
            vec![(Before, After), (After, Before), (During, Includes)]
        );
    }

    #[test]
    fn set_composition_distributes_over_union() {
        let ab = RelationSet::from_relations([Before, Meets]);
        let bc = RelationSet::from_relations([Overlaps]);
        let direct = ab.compose(bc);
        let split = compose_basic(Before, Overlaps).union(compose_basic(Meets, Overlaps));
        assert_eq!(direct, split);
    }

    #[test]
    fn chain_end_to_end() {
        // A before B, B before C ⇒ A before C.
        let chain = ConstraintChain::new(vec![
            RelationSet::singleton(Before),
            RelationSet::singleton(Before),
        ]);
        assert_eq!(chain.end_to_end(), RelationSet::singleton(Before));
        assert!(chain.admits(&[iv(0.0, 1.0), iv(2.0, 3.0), iv(4.0, 5.0)]));
        assert!(!chain.admits(&[iv(0.0, 1.0), iv(2.0, 3.0), iv(2.5, 5.0)]));
        // Wrong arity is rejected.
        assert!(!chain.admits(&[iv(0.0, 1.0), iv(2.0, 3.0)]));
    }

    #[test]
    fn chain_admission_implies_end_to_end_membership() {
        let chain = ConstraintChain::new(vec![
            RelationSet::from_relations([Overlaps, Meets]),
            RelationSet::from_relations([During]),
        ]);
        let e2e = chain.end_to_end();
        let candidates = [
            [iv(0.0, 2.0), iv(1.0, 4.0), iv(0.5, 6.0)],
            [iv(0.0, 1.0), iv(1.0, 3.0), iv(0.0, 4.0)],
        ];
        for ivs in candidates {
            if chain.admits(&ivs) {
                assert!(e2e.contains(ivs[0].relation(ivs[2])));
            }
        }
    }
}
