//! The populate() operator and its index optimization (thesis §3.3.2).
//!
//! `populate(SUMY, ENUM)` finds every library in the ENUM table whose
//! expression levels satisfy *all* the tag ranges of the SUMY table —
//! "nothing more than a conjunction of a number, say p, of range
//! conditions", except that p is 25,000–30,000, so the query is extremely
//! high-dimensional.
//!
//! Three evaluation strategies:
//!
//! * [`populate_scan`] — library-at-a-time: test every library against the
//!   conditions (with early exit on the first failing condition).
//! * [`populate_columnar`] — condition-at-a-time in the rotated physical
//!   layout (§4.6.1): read each condition's tag row in storage order and
//!   prune the surviving-candidate set. This is the sequential baseline of
//!   Table 3.2 on the thesis's physical design.
//! * [`populate_indexed`] — build sorted range indexes on a few
//!   highest-entropy tags ([`PopulateIndex`]); for every indexed tag that
//!   *hits* (appears in the SUMY table), probe the index and intersect the
//!   candidate lists; verify only the surviving candidates against the
//!   remaining conditions. Table 3.1 sizes the index budget; Table 3.2
//!   measures the saving per hit count.
//!
//! All three return the same libraries (property-tested); each reports a
//! [`PopulateStats`] with the work performed, so savings can be measured
//! deterministically in cell touches as well as in wall time.

use gea_relstore::entropy::top_entropy_attributes;
use gea_relstore::index::{intersect_row_lists, SortedIndex};
use gea_sage::library::LibraryId;
use gea_sage::tag::{Tag, TagId};

use crate::enum_table::EnumTable;
use crate::sumy::SumyTable;

/// Work counters for one populate() evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PopulateStats {
    /// Indexed tags that appeared in the SUMY table.
    pub indexes_hit: usize,
    /// Libraries surviving index intersection (all libraries for a scan).
    pub candidates: usize,
    /// Range-condition evaluations performed during verification. Each
    /// evaluation touches exactly one stored cell, so this is also the
    /// cell-I/O proxy the Table 3.2 reproduction reports.
    pub comparisons: u64,
}

/// One library-qualification check: every SUMY condition must hold. Tags
/// absent from the ENUM table's universe carry an implicit expression level
/// of 0 (the library never exhibited them), so the condition becomes
/// `min ≤ 0 ≤ max`. Conditions whose position is in `skip` (already proven
/// by an index probe) are not re-evaluated. Public so sharded drivers
/// (`gea-exec`) charge exactly the comparisons the serial path would.
pub fn library_satisfies(
    table: &EnumTable,
    resolved: &[(Option<TagId>, f64, f64)],
    lib: LibraryId,
    skip: Option<&std::collections::HashSet<usize>>,
    comparisons: &mut u64,
) -> bool {
    for (i, &(tid, lo, hi)) in resolved.iter().enumerate() {
        if let Some(skip_set) = skip {
            if skip_set.contains(&i) {
                continue;
            }
        }
        *comparisons += 1;
        let v = match tid {
            Some(tid) => table.matrix.value(tid, lib),
            None => 0.0,
        };
        if v < lo || v > hi {
            return false;
        }
    }
    true
}

/// Resolve the SUMY conditions against the ENUM table's universe once:
/// `(tag id if present, range lo, range hi)` per SUMY row, in row order.
pub fn resolve_conditions(sumy: &SumyTable, table: &EnumTable) -> Vec<(Option<TagId>, f64, f64)> {
    sumy.rows()
        .iter()
        .map(|r| (table.matrix.id_of(r.tag), r.range.lo(), r.range.hi()))
        .collect()
}

/// Sequential populate(): test every library.
pub fn populate_scan(sumy: &SumyTable, table: &EnumTable) -> (Vec<LibraryId>, PopulateStats) {
    let resolved = resolve_conditions(sumy, table);
    let mut stats = PopulateStats {
        candidates: table.n_libraries(),
        ..PopulateStats::default()
    };
    let hits = table
        .matrix
        .library_ids()
        .filter(|&lib| library_satisfies(table, &resolved, lib, None, &mut stats.comparisons))
        .collect();
    (hits, stats)
}

/// Sequential populate() in the rotated physical layout (§4.6.1): process
/// tag rows in storage order, pruning a candidate-library set as each range
/// condition is applied. This is how a sequential scan behaves on the
/// thesis's physical design: every condition's physical row must be
/// *fetched in full* — one cell per library, whether or not that library
/// is still a candidate — because storage reads whole rows; only when the
/// candidate set empties can the remaining condition rows be skipped. The
/// reported `comparisons` therefore counts `n_libraries` cells per
/// processed condition row, the I/O the thesis's DB2 baseline pays (the
/// sequential baseline of Table 3.2).
pub fn populate_columnar(sumy: &SumyTable, table: &EnumTable) -> (Vec<LibraryId>, PopulateStats) {
    let resolved = resolve_conditions(sumy, table);
    let n = table.n_libraries();
    let (hits, rows_processed) = columnar_prune_range(&resolved, table, 0, n);
    let stats = PopulateStats {
        candidates: n,
        comparisons: (rows_processed * n) as u64,
        ..PopulateStats::default()
    };
    (hits, stats)
}

/// The pruning loop of [`populate_columnar`] over the library range
/// `[lo_lib, hi_lib)`: apply each condition row in order until the range's
/// candidate set empties, and return the surviving libraries (ascending)
/// plus the number of condition rows processed. The serial operator is
/// this helper over `[0, n)`; sharded drivers run it per contiguous
/// library range. Because a library's fate depends only on its own cells,
/// shard-local pruning survives exactly the libraries the global loop
/// would, and the global loop stops only when *every* range is empty — so
/// the global rows-processed count is the maximum over ranges.
pub fn columnar_prune_range(
    resolved: &[(Option<TagId>, f64, f64)],
    table: &EnumTable,
    lo_lib: usize,
    hi_lib: usize,
) -> (Vec<LibraryId>, usize) {
    let mut candidates = Vec::new();
    let rows_processed = columnar_prune_with(resolved, table, lo_lib, hi_lib, &mut candidates);
    let hits = candidates
        .into_iter()
        .map(|l| LibraryId((lo_lib + l as usize) as u32))
        .collect();
    (hits, rows_processed)
}

/// The allocation-reusing core of [`columnar_prune_range`]: fills
/// `candidates` with the surviving library offsets *relative to `lo_lib`*
/// (ascending) and returns the number of condition rows processed.
///
/// The candidate set is a selection vector, not a byte mask: each
/// condition row compacts the survivors in place with a branchless
/// write-cursor, so a row's cost is proportional to the *current*
/// candidate count instead of the full range width — once the first few
/// conditions have pruned the range, the remaining tens of thousands of
/// condition rows touch a handful of cells each instead of branching over
/// every library's dead flag. Survivor order (ascending), the early-empty
/// break, the implicit-zero handling for absent tags, and the
/// rows-processed count are exactly the original mask loop's; `candidates`
/// is cleared before use so pooled scratch buffers can be handed in
/// dirty (`gea-exec`'s per-shard scratch pool does).
pub fn columnar_prune_with(
    resolved: &[(Option<TagId>, f64, f64)],
    table: &EnumTable,
    lo_lib: usize,
    hi_lib: usize,
    candidates: &mut Vec<u32>,
) -> usize {
    let n = hi_lib - lo_lib;
    candidates.clear();
    candidates.extend(0..n as u32);
    let mut rows_processed = 0usize;
    for &(tid, lo, hi) in resolved {
        if candidates.is_empty() {
            break;
        }
        // Fetching the physical row touches every library's cell.
        rows_processed += 1;
        match tid {
            Some(tid) => {
                let row = &table.matrix.tag_row(tid)[lo_lib..hi_lib];
                let mut write = 0usize;
                for read in 0..candidates.len() {
                    let l = candidates[read];
                    let v = row[l as usize];
                    candidates[write] = l;
                    // Same predicate as the library-at-a-time check
                    // (`library_satisfies`), kept in rejection form so any
                    // exotic value orders identically.
                    write += usize::from(!(v < lo || v > hi));
                }
                candidates.truncate(write);
            }
            None => {
                // Implicit zero for every library.
                if lo > 0.0 || hi < 0.0 {
                    candidates.clear();
                }
            }
        }
    }
    rows_processed
}

/// A set of sorted range indexes over chosen tags of one ENUM table.
#[derive(Debug, Clone)]
pub struct PopulateIndex {
    /// Indexed tags and their per-library sorted indexes.
    indexed: Vec<(Tag, SortedIndex)>,
}

impl PopulateIndex {
    /// Build indexes on the `m` highest-entropy tags of the table
    /// (§3.3.2's heuristic), estimating entropy with `bins`-bucket
    /// histograms.
    pub fn build_top_entropy(table: &EnumTable, m: usize, bins: usize) -> PopulateIndex {
        let rows: Vec<&[f64]> = table
            .matrix
            .tag_ids()
            .map(|t| table.matrix.tag_row(t))
            .collect();
        let chosen = top_entropy_attributes(rows, bins, m);
        PopulateIndex::build_on(
            table,
            &chosen
                .into_iter()
                .map(|i| table.matrix.tag_of(TagId(i as u32)))
                .collect::<Vec<_>>(),
        )
    }

    /// Build indexes on an explicit tag list (used by the Table 3.2 bench
    /// to force a chosen number of hits, and by the random-choice
    /// ablation).
    pub fn build_on(table: &EnumTable, tags: &[Tag]) -> PopulateIndex {
        let indexed = tags
            .iter()
            .filter_map(|&tag| {
                table
                    .matrix
                    .id_of(tag)
                    .map(|tid| (tag, SortedIndex::build(table.matrix.tag_row(tid))))
            })
            .collect();
        PopulateIndex { indexed }
    }

    /// Number of indexes built.
    pub fn len(&self) -> usize {
        self.indexed.len()
    }

    /// Whether no indexes were built.
    pub fn is_empty(&self) -> bool {
        self.indexed.is_empty()
    }

    /// The indexed tags.
    pub fn tags(&self) -> impl Iterator<Item = Tag> + '_ {
        self.indexed.iter().map(|&(t, _)| t)
    }
}

/// Index-assisted populate(). Falls back to a scan when no index hits.
pub fn populate_indexed(
    sumy: &SumyTable,
    table: &EnumTable,
    index: &PopulateIndex,
) -> (Vec<LibraryId>, PopulateStats) {
    let resolved = resolve_conditions(sumy, table);
    let (hit_lists, covered) = index_probe(sumy, index);
    let indexes_hit = hit_lists.len();
    if indexes_hit == 0 {
        let (hits, mut stats) = populate_scan(sumy, table);
        return (hits, stats_with_hits(&mut stats, 0));
    }

    let candidates = intersect_row_lists(hit_lists);
    let mut stats = PopulateStats {
        indexes_hit,
        candidates: candidates.len(),
        comparisons: 0,
    };
    let hits = candidates
        .into_iter()
        .map(|r| LibraryId(r as u32))
        .filter(|&lib| {
            library_satisfies(
                table,
                &resolved,
                lib,
                Some(&covered),
                &mut stats.comparisons,
            )
        })
        .collect();
    (hits, stats)
}

fn stats_with_hits(stats: &mut PopulateStats, hits: usize) -> PopulateStats {
    stats.indexes_hit = hits;
    *stats
}

/// The probe half of [`populate_indexed`]: for every indexed tag that
/// appears in the SUMY table, the sorted-index candidate list for that
/// row's range, plus the set of SUMY row positions so covered (skippable
/// during verification). Cheap and sequential; exposed so sharded drivers
/// share the probe and fan out only the verification.
pub fn index_probe(
    sumy: &SumyTable,
    index: &PopulateIndex,
) -> (Vec<Vec<usize>>, std::collections::HashSet<usize>) {
    let mut hit_lists: Vec<Vec<usize>> = Vec::new();
    let mut covered: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for (tag, sorted) in &index.indexed {
        if let Some(pos) = sumy.rows().iter().position(|r| r.tag == *tag) {
            let row = &sumy.rows()[pos];
            hit_lists.push(sorted.range(row.range.lo(), row.range.hi()));
            covered.insert(pos);
        }
    }
    (hit_lists, covered)
}

/// The populate() macro-operation: evaluate and materialize the result as a
/// named ENUM table over the SUMY's tags ("the populate operator converts a
/// cluster from its intensional/SUMY form to its extensional/ENUM form").
/// Qualification runs through the columnar pruning kernel — it returns
/// exactly the scan's hit list (same predicate, same ascending order;
/// property-tested) while touching only surviving candidates per
/// condition row.
pub fn populate(name: &str, sumy: &SumyTable, table: &EnumTable) -> EnumTable {
    let (libs, _) = populate_columnar(sumy, table);
    materialize_populate(name, sumy, table, &libs)
}

/// Materialize a populate() result: restrict `table` to the qualifying
/// `libs`, then to the SUMY's tags. Shared by the serial macro-operation,
/// the session bookkeeping, and the sharded driver so the result table is
/// identical by construction on every path.
///
/// When the SUMY covers *every* tag of the table in row order — the common
/// `populate(aggregate(E'), E)` closure, where the SUMY was aggregated from
/// a same-universe table — the tag restriction is the identity: filtering a
/// sorted universe with a keep-everything predicate rebuilds the same
/// universe, and copying every row in order rebuilds the same value block.
/// That copy is pure overhead at 25k–30k conditions, so it is skipped.
pub fn materialize_populate(
    name: &str,
    sumy: &SumyTable,
    table: &EnumTable,
    libs: &[LibraryId],
) -> EnumTable {
    let restricted = table.with_libraries(name, libs);
    let tag_ids: Vec<TagId> = sumy
        .tags()
        .filter_map(|t| restricted.matrix.id_of(t))
        .collect();
    let identity = tag_ids.len() == restricted.matrix.n_tags()
        && tag_ids.iter().enumerate().all(|(i, t)| t.index() == i);
    if identity {
        restricted
    } else {
        restricted.select_tags(name, &tag_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sumy::aggregate;
    use gea_sage::corpus::library_meta;
    use gea_sage::library::{NeoplasticState, TissueSource, TissueType};
    use gea_sage::tag::TagUniverse;
    use gea_sage::ExpressionMatrix;

    fn enum_table() -> EnumTable {
        let universe = TagUniverse::from_tags(
            ["AAAAAAAAAA", "CCCCCCCCCC", "GGGGGGGGGG", "TTTTTTTTTT"]
                .iter()
                .map(|s| s.parse().unwrap()),
        );
        let libs = (0..5)
            .map(|i| {
                library_meta(
                    &format!("L{i}"),
                    TissueType::Brain,
                    NeoplasticState::Normal,
                    TissueSource::BulkTissue,
                )
            })
            .collect();
        EnumTable::new(
            "E",
            ExpressionMatrix::from_rows(
                universe,
                libs,
                vec![
                    vec![10.0, 12.0, 11.0, 50.0, 60.0], // A
                    vec![5.0, 5.0, 5.0, 5.0, 90.0],     // C
                    vec![1.0, 2.0, 3.0, 4.0, 5.0],      // G
                    vec![7.0, 7.5, 6.5, 7.2, 7.0],      // T
                ],
            ),
        )
    }

    /// A SUMY describing libraries 0–2: tight ranges they satisfy and
    /// libraries 3–4 do not.
    fn sumy_012(table: &EnumTable) -> SumyTable {
        let sub = table.with_libraries("sub", &[LibraryId(0), LibraryId(1), LibraryId(2)]);
        aggregate("def", &sub.matrix)
    }

    #[test]
    fn scan_finds_exactly_the_defining_libraries() {
        let table = enum_table();
        let sumy = sumy_012(&table);
        let (libs, stats) = populate_scan(&sumy, &table);
        assert_eq!(libs, vec![LibraryId(0), LibraryId(1), LibraryId(2)]);
        assert_eq!(stats.candidates, 5);
        assert!(stats.comparisons > 0);
    }

    #[test]
    fn indexed_agrees_with_scan() {
        let table = enum_table();
        let sumy = sumy_012(&table);
        for m in 0..=4 {
            let index = PopulateIndex::build_top_entropy(&table, m, 8);
            let (indexed, stats) = populate_indexed(&sumy, &table, &index);
            let (scanned, _) = populate_scan(&sumy, &table);
            assert_eq!(indexed, scanned, "m = {m}");
            assert!(stats.indexes_hit <= m);
        }
    }

    #[test]
    fn index_hits_reduce_verification_work() {
        let table = enum_table();
        let sumy = sumy_012(&table);
        let (_, scan_stats) = populate_scan(&sumy, &table);
        // Index the A tag (range [10, 12] excludes libraries 3 and 4).
        let index = PopulateIndex::build_on(&table, &["AAAAAAAAAA".parse().unwrap()]);
        let (libs, stats) = populate_indexed(&sumy, &table, &index);
        assert_eq!(libs.len(), 3);
        assert_eq!(stats.indexes_hit, 1);
        assert_eq!(stats.candidates, 3); // libraries 3, 4 pruned by the index
        assert!(stats.comparisons < scan_stats.comparisons);
    }

    #[test]
    fn missing_sumy_tag_means_implicit_zero() {
        let table = enum_table();
        // A SUMY over a tag the ENUM table has never seen, requiring
        // level in [0, 1]: all libraries qualify (implicit 0).
        let foreign = SumyTable::new(
            "foreign",
            vec![crate::sumy::SumyRow {
                tag: "ACACACACAC".parse().unwrap(),
                tag_no: 0,
                range: crate::interval::Interval::new(0.0, 1.0).unwrap(),
                average: 0.5,
                std_dev: 0.1,
                extras: Default::default(),
            }],
        );
        let (libs, _) = populate_scan(&foreign, &table);
        assert_eq!(libs.len(), 5);
        // Requiring level in [2, 3] disqualifies everyone.
        let strict = SumyTable::new(
            "strict",
            vec![crate::sumy::SumyRow {
                tag: "ACACACACAC".parse().unwrap(),
                tag_no: 0,
                range: crate::interval::Interval::new(2.0, 3.0).unwrap(),
                average: 2.5,
                std_dev: 0.1,
                extras: Default::default(),
            }],
        );
        let (libs, _) = populate_scan(&strict, &table);
        assert!(libs.is_empty());
    }

    #[test]
    fn populate_macro_materializes_enum() {
        let table = enum_table();
        let sumy = sumy_012(&table);
        let result = populate("ENUM1", &sumy, &table);
        assert_eq!(result.name, "ENUM1");
        assert_eq!(result.n_libraries(), 3);
        assert_eq!(result.n_tags(), 4);
        assert_eq!(result.library_names(), vec!["L0", "L1", "L2"]);
    }

    #[test]
    fn columnar_agrees_with_scan() {
        let table = enum_table();
        let sumy = sumy_012(&table);
        let (scan, _) = populate_scan(&sumy, &table);
        let (columnar, stats) = populate_columnar(&sumy, &table);
        assert_eq!(columnar, scan);
        // The columnar scan reads at most n_tags × n_libraries cells.
        assert!(stats.comparisons <= (table.n_tags() * table.n_libraries()) as u64);
    }

    #[test]
    fn columnar_short_circuits_when_no_candidates_remain() {
        let table = enum_table();
        // Impossible condition on the first tag: candidates die on row one.
        let impossible = SumyTable::new(
            "x",
            vec![crate::sumy::SumyRow {
                tag: "AAAAAAAAAA".parse().unwrap(),
                tag_no: 0,
                range: crate::interval::Interval::new(-5.0, -1.0).unwrap(),
                average: -3.0,
                std_dev: 0.5,
                extras: Default::default(),
            }],
        );
        let (hits, stats) = populate_columnar(&impossible, &table);
        assert!(hits.is_empty());
        // Only the first condition row was fetched.
        assert_eq!(stats.comparisons, table.n_libraries() as u64);
    }

    #[test]
    fn empty_index_falls_back_to_scan() {
        let table = enum_table();
        let sumy = sumy_012(&table);
        let index = PopulateIndex::build_on(&table, &[]);
        assert!(index.is_empty());
        let (libs, stats) = populate_indexed(&sumy, &table, &index);
        assert_eq!(libs.len(), 3);
        assert_eq!(stats.indexes_hit, 0);
        assert_eq!(stats.candidates, 5);
    }

    #[test]
    fn aggregate_populate_closure() {
        // populate(aggregate(E), E) returns at least E's libraries
        // (aggregate's ranges are satisfied by construction).
        let table = enum_table();
        let sumy = aggregate("all", &table.matrix);
        let (libs, _) = populate_scan(&sumy, &table);
        assert_eq!(libs.len(), 5);
    }
}
