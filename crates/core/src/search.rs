//! Search operations (thesis §4.4.4).
//!
//! Two families: general database searches over the SAGE data (library
//! information, tissue-type membership, tag frequencies, tag-range
//! retrieval — Figures 4.23–4.26) and range-arithmetic searches over SUMY
//! tables (Figures 4.16/4.17), whose per-tag results are `NO` (relation not
//! satisfied), `NE` (tag not in the table) or the satisfied range.

use gea_sage::corpus::SageCorpus;
use gea_sage::library::{LibraryId, LibraryMeta};
use gea_sage::tag::Tag;
use gea_sage::TissueType;

use crate::enum_table::EnumTable;
use crate::interval::{AllenRelation, Interval};
use crate::sumy::SumyTable;

/// Figure 4.23's library-information search result.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryInfo {
    /// Library id.
    pub id: LibraryId,
    /// Metadata (name, tissue, state, source).
    pub meta: LibraryMeta,
    /// Total number of tags (sum of counts).
    pub total_tags: u64,
    /// Unique number of tags.
    pub unique_tags: usize,
}

/// Search a corpus for library information by id.
pub fn library_info_by_id(corpus: &SageCorpus, id: LibraryId) -> Option<LibraryInfo> {
    if id.index() >= corpus.len() {
        return None;
    }
    let lib = corpus.library(id);
    Some(LibraryInfo {
        id,
        meta: lib.meta.clone(),
        total_tags: lib.total_tags(),
        unique_tags: lib.unique_tags(),
    })
}

/// Search by exact library name.
pub fn library_info_by_name(corpus: &SageCorpus, name: &str) -> Option<LibraryInfo> {
    corpus
        .find_by_name(name)
        .and_then(|id| library_info_by_id(corpus, id))
}

/// Figure 4.24's tissue-type search: member library names and their count.
pub fn tissue_members(corpus: &SageCorpus, tissue: &TissueType) -> Vec<String> {
    corpus
        .libraries_of_tissue(tissue)
        .into_iter()
        .map(|id| corpus.meta(id).name.clone())
        .collect()
}

/// One row of the tag-frequency search (Figures 4.25/4.26): a tag, its
/// number, and its expression value in each requested library.
#[derive(Debug, Clone, PartialEq)]
pub struct TagFrequencyRow {
    /// The tag.
    pub tag: Tag,
    /// Tag number in the ENUM table's universe.
    pub tag_no: u32,
    /// `(library name, expression value)` pairs, in request order.
    pub values: Vec<(String, f64)>,
}

/// Expression values of a single tag over the chosen libraries (empty
/// library list means all libraries).
pub fn tag_frequency(
    table: &EnumTable,
    tag: Tag,
    libraries: &[LibraryId],
) -> Option<TagFrequencyRow> {
    let tid = table.matrix.id_of(tag)?;
    let ids: Vec<LibraryId> = if libraries.is_empty() {
        table.matrix.library_ids().collect()
    } else {
        libraries.to_vec()
    };
    Some(TagFrequencyRow {
        tag,
        tag_no: tid.0,
        values: ids
            .into_iter()
            .map(|lib| {
                (
                    table.matrix.library(lib).name.clone(),
                    table.matrix.value(tid, lib),
                )
            })
            .collect(),
    })
}

/// Expression values for every tag in the inclusive tag range `lo..=hi`
/// over the chosen libraries — Figure 4.25's
/// `AAAAAAAAAC-AAAAAAACCC` search.
pub fn tag_range_frequency(
    table: &EnumTable,
    lo: Tag,
    hi: Tag,
    libraries: &[LibraryId],
) -> Vec<TagFrequencyRow> {
    table
        .matrix
        .universe()
        .ids_in_range(lo, hi)
        .filter_map(|tid| tag_frequency(table, table.matrix.tag_of(tid), libraries))
        .collect()
}

/// The §4.4.4.2 "Range Search for Library": libraries of a data set whose
/// expression of `tag` lies within `lo..=hi` (inclusive).
pub fn libraries_with_tag_in_range(
    table: &EnumTable,
    tag: Tag,
    lo: f64,
    hi: f64,
) -> Vec<(String, f64)> {
    let Some(tid) = table.matrix.id_of(tag) else {
        return Vec::new();
    };
    table
        .matrix
        .library_ids()
        .filter_map(|lib| {
            let v = table.matrix.value(tid, lib);
            (v >= lo && v <= hi).then(|| (table.matrix.library(lib).name.clone(), v))
        })
        .collect()
}

/// Per-tag outcome of a range-arithmetic search over one SUMY table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RangeSearchOutcome {
    /// The tag's range satisfies the relation; carries the range.
    Satisfied(Interval),
    /// The tag exists but its range does not satisfy the relation —
    /// displayed as `NO`.
    NotSatisfied,
    /// The tag does not exist in the SUMY table — displayed as `NE`.
    NotInTable,
}

impl RangeSearchOutcome {
    /// The thesis's display token.
    pub fn display(&self) -> String {
        match self {
            RangeSearchOutcome::Satisfied(iv) => format!("({}-{})", iv.lo(), iv.hi()),
            RangeSearchOutcome::NotSatisfied => "NO".to_string(),
            RangeSearchOutcome::NotInTable => "NE".to_string(),
        }
    }
}

/// Figure 4.16's search: probe specific tags against multiple SUMY tables
/// under the *loose overlap* test the thesis's Overlaps search uses.
/// Returns one outcome per `(tag, table)` pair, table-major per tag.
pub fn range_search_tags(
    tables: &[&SumyTable],
    tags: &[Tag],
    query: Interval,
) -> Vec<(Tag, Vec<RangeSearchOutcome>)> {
    tags.iter()
        .map(|&tag| {
            let outcomes = tables
                .iter()
                .map(|table| match table.row_for(tag) {
                    None => RangeSearchOutcome::NotInTable,
                    Some(row) => {
                        if row.range.intersects(query) {
                            RangeSearchOutcome::Satisfied(row.range)
                        } else {
                            RangeSearchOutcome::NotSatisfied
                        }
                    }
                })
                .collect();
            (tag, outcomes)
        })
        .collect()
}

/// Figure 4.17's "any tag" search: all tags of one SUMY table whose range
/// stands in `rel` to `query` (strict Allen semantics), or — with
/// `rel = None` — whose range merely intersects it (the thesis's Overlaps
/// button).
pub fn range_search_any(
    table: &SumyTable,
    rel: Option<AllenRelation>,
    query: Interval,
) -> Vec<(Tag, Interval)> {
    table
        .rows()
        .iter()
        .filter(|row| match rel {
            Some(rel) => row.range.satisfies(rel, query),
            None => row.range.intersects(query),
        })
        .map(|row| (row.tag, row.range))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sumy::aggregate;
    use gea_sage::corpus::library_meta;
    use gea_sage::library::{NeoplasticState, SageLibrary, TissueSource};
    use gea_sage::tag::TagUniverse;
    use gea_sage::ExpressionMatrix;

    fn corpus() -> SageCorpus {
        let mut c = SageCorpus::new();
        c.add(SageLibrary::from_counts(
            library_meta(
                "SAGE_Duke_H1020",
                TissueType::Brain,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
            [("AAAAAAAAAA".parse().unwrap(), 152371u32 / 2)],
        ));
        c.add(SageLibrary::from_counts(
            library_meta(
                "SAGE_Br_N",
                TissueType::Brain,
                NeoplasticState::Normal,
                TissueSource::BulkTissue,
            ),
            [("CCCCCCCCCC".parse().unwrap(), 7)],
        ));
        c
    }

    fn enum_table() -> EnumTable {
        let universe = TagUniverse::from_tags(
            ["AAAAAAAAAC", "AAAAAAAAAG", "AAAAAAAAAT", "CAAAAAAAAA"]
                .iter()
                .map(|s| s.parse().unwrap()),
        );
        let libs = vec![
            library_meta(
                "SAGE_293-IND",
                TissueType::Kidney,
                NeoplasticState::Cancerous,
                TissueSource::CellLine,
            ),
            library_meta(
                "SAGE_95-259",
                TissueType::Brain,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
            library_meta(
                "SAGE_95-260",
                TissueType::Brain,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
        ];
        EnumTable::new(
            "E",
            ExpressionMatrix::from_rows(
                universe,
                libs,
                vec![
                    vec![13.0, 8.0, 0.0],
                    vec![26.0, 0.0, 7.0],
                    vec![1.0, 3.0, 0.0],
                    vec![5.0, 5.0, 5.0],
                ],
            ),
        )
    }

    #[test]
    fn library_info_lookup() {
        let c = corpus();
        let by_id = library_info_by_id(&c, LibraryId(0)).unwrap();
        assert_eq!(by_id.meta.name, "SAGE_Duke_H1020");
        assert_eq!(by_id.meta.tissue, TissueType::Brain);
        let by_name = library_info_by_name(&c, "SAGE_Br_N").unwrap();
        assert_eq!(by_name.id, LibraryId(1));
        assert_eq!(by_name.total_tags, 7);
        assert_eq!(by_name.unique_tags, 1);
        assert!(library_info_by_id(&c, LibraryId(9)).is_none());
        assert!(library_info_by_name(&c, "nope").is_none());
    }

    #[test]
    fn tissue_membership() {
        let c = corpus();
        assert_eq!(
            tissue_members(&c, &TissueType::Brain),
            vec!["SAGE_Duke_H1020", "SAGE_Br_N"]
        );
        assert!(tissue_members(&c, &TissueType::Skin).is_empty());
    }

    #[test]
    fn single_tag_frequency_matches_figure_4_26() {
        // "the tag number for AAAAAAAAAC is 2, and the expression values for
        // the selected libraries are 13 and 8" — our universe numbers from
        // 0, so the shape is what we check.
        let t = enum_table();
        let row = tag_frequency(
            &t,
            "AAAAAAAAAC".parse().unwrap(),
            &[LibraryId(0), LibraryId(1)],
        )
        .unwrap();
        assert_eq!(
            row.values,
            vec![
                ("SAGE_293-IND".to_string(), 13.0),
                ("SAGE_95-259".to_string(), 8.0)
            ]
        );
        assert!(tag_frequency(&t, "GGGGGGGGGG".parse().unwrap(), &[]).is_none());
    }

    #[test]
    fn tag_range_frequency_walks_the_range() {
        let t = enum_table();
        let rows = tag_range_frequency(
            &t,
            "AAAAAAAAAC".parse().unwrap(),
            "AAAAAAAAAT".parse().unwrap(),
            &[],
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].tag.to_string(), "AAAAAAAAAC");
        assert_eq!(rows[2].tag.to_string(), "AAAAAAAAAT");
        // Empty library list = all three libraries.
        assert_eq!(rows[1].values.len(), 3);
        assert_eq!(rows[1].values[2].1, 7.0);
    }

    #[test]
    fn library_range_search() {
        let t = enum_table();
        let hits = libraries_with_tag_in_range(&t, "AAAAAAAAAG".parse().unwrap(), 5.0, 30.0);
        assert_eq!(
            hits,
            vec![
                ("SAGE_293-IND".to_string(), 26.0),
                ("SAGE_95-260".to_string(), 7.0)
            ]
        );
        assert!(
            libraries_with_tag_in_range(&t, "GGGGGGGGGG".parse().unwrap(), 0.0, 1.0).is_empty()
        );
    }

    #[test]
    fn range_search_specific_tags() {
        let t = enum_table();
        let sumy = aggregate("s", &t.matrix);
        let query = Interval::new(10.0, 700.0).unwrap();
        let results = range_search_tags(
            &[&sumy],
            &[
                "AAAAAAAAAG".parse().unwrap(), // range [0, 26] → intersects
                "AAAAAAAAAT".parse().unwrap(), // range [0, 3] → NO
                "GGGGGGGGGG".parse().unwrap(), // not in table → NE
            ],
            query,
        );
        assert!(matches!(results[0].1[0], RangeSearchOutcome::Satisfied(_)));
        assert_eq!(results[1].1[0], RangeSearchOutcome::NotSatisfied);
        assert_eq!(results[2].1[0], RangeSearchOutcome::NotInTable);
        assert_eq!(results[1].1[0].display(), "NO");
        assert_eq!(results[2].1[0].display(), "NE");
    }

    #[test]
    fn range_search_any_tag() {
        let t = enum_table();
        let sumy = aggregate("s", &t.matrix);
        // Strict Allen 'during' [−1, 30]: every tag's range sits inside.
        let hits = range_search_any(
            &sumy,
            Some(AllenRelation::During),
            Interval::new(-1.0, 30.0).unwrap(),
        );
        assert_eq!(hits.len(), 4);
        // Loose overlap with [6, 9]: CAAAAAAAAA is [5,5] → no; AAAAAAAAAT
        // [0,3] → no; the other two ranges reach into [6, 9].
        let loose = range_search_any(&sumy, None, Interval::new(6.0, 9.0).unwrap());
        assert_eq!(loose.len(), 2);
    }
}
