//! Relational materialization — the Appendix IV schemas.
//!
//! GEA persists every structure in the underlying DBMS: SUMY tables as
//! `SummaryTable(TagName, TagNo, Minimum, Maximum, Range, Average, STDV)`,
//! GAP tables as `GapTable(TagName, TagNo, GapValue…)`, and ENUM tables in
//! the rotated physical layout of §4.6.1 (`TAGS(TagName, TagNo, Lib_a …)`).
//! These conversions are lossless both ways, which is what lets the lineage
//! feature drop a table's contents and regenerate them later.

use gea_relstore::schema::{Column, Schema};
use gea_relstore::table::{Table, TableError};
use gea_relstore::value::{DataType, Value};
use gea_sage::tag::Tag;

use crate::enum_table::EnumTable;
use crate::gap::{GapRow, GapTable};
use crate::interval::Interval;
use crate::sumy::{SumyRow, SumyTable};

/// Errors raised while converting between GEA structures and relations.
#[derive(Debug)]
pub enum ConvertError {
    /// Underlying table error.
    Table(TableError),
    /// A cell failed to parse back into the GEA structure.
    Malformed(String),
}

impl From<TableError> for ConvertError {
    fn from(e: TableError) -> ConvertError {
        ConvertError::Table(e)
    }
}

impl std::fmt::Display for ConvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvertError::Table(e) => write!(f, "{e}"),
            ConvertError::Malformed(m) => write!(f, "malformed relation: {m}"),
        }
    }
}

impl std::error::Error for ConvertError {}

/// Materialize a SUMY table with the Appendix IV `SummaryTable` schema.
pub fn sumy_to_relation(sumy: &SumyTable) -> Result<Table, ConvertError> {
    let schema = Schema::from_pairs(&[
        ("TagName", DataType::Text),
        ("TagNo", DataType::Int),
        ("Minimum", DataType::Float),
        ("Maximum", DataType::Float),
        ("Range", DataType::Float),
        ("Average", DataType::Float),
        ("STDV", DataType::Float),
    ])
    .map_err(TableError::Schema)?;
    let mut table = Table::new(schema);
    for row in sumy.rows() {
        table.push_row(vec![
            row.tag.to_string().into(),
            row.tag_no.into(),
            row.range.lo().into(),
            row.range.hi().into(),
            row.range.width().into(),
            row.average.into(),
            row.std_dev.into(),
        ])?;
    }
    Ok(table)
}

/// Reconstruct a SUMY table from its relational form.
pub fn sumy_from_relation(name: &str, table: &Table) -> Result<SumyTable, ConvertError> {
    let mut rows = Vec::with_capacity(table.n_rows());
    for r in 0..table.n_rows() {
        let tag_s = table
            .value_by_name(r, "TagName")?
            .as_str()
            .ok_or_else(|| ConvertError::Malformed("TagName not text".into()))?;
        let tag: Tag = tag_s
            .parse()
            .map_err(|e| ConvertError::Malformed(format!("bad tag {tag_s:?}: {e}")))?;
        let f = |col: &str| -> Result<f64, ConvertError> {
            table
                .value_by_name(r, col)?
                .as_f64()
                .ok_or_else(|| ConvertError::Malformed(format!("{col} not numeric")))
        };
        let lo = f("Minimum")?;
        let hi = f("Maximum")?;
        rows.push(SumyRow {
            tag,
            tag_no: table
                .value_by_name(r, "TagNo")?
                .as_i64()
                .ok_or_else(|| ConvertError::Malformed("TagNo not int".into()))?
                as u32,
            range: Interval::new(lo, hi).map_err(|e| ConvertError::Malformed(e.to_string()))?,
            average: f("Average")?,
            std_dev: f("STDV")?,
            extras: Default::default(),
        });
    }
    Ok(SumyTable::new(name, rows))
}

/// Materialize a GAP table (`TagName, TagNo, GapValue…`, one column per
/// gap).
pub fn gap_to_relation(gap: &GapTable) -> Result<Table, ConvertError> {
    let mut cols = vec![
        Column::new("TagName", DataType::Text),
        Column::new("TagNo", DataType::Int),
    ];
    for c in &gap.columns {
        cols.push(Column::new(c, DataType::Float));
    }
    let schema = Schema::new(cols).map_err(TableError::Schema)?;
    let mut table = Table::new(schema);
    for row in gap.rows() {
        let mut values: Vec<Value> = vec![row.tag.to_string().into(), row.tag_no.into()];
        for g in &row.gaps {
            values.push(match g {
                Some(v) => Value::Float(*v),
                None => Value::Null,
            });
        }
        table.push_row(values)?;
    }
    Ok(table)
}

/// Reconstruct a GAP table from its relational form.
pub fn gap_from_relation(name: &str, table: &Table) -> Result<GapTable, ConvertError> {
    let columns: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .skip(2)
        .map(|c| c.name.clone())
        .collect();
    if columns.is_empty() {
        return Err(ConvertError::Malformed("no gap columns".into()));
    }
    let mut rows = Vec::with_capacity(table.n_rows());
    for r in 0..table.n_rows() {
        let tag_s = table
            .value_by_name(r, "TagName")?
            .as_str()
            .ok_or_else(|| ConvertError::Malformed("TagName not text".into()))?;
        let tag: Tag = tag_s
            .parse()
            .map_err(|e| ConvertError::Malformed(format!("bad tag {tag_s:?}: {e}")))?;
        let tag_no = table
            .value_by_name(r, "TagNo")?
            .as_i64()
            .ok_or_else(|| ConvertError::Malformed("TagNo not int".into()))?
            as u32;
        let gaps = (2..table.n_cols())
            .map(|c| table.value(r, c).as_f64())
            .collect();
        rows.push(GapRow { tag, tag_no, gaps });
    }
    Ok(GapTable::new(name, columns, rows))
}

/// Materialize an ENUM table in the rotated physical layout of Figure 4.30:
/// one row per tag, one FLOAT column per library.
pub fn enum_to_relation(table: &EnumTable) -> Result<Table, ConvertError> {
    let mut cols = vec![
        Column::new("TagName", DataType::Text),
        Column::new("TagNo", DataType::Int),
    ];
    for meta in table.libraries() {
        cols.push(Column::new(&meta.name, DataType::Float));
    }
    let schema = Schema::new(cols).map_err(TableError::Schema)?;
    let mut out = Table::new(schema);
    for tid in table.matrix.tag_ids() {
        let mut row: Vec<Value> = vec![table.matrix.tag_of(tid).to_string().into(), tid.0.into()];
        row.extend(table.matrix.tag_row(tid).iter().map(|&v| Value::Float(v)));
        out.push_row(row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sumy::aggregate;
    use gea_sage::corpus::library_meta;
    use gea_sage::library::{NeoplasticState, TissueSource, TissueType};
    use gea_sage::tag::TagUniverse;
    use gea_sage::ExpressionMatrix;

    fn enum_table() -> EnumTable {
        let universe = TagUniverse::from_tags(
            ["AAAAAAAAAA", "CCCCCCCCCC"]
                .iter()
                .map(|s| s.parse().unwrap()),
        );
        let libs = vec![
            library_meta(
                "L0",
                TissueType::Brain,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
            library_meta(
                "L1",
                TissueType::Brain,
                NeoplasticState::Normal,
                TissueSource::BulkTissue,
            ),
        ];
        EnumTable::new(
            "E",
            ExpressionMatrix::from_rows(universe, libs, vec![vec![10.0, 20.0], vec![3.0, 5.0]]),
        )
    }

    #[test]
    fn sumy_roundtrip() {
        let sumy = aggregate("s", &enum_table().matrix);
        let relation = sumy_to_relation(&sumy).unwrap();
        assert_eq!(relation.n_rows(), 2);
        assert_eq!(relation.n_cols(), 7);
        let back = sumy_from_relation("s", &relation).unwrap();
        assert_eq!(back, sumy);
    }

    #[test]
    fn gap_roundtrip_preserves_nulls() {
        use crate::gap::GapRow;
        let gap = GapTable::new(
            "g",
            vec!["Gap".to_string()],
            vec![
                GapRow {
                    tag: "AAAAAAAAAA".parse().unwrap(),
                    tag_no: 0,
                    gaps: vec![Some(-1.5)],
                },
                GapRow {
                    tag: "CCCCCCCCCC".parse().unwrap(),
                    tag_no: 1,
                    gaps: vec![None],
                },
            ],
        );
        let relation = gap_to_relation(&gap).unwrap();
        assert!(relation.value_by_name(1, "Gap").unwrap().is_null());
        let back = gap_from_relation("g", &relation).unwrap();
        assert_eq!(back.rows(), gap.rows());
        assert_eq!(back.columns, gap.columns);
    }

    #[test]
    fn multi_column_gap_roundtrip() {
        use crate::gap::GapRow;
        let gap = GapTable::new(
            "g4",
            vec!["GAP1.Gap".to_string(), "GAP2.Gap".to_string()],
            vec![GapRow {
                tag: "AAAAAAAAAA".parse().unwrap(),
                tag_no: 0,
                gaps: vec![Some(-11.0), Some(-8.0)],
            }],
        );
        let relation = gap_to_relation(&gap).unwrap();
        assert_eq!(relation.n_cols(), 4);
        let back = gap_from_relation("g4", &relation).unwrap();
        assert_eq!(back.rows()[0].gaps, vec![Some(-11.0), Some(-8.0)]);
    }

    #[test]
    fn enum_relation_is_rotated() {
        let t = enum_table();
        let relation = enum_to_relation(&t).unwrap();
        // One row per tag, one column per library (Figure 4.30b).
        assert_eq!(relation.n_rows(), 2);
        assert_eq!(relation.n_cols(), 4);
        assert_eq!(
            relation.value_by_name(0, "TagName").unwrap().as_str(),
            Some("AAAAAAAAAA")
        );
        assert_eq!(
            relation.value_by_name(0, "L1").unwrap().as_f64(),
            Some(20.0)
        );
    }

    #[test]
    fn malformed_relation_rejected() {
        let schema =
            Schema::from_pairs(&[("TagName", DataType::Text), ("TagNo", DataType::Int)]).unwrap();
        let t = Table::new(schema);
        assert!(gap_from_relation("g", &t).is_err());
    }
}
