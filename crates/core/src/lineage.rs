//! The lineage feature (thesis §4.4.2, Figure 4.18).
//!
//! Cluster analysis is a multi-step process; after dozens of operations the
//! analyst "may fail to remember what operations have been used to create
//! previous intermediate results". The lineage tracker records every
//! derived table as a node in a DAG: its kind, the operation and parameters
//! that created it, free-form user comments, and edges to the tables it was
//! derived from (a GAP table has two SUMY parents, so it "appears under
//! both SUMY tables" in the explorer view).
//!
//! Deletion supports the thesis's two modes: *contents only* (free storage,
//! keep the metadata so the table can be regenerated) and *cascade* (drop
//! the node, its metadata, and everything derived from it).

use std::collections::BTreeMap;
use std::fmt;

/// What kind of table a lineage node describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An extensional data set (tissue-type table or custom ENUM).
    Enum,
    /// A mined fascicle (both its ENUM and SUMY identities).
    Fascicle,
    /// A SUMY table.
    Sumy,
    /// A GAP table.
    Gap,
    /// A derived top-gap table.
    TopGap,
    /// A GAP-comparison result.
    Compare,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeKind::Enum => "ENUM",
            NodeKind::Fascicle => "Fascicle",
            NodeKind::Sumy => "SUMY",
            NodeKind::Gap => "GAP",
            NodeKind::TopGap => "TopGap",
            NodeKind::Compare => "Compare",
        })
    }
}

/// Identifier of a lineage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// One recorded operation.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageNode {
    /// Node id.
    pub id: NodeId,
    /// The derived table's name (unique among live nodes).
    pub name: String,
    /// Table kind.
    pub kind: NodeKind,
    /// Operation that created it (e.g. `Fascicles`, `diff`, `intersect`).
    pub operation: String,
    /// Operation parameters as display pairs — Figure 4.18's "Operation
    /// Info" panel (compact dimension, binary file, batch, ...).
    pub params: Vec<(String, String)>,
    /// Free-form user comments ("The compact tags in this fascicle are
    /// very interesting").
    pub comment: String,
    /// Parent node ids (inputs of the operation).
    pub parents: Vec<NodeId>,
    /// Whether the table's contents are materialized (false after a
    /// contents-only delete; the node's metadata allows regeneration).
    pub materialized: bool,
}

/// Errors raised by the tracker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineageError {
    /// Unknown node id.
    NotFound(u32),
    /// A table with this name is already tracked.
    DuplicateName(String),
    /// A parent id does not exist.
    MissingParent(u32),
}

impl fmt::Display for LineageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineageError::NotFound(id) => write!(f, "no lineage node {id}"),
            LineageError::DuplicateName(name) => {
                write!(f, "lineage already tracks a table named {name:?}")
            }
            LineageError::MissingParent(id) => {
                write!(f, "parent node {id} does not exist")
            }
        }
    }
}

impl std::error::Error for LineageError {}

/// The operation-history DAG.
#[derive(Debug, Clone, Default)]
pub struct Lineage {
    nodes: BTreeMap<u32, LineageNode>,
    next_id: u32,
}

impl Lineage {
    /// Create an empty tracker.
    pub fn new() -> Lineage {
        Lineage::default()
    }

    /// Record a new derived table.
    pub fn record(
        &mut self,
        name: &str,
        kind: NodeKind,
        operation: &str,
        params: Vec<(String, String)>,
        parents: &[NodeId],
    ) -> Result<NodeId, LineageError> {
        if self.find_by_name(name).is_some() {
            return Err(LineageError::DuplicateName(name.to_string()));
        }
        for p in parents {
            if !self.nodes.contains_key(&p.0) {
                return Err(LineageError::MissingParent(p.0));
            }
        }
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.nodes.insert(
            id.0,
            LineageNode {
                id,
                name: name.to_string(),
                kind,
                operation: operation.to_string(),
                params,
                comment: String::new(),
                parents: parents.to_vec(),
                materialized: true,
            },
        );
        Ok(id)
    }

    /// Look up a node.
    pub fn get(&self, id: NodeId) -> Result<&LineageNode, LineageError> {
        self.nodes.get(&id.0).ok_or(LineageError::NotFound(id.0))
    }

    /// Find a live node by table name.
    pub fn find_by_name(&self, name: &str) -> Option<&LineageNode> {
        self.nodes.values().find(|n| n.name == name)
    }

    /// Attach or replace the user comment on a node.
    pub fn set_comment(&mut self, id: NodeId, comment: &str) -> Result<(), LineageError> {
        let node = self
            .nodes
            .get_mut(&id.0)
            .ok_or(LineageError::NotFound(id.0))?;
        node.comment = comment.to_string();
        Ok(())
    }

    /// Direct children of a node (tables derived from it in one step).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .values()
            .filter(|n| n.parents.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// All nodes transitively derived from `id`, including itself.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if out.contains(&cur) {
                continue;
            }
            out.push(cur);
            stack.extend(self.children(cur));
        }
        out.sort();
        out
    }

    /// Contents-only delete: mark the table dematerialized but keep its
    /// metadata for regeneration. Returns the table names whose contents
    /// should be dropped from the database (just this one).
    pub fn delete_contents(&mut self, id: NodeId) -> Result<Vec<String>, LineageError> {
        let node = self
            .nodes
            .get_mut(&id.0)
            .ok_or(LineageError::NotFound(id.0))?;
        node.materialized = false;
        Ok(vec![node.name.clone()])
    }

    /// Mark a dematerialized table as regenerated.
    pub fn rematerialize(&mut self, id: NodeId) -> Result<(), LineageError> {
        let node = self
            .nodes
            .get_mut(&id.0)
            .ok_or(LineageError::NotFound(id.0))?;
        node.materialized = true;
        Ok(())
    }

    /// Cascade delete: remove the node, its metadata, "and all other tables
    /// generated from it". Returns the removed table names so the caller
    /// can drop them from the database.
    pub fn delete_cascade(&mut self, id: NodeId) -> Result<Vec<String>, LineageError> {
        if !self.nodes.contains_key(&id.0) {
            return Err(LineageError::NotFound(id.0));
        }
        let doomed = self.descendants(id);
        let mut names = Vec::with_capacity(doomed.len());
        for d in doomed {
            if let Some(node) = self.nodes.remove(&d.0) {
                names.push(node.name);
            }
        }
        Ok(names)
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tracker is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate live nodes in id order.
    pub fn iter(&self) -> impl Iterator<Item = &LineageNode> {
        self.nodes.values()
    }

    /// Render the explorer view of Figure 4.18: roots at top level, each
    /// node's derivations nested beneath it; nodes with several parents
    /// appear under each parent, as the thesis specifies for GAP tables.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let roots: Vec<NodeId> = self
            .nodes
            .values()
            .filter(|n| n.parents.is_empty())
            .map(|n| n.id)
            .collect();
        for root in roots {
            self.render_node(&mut out, root, 0);
        }
        out
    }

    fn render_node(&self, out: &mut String, id: NodeId, depth: usize) {
        let Ok(node) = self.get(id) else { return };
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{} [{}] ({}{})\n",
            node.name,
            node.kind,
            node.operation,
            if node.materialized {
                ""
            } else {
                "; contents deleted"
            },
        ));
        let mut children = self.children(id);
        children.sort();
        for child in children {
            self.render_node(out, child, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    /// A miniature of Figure 4.18's history: a brain data set, a fascicle,
    /// two SUMY tables, and a GAP derived from both.
    fn history() -> (Lineage, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut lin = Lineage::new();
        let brain = lin
            .record(
                "Ebrain",
                NodeKind::Enum,
                "select_tissue",
                params(&[("type", "brain")]),
                &[],
            )
            .unwrap();
        let fas = lin
            .record(
                "brain25k_3",
                NodeKind::Fascicle,
                "Fascicles",
                params(&[("compact_dimension", "25000"), ("batch", "6"), ("min", "3")]),
                &[brain],
            )
            .unwrap();
        let s1 = lin
            .record(
                "brain25k_3CancerFasTbl",
                NodeKind::Sumy,
                "aggregate",
                vec![],
                &[fas],
            )
            .unwrap();
        let s2 = lin
            .record(
                "brain25k_3NormalTable",
                NodeKind::Sumy,
                "aggregate",
                vec![],
                &[fas],
            )
            .unwrap();
        let gap = lin
            .record("b25canvsnor_gap1", NodeKind::Gap, "diff", vec![], &[s1, s2])
            .unwrap();
        (lin, brain, fas, s1, s2, gap)
    }

    #[test]
    fn records_and_links() {
        let (lin, brain, fas, s1, s2, gap) = history();
        assert_eq!(lin.len(), 5);
        assert_eq!(lin.children(brain), vec![fas]);
        let mut kids = lin.children(fas);
        kids.sort();
        assert_eq!(kids, vec![s1, s2]);
        // The GAP node hangs under both SUMY parents.
        assert_eq!(lin.children(s1), vec![gap]);
        assert_eq!(lin.children(s2), vec![gap]);
        assert_eq!(lin.get(gap).unwrap().parents, vec![s1, s2]);
    }

    #[test]
    fn duplicate_names_and_missing_parents_rejected() {
        let (mut lin, brain, ..) = history();
        assert_eq!(
            lin.record("Ebrain", NodeKind::Enum, "x", vec![], &[]),
            Err(LineageError::DuplicateName("Ebrain".to_string()))
        );
        assert_eq!(
            lin.record("y", NodeKind::Gap, "x", vec![], &[NodeId(99)]),
            Err(LineageError::MissingParent(99))
        );
        let _ = brain;
    }

    #[test]
    fn comments() {
        let (mut lin, _, fas, ..) = history();
        lin.set_comment(
            fas,
            "The compact tags in this fascicle are very interesting",
        )
        .unwrap();
        assert!(lin.get(fas).unwrap().comment.contains("interesting"));
    }

    #[test]
    fn contents_only_delete_keeps_metadata() {
        let (mut lin, _, fas, ..) = history();
        let dropped = lin.delete_contents(fas).unwrap();
        assert_eq!(dropped, vec!["brain25k_3".to_string()]);
        let node = lin.get(fas).unwrap();
        assert!(!node.materialized);
        assert_eq!(node.operation, "Fascicles"); // metadata survives
        lin.rematerialize(fas).unwrap();
        assert!(lin.get(fas).unwrap().materialized);
    }

    #[test]
    fn cascade_delete_removes_descendants() {
        let (mut lin, brain, fas, s1, s2, gap) = history();
        let removed = lin.delete_cascade(fas).unwrap();
        assert_eq!(removed.len(), 4); // fascicle + 2 SUMY + GAP
        assert_eq!(lin.len(), 1);
        assert!(lin.get(brain).is_ok());
        for id in [fas, s1, s2, gap] {
            assert!(lin.get(id).is_err());
        }
    }

    #[test]
    fn tree_rendering_shows_gap_under_both_parents() {
        let (lin, ..) = history();
        let tree = lin.render_tree();
        assert!(tree.starts_with("Ebrain [ENUM]"));
        // b25canvsnor_gap1 appears twice: once under each SUMY parent.
        assert_eq!(tree.matches("b25canvsnor_gap1").count(), 2);
    }

    #[test]
    fn descendants_are_transitive() {
        let (lin, brain, ..) = history();
        assert_eq!(lin.descendants(brain).len(), 5);
    }
}
