//! Persisting analysis results across sessions.
//!
//! The thesis keeps every intermediate table in DB2, so an analyst can come
//! back days later, browse the lineage (Figure 4.18) and continue. Two
//! layers provide that here:
//!
//! * The browsable layer: [`save_results`] writes a session's materialized
//!   relational tables (as CSV with schema sidecars) and the lineage DAG to
//!   a directory; [`load_results`] reads them back into a [`Database`] +
//!   [`Lineage`] pair. Dematerialized tables (contents-only deletes)
//!   round-trip as empty tables whose lineage metadata still describes how
//!   to regenerate them.
//! * The fidelity-complete layer: [`save_session`] additionally writes a
//!   versioned binary snapshot (`session.gea`) holding *everything* a
//!   [`GeaSession`] owns — raw corpus, cleaned base matrix, cleaning
//!   report, derived ENUM/SUMY/GAP tables, fascicle records, relational
//!   database, and lineage — and [`load_session`] reassembles a live
//!   session from it. This is the format the server's eviction spill/
//!   restore path uses ([`spill_session`]): replies answered by a restored
//!   session are byte-identical to the pre-eviction ones.
//!
//! The snapshot carries an FNV-1a fingerprint over its body; truncated,
//! bit-flipped, or version-skewed files load as
//! [`PersistError::Malformed`], never a panic.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use gea_relstore::csv::{export_csv, import_csv};
use gea_relstore::schema::Schema;
use gea_relstore::value::DataType;
use gea_relstore::Database;
use gea_sage::clean::CleaningReport;
use gea_sage::io::{read_corpus_binary, write_corpus_binary};
use gea_sage::library::{LibraryMeta, LibraryProperty, NeoplasticState, TissueSource, TissueType};
use gea_sage::tag::{Tag, TagUniverse};
use gea_sage::ExpressionMatrix;

use crate::enum_table::EnumTable;
use crate::gap::{GapRow, GapTable};
use crate::interval::Interval;
use crate::lineage::{Lineage, LineageNode, NodeId, NodeKind};
use crate::session::{FascicleRecord, GeaSession, SessionSnapshot};
use crate::sumy::{SumyRow, SumyTable};

/// Errors raised by persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A file's contents did not parse.
    Malformed(String),
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Malformed(m) => write!(f, "malformed session data: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn malformed(detail: impl Into<String>) -> PersistError {
    PersistError::Malformed(detail.into())
}

fn kind_token(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Enum => "enum",
        NodeKind::Fascicle => "fascicle",
        NodeKind::Sumy => "sumy",
        NodeKind::Gap => "gap",
        NodeKind::TopGap => "topgap",
        NodeKind::Compare => "compare",
    }
}

fn parse_kind(token: &str) -> Result<NodeKind, PersistError> {
    Ok(match token {
        "enum" => NodeKind::Enum,
        "fascicle" => NodeKind::Fascicle,
        "sumy" => NodeKind::Sumy,
        "gap" => NodeKind::Gap,
        "topgap" => NodeKind::TopGap,
        "compare" => NodeKind::Compare,
        other => return Err(malformed(format!("unknown node kind {other:?}"))),
    })
}

fn dtype_token(d: DataType) -> &'static str {
    match d {
        DataType::Int => "INT",
        DataType::Float => "FLOAT",
        DataType::Text => "TEXT",
        DataType::Bool => "BOOL",
    }
}

fn parse_dtype(token: &str) -> Result<DataType, PersistError> {
    Ok(match token {
        "INT" => DataType::Int,
        "FLOAT" => DataType::Float,
        "TEXT" => DataType::Text,
        "BOOL" => DataType::Bool,
        other => return Err(malformed(format!("unknown type {other:?}"))),
    })
}

/// Percent-encode a table name into a safe file stem.
fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
            out.push(c);
        } else {
            out.push('%');
            out.push_str(&format!("{:04x}", c as u32));
        }
    }
    out
}

fn decode_name(stem: &str) -> Result<String, PersistError> {
    let mut out = String::new();
    let mut chars = stem.chars();
    while let Some(c) = chars.next() {
        if c == '%' {
            let hex: String = chars.by_ref().take(4).collect();
            let code = u32::from_str_radix(&hex, 16)
                .map_err(|e| malformed(format!("bad escape {hex:?}: {e}")))?;
            out.push(char::from_u32(code).ok_or_else(|| malformed("bad escape code"))?);
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Save the session's materialized tables and lineage into `dir`.
pub fn save_results(session: &GeaSession, dir: &Path) -> Result<(), PersistError> {
    save_database_and_lineage(session.database(), session.lineage(), dir)
}

/// Save an explicit database + lineage pair.
pub fn save_database_and_lineage(
    db: &Database,
    lineage: &Lineage,
    dir: &Path,
) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    // Tables: CSV + schema sidecar.
    for name in db.names() {
        let table = db.get(name).expect("listed name exists");
        let stem = encode_name(name);
        let mut schema_file = fs::File::create(dir.join(format!("{stem}.schema")))?;
        for col in table.schema().columns() {
            writeln!(schema_file, "{}\t{}", col.name, dtype_token(col.dtype))?;
        }
        let mut csv_file = fs::File::create(dir.join(format!("{stem}.csv")))?;
        export_csv(table, &mut csv_file)?;
    }
    // Lineage.
    let mut out = fs::File::create(dir.join("lineage.txt"))?;
    write_lineage(lineage, &mut out)?;
    Ok(())
}

/// Serialize the lineage DAG in the tagged-record text format shared by
/// `lineage.txt` and the binary session snapshot.
fn write_lineage(lineage: &Lineage, out: &mut impl Write) -> std::io::Result<()> {
    for node in lineage.iter() {
        writeln!(out, "node\t{}", node.id.0)?;
        writeln!(out, "name\t{}", encode_name(&node.name))?;
        writeln!(out, "kind\t{}", kind_token(node.kind))?;
        writeln!(out, "op\t{}", node.operation)?;
        for (k, v) in &node.params {
            writeln!(out, "param\t{k}\t{v}")?;
        }
        if !node.comment.is_empty() {
            writeln!(out, "comment\t{}", node.comment.replace('\n', " "))?;
        }
        let parents: Vec<String> = node.parents.iter().map(|p| p.0.to_string()).collect();
        writeln!(out, "parents\t{}", parents.join(","))?;
        writeln!(out, "materialized\t{}", node.materialized as u8)?;
        writeln!(out, "end")?;
    }
    Ok(())
}

/// A reloaded session snapshot: the relational tables and the operation
/// history. (The in-memory analysis structures are regenerable from these
/// via the lineage metadata, which is the thesis's own recovery story for
/// contents-only deletes.)
#[derive(Debug)]
pub struct LoadedResults {
    /// The reloaded tables.
    pub database: Database,
    /// The reloaded operation history.
    pub lineage: Lineage,
}

/// Load a directory written by [`save_results`].
pub fn load_results(dir: &Path) -> Result<LoadedResults, PersistError> {
    let mut database = Database::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("schema") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| malformed("non-utf8 file name"))?;
        let name = decode_name(stem)?;
        let schema_text = fs::read_to_string(&path)?;
        let mut cols = Vec::new();
        for line in schema_text.lines() {
            let mut parts = line.split('\t');
            let col = parts.next().ok_or_else(|| malformed("empty schema line"))?;
            let dtype = parse_dtype(
                parts
                    .next()
                    .ok_or_else(|| malformed(format!("schema line {line:?} missing type")))?,
            )?;
            cols.push((col.to_string(), dtype));
        }
        let pairs: Vec<(&str, DataType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Schema::from_pairs(&pairs)
            .map_err(|e| malformed(format!("bad schema for {name:?}: {e}")))?;
        let csv_path = dir.join(format!("{stem}.csv"));
        let mut file = fs::File::open(&csv_path)?;
        let table = import_csv(schema, &mut file)
            .map_err(|e| malformed(format!("bad csv for {name:?}: {e}")))?;
        database.create_or_replace(&name, table);
    }

    // Lineage: replay records in id order so parent references resolve.
    let lineage_path = dir.join("lineage.txt");
    let lineage = if lineage_path.exists() {
        parse_lineage(&fs::read_to_string(&lineage_path)?)?
    } else {
        Lineage::new()
    };
    Ok(LoadedResults { database, lineage })
}

/// Parse the tagged-record lineage text back into a replayed [`Lineage`].
fn parse_lineage(text: &str) -> Result<Lineage, PersistError> {
    let mut lineage = Lineage::new();
    {
        let mut pending: Vec<ParsedNode> = Vec::new();
        let mut current: Option<ParsedNode> = None;
        for line in text.lines() {
            let mut parts = line.splitn(3, '\t');
            let tag = parts.next().unwrap_or("");
            match tag {
                "node" => {
                    let id: u32 = parts
                        .next()
                        .ok_or_else(|| malformed("node line missing id"))?
                        .parse()
                        .map_err(|e| malformed(format!("bad node id: {e}")))?;
                    current = Some(ParsedNode {
                        id,
                        ..ParsedNode::default()
                    });
                }
                "name" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("name outside node"))?;
                    cur.name = decode_name(parts.next().unwrap_or(""))?;
                }
                "kind" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("kind outside node"))?;
                    cur.kind = Some(parse_kind(parts.next().unwrap_or(""))?);
                }
                "op" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("op outside node"))?;
                    cur.operation = parts.next().unwrap_or("").to_string();
                }
                "param" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("param outside node"))?;
                    let k = parts.next().unwrap_or("").to_string();
                    let v = parts.next().unwrap_or("").to_string();
                    cur.params.push((k, v));
                }
                "comment" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("comment outside node"))?;
                    cur.comment = parts.next().unwrap_or("").to_string();
                }
                "parents" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("parents outside node"))?;
                    let list = parts.next().unwrap_or("");
                    if !list.is_empty() {
                        for p in list.split(',') {
                            cur.parents.push(
                                p.parse()
                                    .map_err(|e| malformed(format!("bad parent id: {e}")))?,
                            );
                        }
                    }
                }
                "materialized" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("materialized outside node"))?;
                    cur.materialized = parts.next() == Some("1");
                }
                "end" => {
                    pending.push(
                        current
                            .take()
                            .ok_or_else(|| malformed("end outside node"))?,
                    );
                }
                "" => {}
                other => return Err(malformed(format!("unknown record tag {other:?}"))),
            }
        }
        pending.sort_by_key(|n| n.id);
        // Replay; saved ids are dense-by-construction in a fresh tracker,
        // but deletes can leave gaps — map old ids to new.
        let mut id_map: std::collections::BTreeMap<u32, NodeId> = Default::default();
        for node in pending {
            let kind = node.kind.ok_or_else(|| malformed("node missing kind"))?;
            let parents: Vec<NodeId> = node
                .parents
                .iter()
                .filter_map(|p| id_map.get(p).copied())
                .collect();
            let new_id = lineage
                .record(&node.name, kind, &node.operation, node.params, &parents)
                .map_err(|e| malformed(format!("replay failed: {e}")))?;
            if !node.comment.is_empty() {
                let _ = lineage.set_comment(new_id, &node.comment);
            }
            if !node.materialized {
                let _ = lineage.delete_contents(new_id);
            }
            id_map.insert(node.id, new_id);
        }
    }
    Ok(lineage)
}

#[derive(Debug, Default)]
struct ParsedNode {
    id: u32,
    name: String,
    kind: Option<NodeKind>,
    operation: String,
    params: Vec<(String, String)>,
    comment: String,
    parents: Vec<u32>,
    materialized: bool,
}

/// Render one reloaded node the way Figure 4.18's detail panel does.
pub fn describe_node(node: &LineageNode) -> String {
    let mut out = format!(
        "Operation Name: {}\nOperation Type: {}\n",
        node.name, node.operation
    );
    for (k, v) in &node.params {
        out.push_str(&format!("{k}: {v}\n"));
    }
    if !node.comment.is_empty() {
        out.push_str(&format!("User Comment: {}\n", node.comment));
    }
    out
}

// ----- fidelity-complete binary snapshots (`session.gea`) -----------------

/// File name of the binary snapshot inside a saved-session directory.
pub const SNAPSHOT_FILE: &str = "session.gea";

const SNAPSHOT_MAGIC: &[u8; 4] = b"GEAS";
/// Snapshot format history:
///
/// * **v1** — raw body; fascicle records carry no mining provenance.
/// * **v2** — body is LZSS-compressed ([`lz_compress`]); fascicle records
///   append the mining backend name and its resolved parameters.
///
/// Writers always emit the newest version; the loader accepts both, so
/// pre-backend snapshots keep restoring (their fascicles report backend
/// `"fascicles"` with no parameters).
const SNAPSHOT_VERSION: u32 = 2;
/// Oldest snapshot version the loader still accepts.
const SNAPSHOT_MIN_VERSION: u32 = 1;
/// Strings in the snapshot are capped at 1 MiB, matching the corpus binary
/// format's own cap.
const MAX_STR: usize = 1 << 20;

/// FNV-1a 64-bit over the snapshot body — cheap, dependency-free, and more
/// than enough to catch truncation and bit rot (this is an integrity
/// check, not an authenticity one).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ----- LZSS body compression (snapshot v2) --------------------------------
//
// Dependency-free and fully deterministic: the encoder keeps a single-slot
// table of the most recent position of every 3-byte prefix, so identical
// input always yields identical output (a requirement — the snapshot
// fingerprint is computed over the *stored* bytes, and re-spilling an
// unchanged session must reproduce the same fingerprint).
//
// Stream layout: `u64 LE raw_len`, then token groups. Each group is one
// flag byte followed by up to eight tokens, LSB first; a clear bit is a
// literal byte, a set bit is a match of `u16 LE offset` (distance back,
// 1..=65535) and `u8 len-3` (match length 3..=258).

const LZ_MIN_MATCH: usize = 3;
const LZ_MAX_MATCH: usize = 258;
const LZ_MAX_OFFSET: usize = 65535;
/// A 3-byte match token can emit at most 258 bytes, so even ignoring flag
/// bytes a stream cannot expand more than 86×. A claimed raw length beyond
/// this bound is corruption, rejected before any allocation.
const LZ_MAX_EXPANSION: usize = 128;

fn lz_key(buf: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([buf[i], buf[i + 1], buf[i + 2], 0])
}

fn lz_compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 16);
    put_u64(&mut out, raw.len() as u64);
    let mut table: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut i = 0;
    while i < raw.len() {
        let flag_pos = out.len();
        out.push(0);
        let mut flags = 0u8;
        let mut bit = 0;
        while bit < 8 && i < raw.len() {
            let mut emitted = false;
            if i + LZ_MIN_MATCH <= raw.len() {
                let key = lz_key(raw, i);
                if let Some(&prev) = table.get(&key) {
                    let offset = i - prev;
                    if offset <= LZ_MAX_OFFSET {
                        let limit = (raw.len() - i).min(LZ_MAX_MATCH);
                        let mut len = 0;
                        while len < limit && raw[prev + len] == raw[i + len] {
                            len += 1;
                        }
                        if len >= LZ_MIN_MATCH {
                            flags |= 1 << bit;
                            out.extend_from_slice(&(offset as u16).to_le_bytes());
                            out.push((len - LZ_MIN_MATCH) as u8);
                            // Refresh the table for every covered position
                            // so long runs keep finding nearby matches.
                            let stop = (i + len).min(raw.len().saturating_sub(LZ_MIN_MATCH - 1));
                            for j in i..stop {
                                table.insert(lz_key(raw, j), j);
                            }
                            i += len;
                            emitted = true;
                        }
                    }
                }
                if !emitted {
                    table.insert(key, i);
                }
            }
            if !emitted {
                out.push(raw[i]);
                i += 1;
            }
            bit += 1;
        }
        out[flag_pos] = flags;
    }
    out
}

/// Bounds-checked LZSS inflate: every malformed stream — truncated tokens,
/// zero or out-of-window offsets, an implausible claimed length, trailing
/// garbage — yields [`PersistError::Malformed`], never a panic and never an
/// attacker-controlled allocation.
fn lz_inflate(data: &[u8]) -> Result<Vec<u8>, PersistError> {
    let mut cur = Cur::new(data);
    let raw_len = cur.u64("compressed body length")?;
    let raw_len = usize::try_from(raw_len)
        .map_err(|_| malformed(format!("compressed body length {raw_len} implausible")))?;
    match cur.remaining().checked_mul(LZ_MAX_EXPANSION) {
        Some(cap) if raw_len <= cap => {}
        _ => {
            return Err(malformed(format!(
                "compressed body claims {raw_len} bytes from {} stored",
                cur.remaining()
            )))
        }
    }
    let mut out = Vec::with_capacity(raw_len);
    while out.len() < raw_len {
        let flags = cur.u8("lz flag byte")?;
        let mut bit = 0;
        while bit < 8 && out.len() < raw_len {
            if flags & (1 << bit) != 0 {
                let offset = u16::from_le_bytes(cur.take(2, "lz match offset")?.try_into().unwrap())
                    as usize;
                let len = cur.u8("lz match length")? as usize + LZ_MIN_MATCH;
                if offset == 0 || offset > out.len() {
                    return Err(malformed(format!(
                        "lz match offset {offset} outside {}-byte window",
                        out.len()
                    )));
                }
                if out.len() + len > raw_len {
                    return Err(malformed("lz match overruns declared body length"));
                }
                // Byte-at-a-time: matches may overlap their own output.
                let start = out.len() - offset;
                for j in 0..len {
                    let b = out[start + j];
                    out.push(b);
                }
            } else {
                out.push(cur.u8("lz literal")?);
            }
            bit += 1;
        }
    }
    if !cur.done() {
        return Err(malformed(format!(
            "{} trailing bytes after compressed body",
            cur.remaining()
        )));
    }
    Ok(out)
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// A bounds-checked little-endian reader over the snapshot body. Every
/// decode failure surfaces as [`PersistError::Malformed`]; a corrupt file
/// can never panic or over-allocate (element counts are validated against
/// the bytes actually remaining before any allocation).
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(malformed(format!(
                "truncated snapshot: {what} needs {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reject an element count that could not possibly fit in the bytes
    /// remaining (each element occupies at least `min_size` bytes).
    fn ensure_elems(&self, n: usize, min_size: usize, what: &str) -> Result<(), PersistError> {
        match n.checked_mul(min_size) {
            Some(total) if total <= self.remaining() => Ok(()),
            _ => Err(malformed(format!(
                "implausible {what} count {n} for {} remaining bytes",
                self.remaining()
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str_(&mut self, what: &str) -> Result<String, PersistError> {
        let len = self.u32(what)? as usize;
        if len > MAX_STR {
            return Err(malformed(format!("{what} length {len} implausible")));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| malformed(format!("non-utf8 {what}: {e}")))
    }

    fn blob(&mut self, what: &str) -> Result<&'a [u8], PersistError> {
        let len = self.u64(what)?;
        let len = usize::try_from(len)
            .map_err(|_| malformed(format!("{what} length {len} implausible")))?;
        self.take(len, what)
    }
}

fn state_code(s: NeoplasticState) -> u8 {
    match s {
        NeoplasticState::Cancerous => 0,
        NeoplasticState::Normal => 1,
    }
}

fn parse_state_code(c: u8) -> Result<NeoplasticState, PersistError> {
    Ok(match c {
        0 => NeoplasticState::Cancerous,
        1 => NeoplasticState::Normal,
        other => return Err(malformed(format!("unknown neoplastic state code {other}"))),
    })
}

fn source_code(s: TissueSource) -> u8 {
    match s {
        TissueSource::BulkTissue => 0,
        TissueSource::CellLine => 1,
    }
}

fn parse_source_code(c: u8) -> Result<TissueSource, PersistError> {
    Ok(match c {
        0 => TissueSource::BulkTissue,
        1 => TissueSource::CellLine,
        other => return Err(malformed(format!("unknown tissue source code {other}"))),
    })
}

fn property_code(p: LibraryProperty) -> u8 {
    match p {
        LibraryProperty::Cancer => 0,
        LibraryProperty::Normal => 1,
        LibraryProperty::BulkTissue => 2,
        LibraryProperty::CellLine => 3,
    }
}

fn parse_property_code(c: u8) -> Result<LibraryProperty, PersistError> {
    Ok(match c {
        0 => LibraryProperty::Cancer,
        1 => LibraryProperty::Normal,
        2 => LibraryProperty::BulkTissue,
        3 => LibraryProperty::CellLine,
        other => return Err(malformed(format!("unknown library property code {other}"))),
    })
}

fn put_library_meta(out: &mut Vec<u8>, meta: &LibraryMeta) {
    put_str(out, &meta.name);
    put_str(out, meta.tissue.name());
    put_u8(out, state_code(meta.state));
    put_u8(out, source_code(meta.source));
}

fn read_library_meta(cur: &mut Cur) -> Result<LibraryMeta, PersistError> {
    Ok(LibraryMeta {
        name: cur.str_("library name")?,
        tissue: TissueType::parse(&cur.str_("library tissue")?),
        state: parse_state_code(cur.u8("library state")?)?,
        source: parse_source_code(cur.u8("library source")?)?,
    })
}

fn read_tag(cur: &mut Cur, what: &str) -> Result<Tag, PersistError> {
    let code = cur.u32(what)?;
    Tag::from_code(code).ok_or_else(|| malformed(format!("{what}: tag code {code} out of range")))
}

fn put_enum_table(out: &mut Vec<u8>, table: &EnumTable) {
    put_str(out, &table.name);
    let m = &table.matrix;
    put_u32(out, m.n_tags() as u32);
    put_u32(out, m.n_libraries() as u32);
    for (_, tag) in m.universe().iter() {
        put_u32(out, tag.code());
    }
    for meta in m.libraries() {
        put_library_meta(out, meta);
    }
    for tid in m.tag_ids() {
        for &v in m.tag_row(tid) {
            put_f64(out, v);
        }
    }
}

fn read_enum_table(cur: &mut Cur) -> Result<EnumTable, PersistError> {
    let name = cur.str_("enum table name")?;
    let n_tags = cur.u32("enum tag count")? as usize;
    let n_libs = cur.u32("enum library count")? as usize;
    cur.ensure_elems(n_tags, 4, "enum tag")?;
    let mut tags = Vec::with_capacity(n_tags);
    for _ in 0..n_tags {
        let tag = read_tag(cur, "enum tag")?;
        // Universe order is sorted and duplicate-free by construction;
        // enforcing it here means `TagUniverse::from_tags` below assigns
        // the same ids the rows were written under.
        if let Some(&prev) = tags.last() {
            if tag <= prev {
                return Err(malformed("enum tags out of order"));
            }
        }
        tags.push(tag);
    }
    cur.ensure_elems(n_libs, 6, "enum library")?;
    let mut libraries = Vec::with_capacity(n_libs);
    for _ in 0..n_libs {
        libraries.push(read_library_meta(cur)?);
    }
    cur.ensure_elems(n_tags.saturating_mul(n_libs), 8, "enum value")?;
    let mut rows = Vec::with_capacity(n_tags);
    for _ in 0..n_tags {
        let mut row = Vec::with_capacity(n_libs);
        for _ in 0..n_libs {
            row.push(cur.f64("enum value")?);
        }
        rows.push(row);
    }
    let universe = TagUniverse::from_tags(tags);
    Ok(EnumTable::new(
        &name,
        ExpressionMatrix::from_rows(universe, libraries, rows),
    ))
}

fn put_sumy_table(out: &mut Vec<u8>, table: &SumyTable) {
    put_str(out, &table.name);
    put_u32(out, table.rows().len() as u32);
    for row in table.rows() {
        put_u32(out, row.tag.code());
        put_u32(out, row.tag_no);
        put_f64(out, row.range.lo());
        put_f64(out, row.range.hi());
        put_f64(out, row.average);
        put_f64(out, row.std_dev);
        put_u32(out, row.extras.len() as u32);
        for (k, &v) in &row.extras {
            put_str(out, k);
            put_f64(out, v);
        }
    }
}

fn read_sumy_table(cur: &mut Cur) -> Result<SumyTable, PersistError> {
    let name = cur.str_("sumy table name")?;
    let n = cur.u32("sumy row count")? as usize;
    cur.ensure_elems(n, 44, "sumy row")?;
    let mut rows: Vec<SumyRow> = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = read_tag(cur, "sumy tag")?;
        // Rows are written in tag order; rejecting disorder here also
        // rejects duplicates, which `SumyTable::new` would panic on.
        if let Some(prev) = rows.last() {
            if tag <= prev.tag {
                return Err(malformed("sumy rows out of order"));
            }
        }
        let tag_no = cur.u32("sumy tag number")?;
        let lo = cur.f64("sumy range lo")?;
        let hi = cur.f64("sumy range hi")?;
        let range = Interval::new(lo, hi).map_err(|e| malformed(format!("bad sumy range: {e}")))?;
        let average = cur.f64("sumy average")?;
        let std_dev = cur.f64("sumy std dev")?;
        let n_extras = cur.u32("sumy extras count")? as usize;
        cur.ensure_elems(n_extras, 12, "sumy extra")?;
        let mut extras = std::collections::BTreeMap::new();
        for _ in 0..n_extras {
            let k = cur.str_("sumy extra name")?;
            let v = cur.f64("sumy extra value")?;
            extras.insert(k, v);
        }
        rows.push(SumyRow {
            tag,
            tag_no,
            range,
            average,
            std_dev,
            extras,
        });
    }
    Ok(SumyTable::new(&name, rows))
}

fn put_gap_table(out: &mut Vec<u8>, table: &GapTable) {
    put_str(out, &table.name);
    put_u32(out, table.columns.len() as u32);
    for col in &table.columns {
        put_str(out, col);
    }
    put_u32(out, table.rows().len() as u32);
    for row in table.rows() {
        put_u32(out, row.tag.code());
        put_u32(out, row.tag_no);
        for gap in &row.gaps {
            match gap {
                Some(v) => {
                    put_u8(out, 1);
                    put_f64(out, *v);
                }
                None => put_u8(out, 0),
            }
        }
    }
}

fn read_gap_table(cur: &mut Cur) -> Result<GapTable, PersistError> {
    let name = cur.str_("gap table name")?;
    let n_cols = cur.u32("gap column count")? as usize;
    if n_cols == 0 {
        return Err(malformed("gap table without columns"));
    }
    cur.ensure_elems(n_cols, 4, "gap column")?;
    let mut columns = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        columns.push(cur.str_("gap column name")?);
    }
    let n = cur.u32("gap row count")? as usize;
    cur.ensure_elems(n, 8 + n_cols, "gap row")?;
    let mut rows: Vec<GapRow> = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = read_tag(cur, "gap tag")?;
        if let Some(prev) = rows.last() {
            if tag <= prev.tag {
                return Err(malformed("gap rows out of order"));
            }
        }
        let tag_no = cur.u32("gap tag number")?;
        let mut gaps = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            gaps.push(match cur.u8("gap presence flag")? {
                0 => None,
                1 => Some(cur.f64("gap value")?),
                other => return Err(malformed(format!("bad gap presence flag {other}"))),
            });
        }
        rows.push(GapRow { tag, tag_no, gaps });
    }
    Ok(GapTable::new(&name, columns, rows))
}

fn put_fascicle(out: &mut Vec<u8>, rec: &FascicleRecord, version: u32) {
    put_str(out, &rec.name);
    put_str(out, &rec.dataset);
    put_u32(out, rec.members.len() as u32);
    for m in &rec.members {
        put_str(out, m);
    }
    put_u32(out, rec.compact_tags.len() as u32);
    for t in &rec.compact_tags {
        put_u32(out, t.code());
    }
    put_str(out, &rec.sumy_name);
    put_u32(out, rec.purity.len() as u32);
    for &p in &rec.purity {
        put_u8(out, property_code(p));
    }
    if version >= 2 {
        put_str(out, &rec.backend);
        put_u32(out, rec.params.len() as u32);
        for (k, v) in &rec.params {
            put_str(out, k);
            put_str(out, v);
        }
    }
}

fn read_fascicle(cur: &mut Cur, version: u32) -> Result<FascicleRecord, PersistError> {
    let name = cur.str_("fascicle name")?;
    let dataset = cur.str_("fascicle dataset")?;
    let n_members = cur.u32("fascicle member count")? as usize;
    cur.ensure_elems(n_members, 4, "fascicle member")?;
    let mut members = Vec::with_capacity(n_members);
    for _ in 0..n_members {
        members.push(cur.str_("fascicle member")?);
    }
    let n_tags = cur.u32("fascicle tag count")? as usize;
    cur.ensure_elems(n_tags, 4, "fascicle tag")?;
    let mut compact_tags = Vec::with_capacity(n_tags);
    for _ in 0..n_tags {
        compact_tags.push(read_tag(cur, "fascicle tag")?);
    }
    let sumy_name = cur.str_("fascicle sumy name")?;
    let n_props = cur.u32("fascicle purity count")? as usize;
    cur.ensure_elems(n_props, 1, "fascicle purity")?;
    let mut purity = Vec::with_capacity(n_props);
    for _ in 0..n_props {
        purity.push(parse_property_code(cur.u8("fascicle purity")?)?);
    }
    // v1 snapshots predate pluggable backends: everything they mined came
    // from the original Fascicles path.
    let (backend, params) = if version >= 2 {
        let backend = cur.str_("fascicle backend")?;
        let n_params = cur.u32("fascicle param count")? as usize;
        cur.ensure_elems(n_params, 8, "fascicle param")?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            let k = cur.str_("fascicle param key")?;
            let v = cur.str_("fascicle param value")?;
            params.push((k, v));
        }
        (backend, params)
    } else {
        ("fascicles".to_string(), Vec::new())
    };
    Ok(FascicleRecord {
        name,
        dataset,
        members,
        compact_tags,
        sumy_name,
        purity,
        backend,
        params,
    })
}

fn put_report(out: &mut Vec<u8>, report: &CleaningReport) {
    put_u64(out, report.raw_union_tags as u64);
    put_u64(out, report.kept_tags as u64);
    put_u32(out, report.min_tolerance);
    match report.scale_to {
        Some(s) => {
            put_u8(out, 1);
            put_f64(out, s);
        }
        None => put_u8(out, 0),
    }
    put_u32(out, report.removed_fraction_per_library.len() as u32);
    for &f in &report.removed_fraction_per_library {
        put_f64(out, f);
    }
    put_f64(out, report.freq1_union_fraction);
}

fn read_report(cur: &mut Cur) -> Result<CleaningReport, PersistError> {
    let raw_union_tags = usize::try_from(cur.u64("report raw tags")?)
        .map_err(|_| malformed("report raw tag count implausible"))?;
    let kept_tags = usize::try_from(cur.u64("report kept tags")?)
        .map_err(|_| malformed("report kept tag count implausible"))?;
    let min_tolerance = cur.u32("report min tolerance")?;
    let scale_to = match cur.u8("report scale flag")? {
        0 => None,
        1 => Some(cur.f64("report scale")?),
        other => return Err(malformed(format!("bad report scale flag {other}"))),
    };
    let n = cur.u32("report fraction count")? as usize;
    cur.ensure_elems(n, 8, "report fraction")?;
    let mut removed_fraction_per_library = Vec::with_capacity(n);
    for _ in 0..n {
        removed_fraction_per_library.push(cur.f64("report fraction")?);
    }
    let freq1_union_fraction = cur.f64("report freq1 fraction")?;
    Ok(CleaningReport {
        raw_union_tags,
        kept_tags,
        removed_fraction_per_library,
        freq1_union_fraction,
        min_tolerance,
        scale_to,
    })
}

fn encode_session(session: &GeaSession, version: u32) -> Result<Vec<u8>, PersistError> {
    let mut out = Vec::new();
    put_report(&mut out, session.cleaning_report());
    let mut corpus_blob = Vec::new();
    write_corpus_binary(session.corpus(), &mut corpus_blob)?;
    put_blob(&mut out, &corpus_blob);
    put_enum_table(&mut out, session.base());
    put_u32(&mut out, session.enum_tables().len() as u32);
    for table in session.enum_tables().values() {
        put_enum_table(&mut out, table);
    }
    put_u32(&mut out, session.sumy_tables().len() as u32);
    for table in session.sumy_tables().values() {
        put_sumy_table(&mut out, table);
    }
    put_u32(&mut out, session.gap_tables().len() as u32);
    for table in session.gap_tables().values() {
        put_gap_table(&mut out, table);
    }
    put_u32(&mut out, session.fascicle_records().len() as u32);
    for rec in session.fascicle_records().values() {
        put_fascicle(&mut out, rec, version);
    }
    let db = session.database();
    put_u32(&mut out, db.len() as u32);
    for name in db.names() {
        let table = db.get(name).expect("listed name exists");
        put_str(&mut out, name);
        let cols = table.schema().columns();
        put_u32(&mut out, cols.len() as u32);
        for col in cols {
            put_str(&mut out, &col.name);
            put_str(&mut out, dtype_token(col.dtype));
        }
        let mut csv = Vec::new();
        export_csv(table, &mut csv)?;
        put_blob(&mut out, &csv);
    }
    let mut lineage_text = Vec::new();
    write_lineage(session.lineage(), &mut lineage_text)?;
    put_blob(&mut out, &lineage_text);
    Ok(out)
}

/// Fingerprint of a session's *source data*: the raw corpus plus the
/// cleaned base matrix, encoded with the snapshot codec and FNV-1a-hashed.
/// Two sessions opened from the same corpus with the same cleaning
/// configuration share this value no matter how their derived tables later
/// diverge — the key the server's cross-session response cache shares
/// pure-read replies under.
pub fn corpus_fingerprint(session: &GeaSession) -> Result<u64, PersistError> {
    let mut out = Vec::new();
    let mut corpus_blob = Vec::new();
    write_corpus_binary(session.corpus(), &mut corpus_blob)?;
    put_blob(&mut out, &corpus_blob);
    put_enum_table(&mut out, session.base());
    Ok(fnv1a(&out))
}

fn decode_session(body: &[u8], version: u32) -> Result<SessionSnapshot, PersistError> {
    let mut cur = Cur::new(body);
    let report = read_report(&mut cur)?;
    let corpus_blob = cur.blob("corpus blob")?;
    let corpus = read_corpus_binary(&mut &corpus_blob[..])
        .map_err(|e| malformed(format!("bad embedded corpus: {e}")))?;
    let base = read_enum_table(&mut cur)?;
    let n_enums = cur.u32("enum map count")? as usize;
    cur.ensure_elems(n_enums, 12, "enum map entry")?;
    let mut enums = std::collections::BTreeMap::new();
    for _ in 0..n_enums {
        let table = read_enum_table(&mut cur)?;
        enums.insert(table.name.clone(), table);
    }
    let n_sumys = cur.u32("sumy map count")? as usize;
    cur.ensure_elems(n_sumys, 8, "sumy map entry")?;
    let mut sumys = std::collections::BTreeMap::new();
    for _ in 0..n_sumys {
        let table = read_sumy_table(&mut cur)?;
        sumys.insert(table.name.clone(), table);
    }
    let n_gaps = cur.u32("gap map count")? as usize;
    cur.ensure_elems(n_gaps, 12, "gap map entry")?;
    let mut gaps = std::collections::BTreeMap::new();
    for _ in 0..n_gaps {
        let table = read_gap_table(&mut cur)?;
        gaps.insert(table.name.clone(), table);
    }
    let n_fascicles = cur.u32("fascicle map count")? as usize;
    cur.ensure_elems(n_fascicles, 16, "fascicle map entry")?;
    let mut fascicles = std::collections::BTreeMap::new();
    for _ in 0..n_fascicles {
        let rec = read_fascicle(&mut cur, version)?;
        fascicles.insert(rec.name.clone(), rec);
    }
    let n_tables = cur.u32("db table count")? as usize;
    cur.ensure_elems(n_tables, 16, "db table")?;
    let mut db = Database::new();
    for _ in 0..n_tables {
        let name = cur.str_("db table name")?;
        let n_cols = cur.u32("db column count")? as usize;
        cur.ensure_elems(n_cols, 8, "db column")?;
        let mut cols = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let col = cur.str_("db column name")?;
            let dtype = parse_dtype(&cur.str_("db column type")?)?;
            cols.push((col, dtype));
        }
        let pairs: Vec<(&str, DataType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Schema::from_pairs(&pairs)
            .map_err(|e| malformed(format!("bad schema for {name:?}: {e}")))?;
        let csv = cur.blob("db csv blob")?;
        let table = import_csv(schema, &mut &csv[..])
            .map_err(|e| malformed(format!("bad csv for {name:?}: {e}")))?;
        db.create_or_replace(&name, table);
    }
    let lineage_text = cur.blob("lineage blob")?;
    let lineage_text = std::str::from_utf8(lineage_text)
        .map_err(|e| malformed(format!("non-utf8 lineage: {e}")))?;
    let lineage = parse_lineage(lineage_text)?;
    if !cur.done() {
        return Err(malformed(format!(
            "{} trailing bytes after snapshot body",
            cur.remaining()
        )));
    }
    Ok(SessionSnapshot {
        corpus,
        base,
        report,
        db,
        lineage,
        enums,
        sumys,
        gaps,
        fascicles,
    })
}

/// Serialize a session into the exact byte stream a `session.gea` snapshot
/// file holds (magic, version, fingerprint header, compressed body), plus
/// the body fingerprint. This is the wire form of a session: front-ends
/// that migrate sessions between processes (the shard router's rebalance
/// path) ship these bytes and install them with
/// [`session_from_snapshot_bytes`], reusing the spill format end to end.
pub fn snapshot_to_bytes(session: &GeaSession) -> Result<(Vec<u8>, u64), PersistError> {
    let raw = encode_session(session, SNAPSHOT_VERSION)?;
    let body = lz_compress(&raw);
    // The fingerprint covers the *stored* (compressed) bytes, so integrity
    // is checked before any decompression of untrusted input — and it only
    // holds because `lz_compress` is deterministic.
    let fingerprint = fnv1a(&body);
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, fingerprint);
    out.extend_from_slice(&body);
    Ok((out, fingerprint))
}

/// Decode a session from snapshot bytes ([`snapshot_to_bytes`] output or a
/// `session.gea` file read whole). Verification matches the file path
/// exactly: magic, supported version, stored-vs-computed fingerprint, and
/// — when `expected` is given — the fingerprint the sender advertised, so
/// a truncated or substituted transfer is detected before adoption.
pub fn session_from_snapshot_bytes(
    bytes: &[u8],
    expected: Option<u64>,
) -> Result<GeaSession, PersistError> {
    let mut cur = Cur::new(bytes);
    let magic = cur.take(4, "snapshot magic")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(malformed("bad magic; not a GEA session snapshot"));
    }
    let version = cur.u32("snapshot version")?;
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(malformed(format!("unsupported snapshot version {version}")));
    }
    let stored = cur.u64("snapshot fingerprint")?;
    let body = &bytes[cur.pos..];
    if fnv1a(body) != stored {
        return Err(malformed("fingerprint mismatch; snapshot is corrupt"));
    }
    if let Some(want) = expected {
        if want != stored {
            return Err(malformed(format!(
                "snapshot fingerprint {stored:#018x} does not match expected {want:#018x}"
            )));
        }
    }
    // v1 stored the body raw; v2 compresses it.
    let snapshot = if version >= 2 {
        decode_session(&lz_inflate(body)?, version)?
    } else {
        decode_session(body, version)?
    };
    Ok(GeaSession::from_snapshot(snapshot))
}

fn write_snapshot_file(session: &GeaSession, path: &Path) -> Result<u64, PersistError> {
    let (out, fingerprint) = snapshot_to_bytes(session)?;
    fs::write(path, &out)?;
    Ok(fingerprint)
}

/// Save the *complete* session state into `dir`: the browsable CSV +
/// lineage layer of [`save_results`], plus the fidelity-complete binary
/// snapshot ([`SNAPSHOT_FILE`]) that [`load_session`] restores from.
/// Returns the snapshot's fingerprint.
pub fn save_session(session: &GeaSession, dir: &Path) -> Result<u64, PersistError> {
    save_results(session, dir)?;
    write_snapshot_file(session, &dir.join(SNAPSHOT_FILE))
}

fn load_session_checked(dir: &Path, expected: Option<u64>) -> Result<GeaSession, PersistError> {
    let bytes = fs::read(dir.join(SNAPSHOT_FILE))?;
    session_from_snapshot_bytes(&bytes, expected)
}

/// Restore a full [`GeaSession`] from a directory written by
/// [`save_session`] (or [`spill_session`]). Corruption of any kind —
/// truncation, bit flips, a foreign file — yields
/// [`PersistError::Malformed`], never a panic.
pub fn load_session(dir: &Path) -> Result<GeaSession, PersistError> {
    load_session_checked(dir, None)
}

/// Like [`load_session`], but additionally require the snapshot's
/// fingerprint to equal `expected` — the server's restore path passes the
/// fingerprint recorded at spill time, so a swapped or re-written file is
/// detected even when internally consistent.
pub fn load_session_verified(dir: &Path, expected: u64) -> Result<GeaSession, PersistError> {
    load_session_checked(dir, Some(expected))
}

/// Where a spilled session lives on disk, and the fingerprint to demand
/// back at restore time.
#[derive(Debug, Clone)]
pub struct SpillFile {
    /// Directory holding the session's [`SNAPSHOT_FILE`].
    pub path: PathBuf,
    /// FNV-1a fingerprint of the snapshot body.
    pub fingerprint: u64,
}

/// Spill a session under `name` into `spill_dir` for later transparent
/// restore. Only the binary snapshot is written (the browsable CSV layer
/// is skipped — spills are a hot path). The write goes to a `.tmp`
/// directory first and is renamed into place, so a crash mid-spill leaves
/// no half-written restore source behind.
pub fn spill_session(
    session: &GeaSession,
    spill_dir: &Path,
    name: &str,
) -> Result<SpillFile, PersistError> {
    fs::create_dir_all(spill_dir)?;
    let stem = encode_name(name);
    let final_dir = spill_dir.join(&stem);
    let tmp_dir = spill_dir.join(format!("{stem}.tmp"));
    let _ = fs::remove_dir_all(&tmp_dir);
    fs::create_dir_all(&tmp_dir)?;
    let fingerprint = write_snapshot_file(session, &tmp_dir.join(SNAPSHOT_FILE))?;
    let _ = fs::remove_dir_all(&final_dir);
    fs::rename(&tmp_dir, &final_dir)?;
    Ok(SpillFile {
        path: final_dir,
        fingerprint,
    })
}

/// Delete a spill directory (after a successful restore, or when a spilled
/// session is closed). Best-effort: the spill is advisory state.
pub fn remove_spill(path: &Path) {
    let _ = fs::remove_dir_all(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_cluster::FascicleParams;
    use gea_sage::clean::CleaningConfig;
    use gea_sage::generate::{generate, GeneratorConfig};
    use gea_sage::TissueType;

    /// Mine with a k sweep until fascicles appear.
    fn mine_with_sweep(session: &mut GeaSession, base: &str) -> Vec<String> {
        let n_tags = session.enum_table("Ebrain").unwrap().n_tags();
        for pct in [60usize, 55, 50, 45, 40] {
            let names = session
                .calculate_fascicles(
                    "Ebrain",
                    &format!("{base}{pct}"),
                    0.10,
                    &FascicleParams {
                        min_compact_attrs: n_tags * pct / 100,
                        min_records: 3,
                        batch_size: 6,
                    },
                )
                .unwrap();
            if !names.is_empty() {
                return names;
            }
        }
        panic!("no fascicles in sweep");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gea_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn name_encoding_roundtrip() {
        for name in ["plain", "with space", "uni→code", "a%b", "Ebrain/2"] {
            let encoded = encode_name(name);
            assert!(!encoded.contains('/') && !encoded.contains(' '));
            assert_eq!(decode_name(&encoded).unwrap(), name);
        }
    }

    #[test]
    fn session_results_roundtrip() {
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        let mut session = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        session
            .create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        let names = mine_with_sweep(&mut session, "brainP");
        assert!(!names.is_empty());
        session.comment(&names[0], "persisted comment").unwrap();

        let dir = temp_dir("roundtrip");
        save_results(&session, &dir).unwrap();
        let loaded = load_results(&dir).unwrap();

        // Every materialized table survives with identical contents.
        for name in session.database().names() {
            let original = session.database().get(name).unwrap();
            let reloaded = loaded
                .database
                .get(name)
                .unwrap_or_else(|_| panic!("table {name:?} missing after reload"));
            assert_eq!(reloaded, original, "table {name:?} differs");
        }
        // Lineage structure and comments survive.
        assert_eq!(loaded.lineage.len(), session.lineage().len());
        let node = loaded.lineage.find_by_name(&names[0]).unwrap();
        assert_eq!(node.comment, "persisted comment");
        assert_eq!(node.operation, "Fascicles");
        assert_eq!(
            loaded.lineage.render_tree(),
            session.lineage().render_tree()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dematerialized_nodes_survive_as_metadata() {
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        let mut session = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        session
            .create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        let names = mine_with_sweep(&mut session, "brainQ");
        session.delete(&names[0], false).unwrap(); // contents-only

        let dir = temp_dir("demat");
        save_results(&session, &dir).unwrap();
        let loaded = load_results(&dir).unwrap();
        let node = loaded.lineage.find_by_name(&names[0]).unwrap();
        assert!(!node.materialized);
        assert_eq!(loaded.database.get(&names[0]).unwrap().n_rows(), 0);
        let described = describe_node(node);
        assert!(described.contains("Fascicles"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_missing_directory_fails() {
        assert!(load_results(Path::new("/nonexistent/gea")).is_err());
    }

    /// The deterministic rich session of `tests/server_smoke.rs`: on demo
    /// seed 42 the 50% mine finds exactly one fascicle pure on cancer, so
    /// every layer of session state (corpus, base, ENUM/SUMY/GAP maps,
    /// fascicles, db, lineage, comments) gets populated.
    fn rich_session() -> GeaSession {
        use crate::topgap::TopGapOrder;
        use gea_sage::library::LibraryProperty;

        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        let mut session = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        session
            .create_tissue_dataset("E", &TissueType::Brain)
            .unwrap();
        let n_tags = session.enum_table("E").unwrap().n_tags();
        let names = session
            .calculate_fascicles(
                "E",
                "a",
                0.10,
                &FascicleParams {
                    min_compact_attrs: n_tags * 50 / 100,
                    min_records: 3,
                    batch_size: 6,
                },
            )
            .unwrap();
        assert!(!names.is_empty(), "demo seed 42 mines no fascicle");
        let fascicle = names[0].clone();
        session.purity_check(&fascicle).unwrap();
        let groups = session
            .form_control_groups(&fascicle, LibraryProperty::Cancer)
            .unwrap();
        session
            .create_gap("g", &groups.in_fascicle, &groups.contrast)
            .unwrap();
        session
            .calculate_top_gap("g", 5, TopGapOrder::LargestMagnitude)
            .unwrap();
        session.comment(&fascicle, "spilled comment").unwrap();
        session
    }

    fn assert_sessions_identical(a: &GeaSession, b: &GeaSession) {
        assert_eq!(b.base(), a.base(), "base matrix differs");
        assert_eq!(b.cleaning_report(), a.cleaning_report(), "report differs");
        assert_eq!(b.enum_tables(), a.enum_tables(), "enum tables differ");
        assert_eq!(b.sumy_tables(), a.sumy_tables(), "sumy tables differ");
        assert_eq!(b.gap_tables(), a.gap_tables(), "gap tables differ");
        assert_eq!(
            format!("{:?}", b.fascicle_records()),
            format!("{:?}", a.fascicle_records()),
            "fascicle records differ"
        );
        assert_eq!(b.corpus().len(), a.corpus().len(), "corpus size differs");
        for ((_, la), (_, lb)) in a.corpus().iter().zip(b.corpus().iter()) {
            assert_eq!(lb, la, "corpus library differs");
        }
        assert_eq!(
            b.lineage().render_tree(),
            a.lineage().render_tree(),
            "lineage differs"
        );
        assert_eq!(b.database().len(), a.database().len());
        for name in a.database().names() {
            assert_eq!(
                b.database().get(name).unwrap(),
                a.database().get(name).unwrap(),
                "db table {name:?} differs"
            );
        }
    }

    #[test]
    fn session_snapshot_full_roundtrip() {
        let session = rich_session();
        let dir = temp_dir("snapshot");
        let fp = save_session(&session, &dir).unwrap();
        let restored = load_session(&dir).unwrap();
        assert_sessions_identical(&session, &restored);
        // The verified path accepts the recorded fingerprint and rejects
        // any other.
        assert!(load_session_verified(&dir, fp).is_ok());
        assert!(matches!(
            load_session_verified(&dir, fp ^ 1),
            Err(PersistError::Malformed(_))
        ));
        // A restored session is live, not a browse copy: it can keep
        // deriving new tables from restored state.
        let mut restored = restored;
        restored
            .calculate_top_gap("g", 3, crate::topgap::TopGapOrder::LargestMagnitude)
            .unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_fingerprint_is_deterministic() {
        let session = rich_session();
        let d1 = temp_dir("fp1");
        let d2 = temp_dir("fp2");
        let fp1 = save_session(&session, &d1).unwrap();
        let fp2 = save_session(&session, &d2).unwrap();
        assert_eq!(fp1, fp2, "same session must fingerprint identically");
        fs::remove_dir_all(&d1).unwrap();
        fs::remove_dir_all(&d2).unwrap();
    }

    #[test]
    fn snapshot_corruption_yields_malformed_not_panic() {
        let session = rich_session();
        let dir = temp_dir("corrupt");
        save_session(&session, &dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let clean = fs::read(&path).unwrap();

        // Truncations at assorted prefix lengths.
        for len in [0, 3, 4, 8, 15, 16, 40, clean.len() / 2, clean.len() - 1] {
            fs::write(&path, &clean[..len]).unwrap();
            assert!(
                matches!(load_session(&dir), Err(PersistError::Malformed(_))),
                "truncation to {len} bytes not rejected"
            );
        }

        // A flipped body byte fails the fingerprint.
        let mut flipped = clean.clone();
        let mid = 16 + (clean.len() - 16) / 2;
        flipped[mid] ^= 0xff;
        fs::write(&path, &flipped).unwrap();
        match load_session(&dir) {
            Err(PersistError::Malformed(m)) => assert!(m.contains("fingerprint"), "{m}"),
            Err(other) => panic!("expected fingerprint mismatch, got {other:?}"),
            Ok(_) => panic!("corrupt snapshot loaded"),
        }

        // Structural corruption that *recomputes* the fingerprint must
        // still never panic — decode either rejects it or reads it as
        // different-but-valid data.
        let step = (clean.len() - 16) / 37 + 1;
        for offset in (16..clean.len()).step_by(step) {
            let mut evil = clean.clone();
            evil[offset] ^= 0xff;
            let fp = fnv1a(&evil[16..]);
            evil[8..16].copy_from_slice(&fp.to_le_bytes());
            fs::write(&path, &evil).unwrap();
            let _ = load_session(&dir); // must not panic
        }

        // Wrong magic and unsupported version are rejected up front.
        let mut bad_magic = clean.clone();
        bad_magic[0] = b'X';
        fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            load_session(&dir),
            Err(PersistError::Malformed(_))
        ));
        let mut bad_version = clean.clone();
        bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bad_version).unwrap();
        match load_session(&dir) {
            Err(PersistError::Malformed(m)) => assert!(m.contains("version"), "{m}"),
            Err(other) => panic!("expected version rejection, got {other:?}"),
            Ok(_) => panic!("version-skewed snapshot loaded"),
        }

        // A foreign file is malformed, and a missing one is Io.
        fs::write(&path, b"not a snapshot at all").unwrap();
        assert!(matches!(
            load_session(&dir),
            Err(PersistError::Malformed(_))
        ));
        fs::remove_file(&path).unwrap();
        assert!(matches!(load_session(&dir), Err(PersistError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lz_roundtrip_is_lossless_and_deterministic() {
        let cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            vec![7],
            b"abcabcabcabcabcabc".to_vec(),
            vec![0u8; 10_000],
            (0..=255u8).cycle().take(4096).collect(),
            b"no repeats here: qwertyuiop".to_vec(),
            // Overlapping match territory: run-length data.
            [b"aaaaab".as_slice(), &[b'a'; 500], b"tail".as_slice()].concat(),
        ];
        for raw in &cases {
            let c1 = lz_compress(raw);
            let c2 = lz_compress(raw);
            assert_eq!(c1, c2, "compression must be deterministic");
            assert_eq!(&lz_inflate(&c1).unwrap(), raw, "roundtrip lost data");
        }
        // Redundant data actually shrinks.
        let zeros = lz_compress(&vec![0u8; 10_000]);
        assert!(zeros.len() < 1_000, "10k zeros stored as {}", zeros.len());
    }

    #[test]
    fn lz_inflate_rejects_garbage_without_panicking() {
        // Truncated header, implausible raw_len, bad offsets, overruns.
        assert!(lz_inflate(&[]).is_err());
        assert!(lz_inflate(&[1, 2, 3]).is_err());
        let mut huge = Vec::new();
        put_u64(&mut huge, u64::MAX);
        assert!(lz_inflate(&huge).is_err());
        let mut claims_much = Vec::new();
        put_u64(&mut claims_much, 1_000_000);
        claims_much.push(0);
        claims_much.push(b'x');
        assert!(lz_inflate(&claims_much).is_err());
        // A match token pointing before the start of output.
        let mut bad_offset = Vec::new();
        put_u64(&mut bad_offset, 10);
        bad_offset.push(0b0000_0001); // first token is a match
        bad_offset.extend_from_slice(&5u16.to_le_bytes());
        bad_offset.push(0);
        assert!(lz_inflate(&bad_offset).is_err());
        // Fuzz-ish: corrupt every byte of a valid stream in turn.
        let valid = lz_compress(b"the quick brown fox jumps over the lazy dog, twice over");
        for i in 0..valid.len() {
            let mut evil = valid.clone();
            evil[i] ^= 0xff;
            let _ = lz_inflate(&evil); // must not panic
        }
    }

    #[test]
    fn v1_snapshots_still_load() {
        let session = rich_session();
        let dir = temp_dir("v1compat");
        fs::create_dir_all(&dir).unwrap();
        // Hand-write a version-1 snapshot: raw (uncompressed) body in the
        // v1 fascicle layout, fingerprint over the raw bytes.
        let body = encode_session(&session, 1).unwrap();
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut out, 1);
        put_u64(&mut out, fnv1a(&body));
        out.extend_from_slice(&body);
        fs::write(dir.join(SNAPSHOT_FILE), &out).unwrap();

        let restored = load_session(&dir).unwrap();
        // Everything except backend provenance round-trips; v1 records
        // restore with the legacy backend tag and no parameters.
        assert_eq!(restored.base(), session.base());
        assert_eq!(restored.enum_tables(), session.enum_tables());
        assert_eq!(
            restored.fascicle_records().keys().collect::<Vec<_>>(),
            session.fascicle_records().keys().collect::<Vec<_>>()
        );
        for rec in restored.fascicle_records().values() {
            assert_eq!(rec.backend, "fascicles");
            assert!(rec.params.is_empty());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_snapshots_carry_backend_provenance() {
        let session = rich_session();
        let dir = temp_dir("v2prov");
        save_session(&session, &dir).unwrap();
        let restored = load_session(&dir).unwrap();
        for (name, rec) in restored.fascicle_records() {
            let orig = &session.fascicle_records()[name];
            assert_eq!(rec.backend, orig.backend, "{name}: backend lost");
            assert_eq!(rec.params, orig.params, "{name}: params lost");
            assert!(!rec.backend.is_empty());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_roundtrip_and_cleanup() {
        let session = rich_session();
        let spill_dir = temp_dir("spill");
        let spilled = spill_session(&session, &spill_dir, "weird name/πσ").unwrap();
        assert!(spilled.path.starts_with(&spill_dir));
        assert!(spilled.path.join(SNAPSHOT_FILE).exists());
        // Spills skip the browsable CSV layer.
        assert!(!spilled.path.join("lineage.txt").exists());
        let restored = load_session_verified(&spilled.path, spilled.fingerprint).unwrap();
        assert_sessions_identical(&session, &restored);
        // Re-spilling the same name replaces the old spill atomically.
        let again = spill_session(&session, &spill_dir, "weird name/πσ").unwrap();
        assert_eq!(again.path, spilled.path);
        assert_eq!(again.fingerprint, spilled.fingerprint);
        remove_spill(&spilled.path);
        assert!(!spilled.path.exists());
        fs::remove_dir_all(&spill_dir).unwrap();
    }
}
