//! Persisting analysis results across sessions.
//!
//! The thesis keeps every intermediate table in DB2, so an analyst can come
//! back days later, browse the lineage (Figure 4.18) and continue. Our
//! equivalent: [`save_results`] writes a session's materialized relational
//! tables (as CSV with schema sidecars) and the lineage DAG to a directory;
//! [`load_results`] reads them back into a [`Database`] + [`Lineage`] pair.
//! Dematerialized tables (contents-only deletes) round-trip as empty tables
//! whose lineage metadata still describes how to regenerate them.

use std::fs;
use std::io::Write;
use std::path::Path;

use gea_relstore::csv::{export_csv, import_csv};
use gea_relstore::schema::Schema;
use gea_relstore::value::DataType;
use gea_relstore::Database;

use crate::lineage::{Lineage, LineageNode, NodeId, NodeKind};
use crate::session::GeaSession;

/// Errors raised by persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A file's contents did not parse.
    Malformed(String),
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Malformed(m) => write!(f, "malformed session data: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn malformed(detail: impl Into<String>) -> PersistError {
    PersistError::Malformed(detail.into())
}

fn kind_token(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Enum => "enum",
        NodeKind::Fascicle => "fascicle",
        NodeKind::Sumy => "sumy",
        NodeKind::Gap => "gap",
        NodeKind::TopGap => "topgap",
        NodeKind::Compare => "compare",
    }
}

fn parse_kind(token: &str) -> Result<NodeKind, PersistError> {
    Ok(match token {
        "enum" => NodeKind::Enum,
        "fascicle" => NodeKind::Fascicle,
        "sumy" => NodeKind::Sumy,
        "gap" => NodeKind::Gap,
        "topgap" => NodeKind::TopGap,
        "compare" => NodeKind::Compare,
        other => return Err(malformed(format!("unknown node kind {other:?}"))),
    })
}

fn dtype_token(d: DataType) -> &'static str {
    match d {
        DataType::Int => "INT",
        DataType::Float => "FLOAT",
        DataType::Text => "TEXT",
        DataType::Bool => "BOOL",
    }
}

fn parse_dtype(token: &str) -> Result<DataType, PersistError> {
    Ok(match token {
        "INT" => DataType::Int,
        "FLOAT" => DataType::Float,
        "TEXT" => DataType::Text,
        "BOOL" => DataType::Bool,
        other => return Err(malformed(format!("unknown type {other:?}"))),
    })
}

/// Percent-encode a table name into a safe file stem.
fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
            out.push(c);
        } else {
            out.push('%');
            out.push_str(&format!("{:04x}", c as u32));
        }
    }
    out
}

fn decode_name(stem: &str) -> Result<String, PersistError> {
    let mut out = String::new();
    let mut chars = stem.chars();
    while let Some(c) = chars.next() {
        if c == '%' {
            let hex: String = chars.by_ref().take(4).collect();
            let code = u32::from_str_radix(&hex, 16)
                .map_err(|e| malformed(format!("bad escape {hex:?}: {e}")))?;
            out.push(char::from_u32(code).ok_or_else(|| malformed("bad escape code"))?);
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Save the session's materialized tables and lineage into `dir`.
pub fn save_results(session: &GeaSession, dir: &Path) -> Result<(), PersistError> {
    save_database_and_lineage(session.database(), session.lineage(), dir)
}

/// Save an explicit database + lineage pair.
pub fn save_database_and_lineage(
    db: &Database,
    lineage: &Lineage,
    dir: &Path,
) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    // Tables: CSV + schema sidecar.
    for name in db.names() {
        let table = db.get(name).expect("listed name exists");
        let stem = encode_name(name);
        let mut schema_file = fs::File::create(dir.join(format!("{stem}.schema")))?;
        for col in table.schema().columns() {
            writeln!(schema_file, "{}\t{}", col.name, dtype_token(col.dtype))?;
        }
        let mut csv_file = fs::File::create(dir.join(format!("{stem}.csv")))?;
        export_csv(table, &mut csv_file)?;
    }
    // Lineage.
    let mut out = fs::File::create(dir.join("lineage.txt"))?;
    for node in lineage.iter() {
        writeln!(out, "node\t{}", node.id.0)?;
        writeln!(out, "name\t{}", encode_name(&node.name))?;
        writeln!(out, "kind\t{}", kind_token(node.kind))?;
        writeln!(out, "op\t{}", node.operation)?;
        for (k, v) in &node.params {
            writeln!(out, "param\t{k}\t{v}")?;
        }
        if !node.comment.is_empty() {
            writeln!(out, "comment\t{}", node.comment.replace('\n', " "))?;
        }
        let parents: Vec<String> = node.parents.iter().map(|p| p.0.to_string()).collect();
        writeln!(out, "parents\t{}", parents.join(","))?;
        writeln!(out, "materialized\t{}", node.materialized as u8)?;
        writeln!(out, "end")?;
    }
    Ok(())
}

/// A reloaded session snapshot: the relational tables and the operation
/// history. (The in-memory analysis structures are regenerable from these
/// via the lineage metadata, which is the thesis's own recovery story for
/// contents-only deletes.)
#[derive(Debug)]
pub struct LoadedResults {
    /// The reloaded tables.
    pub database: Database,
    /// The reloaded operation history.
    pub lineage: Lineage,
}

/// Load a directory written by [`save_results`].
pub fn load_results(dir: &Path) -> Result<LoadedResults, PersistError> {
    let mut database = Database::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("schema") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| malformed("non-utf8 file name"))?;
        let name = decode_name(stem)?;
        let schema_text = fs::read_to_string(&path)?;
        let mut cols = Vec::new();
        for line in schema_text.lines() {
            let mut parts = line.split('\t');
            let col = parts.next().ok_or_else(|| malformed("empty schema line"))?;
            let dtype = parse_dtype(
                parts
                    .next()
                    .ok_or_else(|| malformed(format!("schema line {line:?} missing type")))?,
            )?;
            cols.push((col.to_string(), dtype));
        }
        let pairs: Vec<(&str, DataType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Schema::from_pairs(&pairs)
            .map_err(|e| malformed(format!("bad schema for {name:?}: {e}")))?;
        let csv_path = dir.join(format!("{stem}.csv"));
        let mut file = fs::File::open(&csv_path)?;
        let table = import_csv(schema, &mut file)
            .map_err(|e| malformed(format!("bad csv for {name:?}: {e}")))?;
        database.create_or_replace(&name, table);
    }

    // Lineage: replay records in id order so parent references resolve.
    let lineage_path = dir.join("lineage.txt");
    let mut lineage = Lineage::new();
    if lineage_path.exists() {
        let text = fs::read_to_string(&lineage_path)?;
        let mut pending: Vec<ParsedNode> = Vec::new();
        let mut current: Option<ParsedNode> = None;
        for line in text.lines() {
            let mut parts = line.splitn(3, '\t');
            let tag = parts.next().unwrap_or("");
            match tag {
                "node" => {
                    let id: u32 = parts
                        .next()
                        .ok_or_else(|| malformed("node line missing id"))?
                        .parse()
                        .map_err(|e| malformed(format!("bad node id: {e}")))?;
                    current = Some(ParsedNode {
                        id,
                        ..ParsedNode::default()
                    });
                }
                "name" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("name outside node"))?;
                    cur.name = decode_name(parts.next().unwrap_or(""))?;
                }
                "kind" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("kind outside node"))?;
                    cur.kind = Some(parse_kind(parts.next().unwrap_or(""))?);
                }
                "op" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("op outside node"))?;
                    cur.operation = parts.next().unwrap_or("").to_string();
                }
                "param" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("param outside node"))?;
                    let k = parts.next().unwrap_or("").to_string();
                    let v = parts.next().unwrap_or("").to_string();
                    cur.params.push((k, v));
                }
                "comment" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("comment outside node"))?;
                    cur.comment = parts.next().unwrap_or("").to_string();
                }
                "parents" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("parents outside node"))?;
                    let list = parts.next().unwrap_or("");
                    if !list.is_empty() {
                        for p in list.split(',') {
                            cur.parents.push(
                                p.parse()
                                    .map_err(|e| malformed(format!("bad parent id: {e}")))?,
                            );
                        }
                    }
                }
                "materialized" => {
                    let cur = current
                        .as_mut()
                        .ok_or_else(|| malformed("materialized outside node"))?;
                    cur.materialized = parts.next() == Some("1");
                }
                "end" => {
                    pending.push(
                        current
                            .take()
                            .ok_or_else(|| malformed("end outside node"))?,
                    );
                }
                "" => {}
                other => return Err(malformed(format!("unknown record tag {other:?}"))),
            }
        }
        pending.sort_by_key(|n| n.id);
        // Replay; saved ids are dense-by-construction in a fresh tracker,
        // but deletes can leave gaps — map old ids to new.
        let mut id_map: std::collections::BTreeMap<u32, NodeId> = Default::default();
        for node in pending {
            let kind = node.kind.ok_or_else(|| malformed("node missing kind"))?;
            let parents: Vec<NodeId> = node
                .parents
                .iter()
                .filter_map(|p| id_map.get(p).copied())
                .collect();
            let new_id = lineage
                .record(&node.name, kind, &node.operation, node.params, &parents)
                .map_err(|e| malformed(format!("replay failed: {e}")))?;
            if !node.comment.is_empty() {
                let _ = lineage.set_comment(new_id, &node.comment);
            }
            if !node.materialized {
                let _ = lineage.delete_contents(new_id);
            }
            id_map.insert(node.id, new_id);
        }
    }
    Ok(LoadedResults { database, lineage })
}

#[derive(Debug, Default)]
struct ParsedNode {
    id: u32,
    name: String,
    kind: Option<NodeKind>,
    operation: String,
    params: Vec<(String, String)>,
    comment: String,
    parents: Vec<u32>,
    materialized: bool,
}

/// Render one reloaded node the way Figure 4.18's detail panel does.
pub fn describe_node(node: &LineageNode) -> String {
    let mut out = format!(
        "Operation Name: {}\nOperation Type: {}\n",
        node.name, node.operation
    );
    for (k, v) in &node.params {
        out.push_str(&format!("{k}: {v}\n"));
    }
    if !node.comment.is_empty() {
        out.push_str(&format!("User Comment: {}\n", node.comment));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_cluster::FascicleParams;
    use gea_sage::clean::CleaningConfig;
    use gea_sage::generate::{generate, GeneratorConfig};
    use gea_sage::TissueType;

    /// Mine with a k sweep until fascicles appear.
    fn mine_with_sweep(session: &mut GeaSession, base: &str) -> Vec<String> {
        let n_tags = session.enum_table("Ebrain").unwrap().n_tags();
        for pct in [60usize, 55, 50, 45, 40] {
            let names = session
                .calculate_fascicles(
                    "Ebrain",
                    &format!("{base}{pct}"),
                    0.10,
                    &FascicleParams {
                        min_compact_attrs: n_tags * pct / 100,
                        min_records: 3,
                        batch_size: 6,
                    },
                )
                .unwrap();
            if !names.is_empty() {
                return names;
            }
        }
        panic!("no fascicles in sweep");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gea_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn name_encoding_roundtrip() {
        for name in ["plain", "with space", "uni→code", "a%b", "Ebrain/2"] {
            let encoded = encode_name(name);
            assert!(!encoded.contains('/') && !encoded.contains(' '));
            assert_eq!(decode_name(&encoded).unwrap(), name);
        }
    }

    #[test]
    fn session_results_roundtrip() {
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        let mut session = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        session
            .create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        let names = mine_with_sweep(&mut session, "brainP");
        assert!(!names.is_empty());
        session.comment(&names[0], "persisted comment").unwrap();

        let dir = temp_dir("roundtrip");
        save_results(&session, &dir).unwrap();
        let loaded = load_results(&dir).unwrap();

        // Every materialized table survives with identical contents.
        for name in session.database().names() {
            let original = session.database().get(name).unwrap();
            let reloaded = loaded
                .database
                .get(name)
                .unwrap_or_else(|_| panic!("table {name:?} missing after reload"));
            assert_eq!(reloaded, original, "table {name:?} differs");
        }
        // Lineage structure and comments survive.
        assert_eq!(loaded.lineage.len(), session.lineage().len());
        let node = loaded.lineage.find_by_name(&names[0]).unwrap();
        assert_eq!(node.comment, "persisted comment");
        assert_eq!(node.operation, "Fascicles");
        assert_eq!(
            loaded.lineage.render_tree(),
            session.lineage().render_tree()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dematerialized_nodes_survive_as_metadata() {
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        let mut session = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        session
            .create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        let names = mine_with_sweep(&mut session, "brainQ");
        session.delete(&names[0], false).unwrap(); // contents-only

        let dir = temp_dir("demat");
        save_results(&session, &dir).unwrap();
        let loaded = load_results(&dir).unwrap();
        let node = loaded.lineage.find_by_name(&names[0]).unwrap();
        assert!(!node.materialized);
        assert_eq!(loaded.database.get(&names[0]).unwrap().n_rows(), 0);
        let described = describe_node(node);
        assert!(described.contains("Fascicles"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_missing_directory_fails() {
        assert!(load_results(Path::new("/nonexistent/gea")).is_err());
    }
}
