//! SUMY tables — intensional cluster definitions (thesis §3.1.2).
//!
//! In the intensional world a cluster is represented by its *definition*:
//! for each compact tag, the range, mean and standard deviation of its
//! expression levels over the cluster's libraries (Figure 3.3a). Additional
//! aggregate columns are supported as the thesis allows ("a SUMY table can
//! have more aggregate columns than the ones shown, so long as it has those
//! columns").

use std::collections::BTreeMap;

use gea_sage::tag::{Tag, TagId};
use gea_sage::ExpressionMatrix;

use crate::interval::{AllenRelation, Interval};

/// One SUMY row: the definition of one compact tag.
#[derive(Debug, Clone, PartialEq)]
pub struct SumyRow {
    /// The tag.
    pub tag: Tag,
    /// The tag's number in the originating universe (display only, as in
    /// `AACAGCAAAA_(1580)`).
    pub tag_no: u32,
    /// `[min, max]` of the tag's expression over the cluster's libraries.
    pub range: Interval,
    /// Mean expression level.
    pub average: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Optional extra aggregates, name → value (e.g. a median column).
    pub extras: BTreeMap<String, f64>,
}

/// A SUMY table: a named set of tag definitions, sorted by tag.
#[derive(Debug, Clone, PartialEq)]
pub struct SumyTable {
    /// Table name, e.g. `brain35k_4CancerFasTbl`.
    pub name: String,
    rows: Vec<SumyRow>,
}

impl SumyTable {
    /// Build from rows; they are sorted by tag and must not contain
    /// duplicate tags.
    ///
    /// The common producers ([`aggregate`], the sharded drivers' shard-order
    /// concatenation) emit rows already in tag order because the tag
    /// universe assigns ids in sorted order — one strictly-ascending pass
    /// then proves both sortedness and uniqueness at once, and the stable
    /// sort (with its scratch buffer and row moves) is skipped entirely.
    pub fn new(name: &str, mut rows: Vec<SumyRow>) -> SumyTable {
        let sorted_unique = rows.windows(2).all(|pair| pair[0].tag < pair[1].tag);
        if !sorted_unique {
            rows.sort_by_key(|r| r.tag);
            for pair in rows.windows(2) {
                assert_ne!(pair[0].tag, pair[1].tag, "duplicate tag in SUMY table");
            }
        }
        SumyTable {
            name: name.to_string(),
            rows,
        }
    }

    /// Number of tags defined.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table defines no tags.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows in tag order.
    pub fn rows(&self) -> &[SumyRow] {
        &self.rows
    }

    /// The row for `tag`, if present.
    pub fn row_for(&self, tag: Tag) -> Option<&SumyRow> {
        self.rows
            .binary_search_by_key(&tag, |r| r.tag)
            .ok()
            .map(|i| &self.rows[i])
    }

    /// All defined tags, in order.
    pub fn tags(&self) -> impl Iterator<Item = Tag> + '_ {
        self.rows.iter().map(|r| r.tag)
    }

    /// σ on SUMY: keep rows satisfying `keep`, producing a new named table.
    pub fn select(&self, name: &str, mut keep: impl FnMut(&SumyRow) -> bool) -> SumyTable {
        SumyTable {
            name: name.to_string(),
            rows: self.rows.iter().filter(|r| keep(r)).cloned().collect(),
        }
    }

    /// Range selection via an Allen relation: keep tags whose `[min, max]`
    /// stands in `rel` to `query` (Figure 4.17's "any tag" search).
    pub fn select_range(&self, name: &str, rel: AllenRelation, query: Interval) -> SumyTable {
        self.select(name, |r| r.range.satisfies(rel, query))
    }

    /// Loose-overlap range selection: keep tags whose range shares at least
    /// one point with `query` — what the thesis's "Overlaps" search button
    /// actually computes (its example accepts [20, 616] against [10, 700],
    /// which is Allen-*during*, not Allen-*overlaps*).
    pub fn select_intersecting(&self, name: &str, query: Interval) -> SumyTable {
        self.select(name, |r| r.range.intersects(query))
    }

    /// π on SUMY: drop the named extra aggregate columns ("the standard
    /// projection operator to remove unwanted columns", §3.2.3). The core
    /// columns (range/average/std-dev) are structural and always kept.
    pub fn project_away_extras(&self, name: &str, drop: &[&str]) -> SumyTable {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut row = r.clone();
                for d in drop {
                    row.extras.remove(*d);
                }
                row
            })
            .collect();
        SumyTable {
            name: name.to_string(),
            rows,
        }
    }
}

/// The aggregate() operator (§3.2.1): convert a cluster from its
/// extensional/ENUM form to its intensional/SUMY form, computing range,
/// mean and population standard deviation per tag in one pass over the
/// matrix's tag rows.
///
/// `matrix` must already be restricted to the cluster's libraries; every
/// tag of the matrix becomes a SUMY row.
pub fn aggregate(name: &str, matrix: &ExpressionMatrix) -> SumyTable {
    assert!(
        matrix.n_libraries() > 0,
        "cannot aggregate an ENUM table with no libraries"
    );
    SumyTable::new(name, aggregate_rows_range(matrix, 0, matrix.n_tags()))
}

/// How many tag rows the blocked kernels interleave. The per-tag
/// accumulation chains (`min`/`max`/`+`) are latency-bound and strictly
/// sequential per tag — interleaving independent tags' chains keeps the
/// FPU pipeline full without reordering any single tag's operations, so
/// the blocked kernels stay bit-identical to the scalar reference.
const LANES: usize = 4;

/// One fused min/max/sum pass over a contiguous tag row — the exact
/// accumulation order of the scalar reference ([`reference::aggregate_row`]).
#[inline(always)]
fn fused_min_max_sum(values: &[f64]) -> (f64, f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
        sum += v;
    }
    (lo, hi, sum)
}

/// The variance pass: sum of squared deviations from `avg`, in row order.
#[inline(always)]
fn squared_deviation_sum(values: &[f64], avg: f64) -> f64 {
    let mut acc = 0.0;
    for &v in values {
        acc += (v - avg) * (v - avg);
    }
    acc
}

/// [`fused_min_max_sum`] over four equal-length rows at once. Each row's
/// accumulator chain is untouched — the lanes are independent tags — so
/// lane `l` returns exactly `fused_min_max_sum(r_l)`.
#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn fused_block(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64]) -> [(f64, f64, f64); LANES] {
    let len = r0.len();
    assert!(r1.len() == len && r2.len() == len && r3.len() == len);
    let mut lo = [f64::INFINITY; LANES];
    let mut hi = [f64::NEG_INFINITY; LANES];
    let mut sum = [0.0; LANES];
    for i in 0..len {
        let v = [r0[i], r1[i], r2[i], r3[i]];
        for l in 0..LANES {
            lo[l] = lo[l].min(v[l]);
            hi[l] = hi[l].max(v[l]);
            sum[l] += v[l];
        }
    }
    [
        (lo[0], hi[0], sum[0]),
        (lo[1], hi[1], sum[1]),
        (lo[2], hi[2], sum[2]),
        (lo[3], hi[3], sum[3]),
    ]
}

/// [`squared_deviation_sum`] over four rows at once, one mean per lane.
#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn squared_deviation_block(
    r0: &[f64],
    r1: &[f64],
    r2: &[f64],
    r3: &[f64],
    avg: [f64; LANES],
) -> [f64; LANES] {
    let len = r0.len();
    assert!(r1.len() == len && r2.len() == len && r3.len() == len);
    let mut acc = [0.0; LANES];
    for i in 0..len {
        let v = [r0[i], r1[i], r2[i], r3[i]];
        for l in 0..LANES {
            let d = v[l] - avg[l];
            acc[l] += d * d;
        }
    }
    acc
}

/// The blocked columnar kernel behind [`aggregate`], [`aggregate_tags`]
/// and `gea-exec`'s shards: aggregate `count` tags (`tid_at(0..count)`),
/// interleaving [`LANES`] contiguous tag rows per pass.
fn aggregate_rows_with(
    matrix: &ExpressionMatrix,
    tid_at: impl Fn(usize) -> TagId,
    count: usize,
) -> Vec<SumyRow> {
    let mut out = Vec::with_capacity(count);
    aggregate_rows_sink(matrix, tid_at, count, |row| out.push(row));
    out
}

/// Sink-shaped core of the blocked kernel: emit each finished row through
/// `sink` instead of collecting. `gea-exec` uses this to write shard rows
/// straight into their final positions in one preallocated output,
/// skipping the per-shard staging vectors and the merge copy.
fn aggregate_rows_sink(
    matrix: &ExpressionMatrix,
    tid_at: impl Fn(usize) -> TagId,
    count: usize,
    mut sink: impl FnMut(SumyRow),
) {
    let nf = matrix.n_libraries() as f64;
    let mut i = 0;
    while i + LANES <= count {
        let t = [tid_at(i), tid_at(i + 1), tid_at(i + 2), tid_at(i + 3)];
        let r = [
            matrix.tag_row(t[0]),
            matrix.tag_row(t[1]),
            matrix.tag_row(t[2]),
            matrix.tag_row(t[3]),
        ];
        let stats = fused_block(r[0], r[1], r[2], r[3]);
        let avg = [
            stats[0].2 / nf,
            stats[1].2 / nf,
            stats[2].2 / nf,
            stats[3].2 / nf,
        ];
        let sq = squared_deviation_block(r[0], r[1], r[2], r[3], avg);
        for l in 0..LANES {
            let (lo, hi, _) = stats[l];
            sink(SumyRow {
                tag: matrix.tag_of(t[l]),
                tag_no: t[l].0,
                range: Interval::new(lo, hi).expect("finite expression levels"),
                average: avg[l],
                std_dev: (sq[l] / nf).sqrt(),
                extras: BTreeMap::new(),
            });
        }
        i += LANES;
    }
    while i < count {
        sink(aggregate_row(matrix, tid_at(i)));
        i += 1;
    }
}

/// Aggregate the contiguous tag-id block `[lo, hi)` with the blocked
/// kernel. The serial operator is this helper over `[0, n_tags)`; sharded
/// drivers (`gea-exec`) run it per shard range — same per-tag operation
/// order either way, hence bit-identical results.
pub fn aggregate_rows_range(matrix: &ExpressionMatrix, lo: usize, hi: usize) -> Vec<SumyRow> {
    aggregate_rows_with(matrix, |i| TagId((lo + i) as u32), hi - lo)
}

/// [`aggregate_rows_range`] emitting rows through `sink` instead of
/// collecting — same kernel, same order, zero staging allocation.
pub fn aggregate_rows_range_with(
    matrix: &ExpressionMatrix,
    lo: usize,
    hi: usize,
    sink: impl FnMut(SumyRow),
) {
    aggregate_rows_sink(matrix, |i| TagId((lo + i) as u32), hi - lo, sink);
}

/// Aggregate an explicit tag list with the blocked kernel (the
/// [`aggregate_tags`] axis, sliced by sharded drivers).
pub fn aggregate_tag_rows(matrix: &ExpressionMatrix, tags: &[TagId]) -> Vec<SumyRow> {
    aggregate_rows_with(matrix, |i| tags[i], tags.len())
}

/// [`aggregate_tag_rows`] emitting rows through `sink` instead of
/// collecting.
pub fn aggregate_tag_rows_with(
    matrix: &ExpressionMatrix,
    tags: &[TagId],
    sink: impl FnMut(SumyRow),
) {
    aggregate_rows_sink(matrix, |i| tags[i], tags.len(), sink);
}

/// The per-tag arithmetic of [`aggregate`]: one fused min/max/sum pass
/// followed by the variance pass. Exposed so sharded drivers can compute
/// shard-local rows that are bit-identical to the serial operator —
/// identical operation order, not merely identical math. The matrix must
/// have at least one library.
pub fn aggregate_row(matrix: &ExpressionMatrix, tid: TagId) -> SumyRow {
    let n = matrix.n_libraries();
    let values = matrix.tag_row(tid);
    let (lo, hi, sum) = fused_min_max_sum(values);
    let avg = sum / n as f64;
    let var = squared_deviation_sum(values, avg) / n as f64;
    SumyRow {
        tag: matrix.tag_of(tid),
        tag_no: tid.0,
        range: Interval::new(lo, hi).expect("finite expression levels"),
        average: avg,
        std_dev: var.sqrt(),
        extras: BTreeMap::new(),
    }
}

/// Additional per-tag aggregates for SUMY extras columns. The thesis
/// allows extra aggregate columns (§3.1.2) and notes their cost: "if the
/// aggregation is more complex (e.g., finding the median), the complexity
/// can be higher (e.g., O(n log n))" (§3.3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExtraAggregate {
    /// The median expression level (O(n log n) per tag).
    Median,
    /// A percentile in `[0, 1]` (nearest-rank).
    Percentile(f64),
    /// Sum of levels over the cluster's libraries.
    Sum,
    /// Number of libraries expressing the tag (level > 0).
    ExpressingLibraries,
}

impl ExtraAggregate {
    /// Column name used in the extras map.
    pub fn column_name(&self) -> String {
        match self {
            ExtraAggregate::Median => "median".to_string(),
            // Integral percentages keep the canonical zero-padded form
            // ("p25"); everything else renders the exact value ("p5.4"),
            // which f64's shortest-roundtrip Display keeps injective —
            // the old `{:02.0}` rounding collapsed q=0.054 and q=0.056
            // into the same column name.
            ExtraAggregate::Percentile(q) => {
                let p = q * 100.0;
                if p.fract() == 0.0 && (0.0..=100.0).contains(&p) {
                    format!("p{:02}", p as u32)
                } else {
                    format!("p{p}")
                }
            }
            ExtraAggregate::Sum => "sum".to_string(),
            ExtraAggregate::ExpressingLibraries => "expressing".to_string(),
        }
    }

    fn compute(&self, values: &[f64]) -> f64 {
        match self {
            ExtraAggregate::Median => percentile(values, 0.5),
            ExtraAggregate::Percentile(q) => percentile(values, *q),
            ExtraAggregate::Sum => values.iter().sum(),
            ExtraAggregate::ExpressingLibraries => {
                values.iter().filter(|&&v| v > 0.0).count() as f64
            }
        }
    }
}

/// Nearest-rank percentile of a non-empty slice.
fn percentile(values: &[f64], q: f64) -> f64 {
    debug_assert!(!values.is_empty());
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// [`aggregate`] with additional extras columns attached to every row.
pub fn aggregate_with_extras(
    name: &str,
    matrix: &ExpressionMatrix,
    extras: &[ExtraAggregate],
) -> SumyTable {
    let sumy = aggregate(name, matrix);
    let mut rows = sumy.rows().to_vec();
    for row in &mut rows {
        let tid = matrix.id_of(row.tag).expect("row tag in matrix");
        let values = matrix.tag_row(tid);
        for extra in extras {
            row.extras
                .insert(extra.column_name(), extra.compute(values));
        }
    }
    SumyTable::new(name, rows)
}

/// Aggregate only a subset of the matrix's tags — used when forming the
/// control-group SUMY tables, which "contain only the compact attributes of
/// the fascicle" (§4.3.1.2 steps 4–5).
pub fn aggregate_tags(name: &str, matrix: &ExpressionMatrix, tags: &[TagId]) -> SumyTable {
    assert!(
        matrix.n_libraries() > 0,
        "cannot aggregate an ENUM table with no libraries"
    );
    SumyTable::new(name, aggregate_tag_rows(matrix, tags))
}

/// The per-tag arithmetic of [`aggregate_tags`]. Historically this ran
/// four separate fold passes per statistic
/// ([`reference::aggregate_tags_row`]); the fused two-pass kernel is
/// bit-identical to it because fusing only interleaves the *independent*
/// min/max/sum accumulator chains — each chain still sees the same values
/// in the same order. Exposed (like [`aggregate_row`]) so sharded drivers
/// reproduce the serial operator bit for bit.
pub fn aggregate_tags_row(matrix: &ExpressionMatrix, tid: TagId) -> SumyRow {
    aggregate_row(matrix, tid)
}

/// The pre-change scalar kernels, kept verbatim as the bit-identity
/// oracle: `tests/kernel_props.rs` pins the fused/blocked kernels (and the
/// sharded drivers built on them) to these reference implementations for
/// randomized matrices, so any accidental reassociation of a per-tag
/// accumulation chain fails loudly.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// `aggregate_row` as originally shipped: fused min/max/sum pass,
    /// then a variance pass via iterator sum.
    pub fn aggregate_row(matrix: &ExpressionMatrix, tid: TagId) -> SumyRow {
        let n = matrix.n_libraries();
        let values = matrix.tag_row(tid);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v;
        }
        let avg = sum / n as f64;
        let var = values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / n as f64;
        SumyRow {
            tag: matrix.tag_of(tid),
            tag_no: tid.0,
            range: Interval::new(lo, hi).expect("finite expression levels"),
            average: avg,
            std_dev: var.sqrt(),
            extras: BTreeMap::new(),
        }
    }

    /// `aggregate_tags_row` as originally shipped: one fold pass per
    /// statistic (min, max, sum, then squared deviations).
    pub fn aggregate_tags_row(matrix: &ExpressionMatrix, tid: TagId) -> SumyRow {
        let n = matrix.n_libraries();
        let values = matrix.tag_row(tid);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let avg = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / n as f64;
        SumyRow {
            tag: matrix.tag_of(tid),
            tag_no: tid.0,
            range: Interval::new(lo, hi).expect("finite expression levels"),
            average: avg,
            std_dev: var.sqrt(),
            extras: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_sage::corpus::library_meta;
    use gea_sage::library::{NeoplasticState, TissueSource, TissueType};
    use gea_sage::tag::TagUniverse;

    fn matrix() -> ExpressionMatrix {
        let universe = TagUniverse::from_tags(
            ["AAAAAAAAAA", "CCCCCCCCCC", "GGGGGGGGGG"]
                .iter()
                .map(|s| s.parse().unwrap()),
        );
        let libs = (0..4)
            .map(|i| {
                library_meta(
                    &format!("L{i}"),
                    TissueType::Brain,
                    NeoplasticState::Normal,
                    TissueSource::BulkTissue,
                )
            })
            .collect();
        ExpressionMatrix::from_rows(
            universe,
            libs,
            vec![
                vec![2.0, 4.0, 4.0, 6.0],     // avg 4, sd sqrt(2)
                vec![10.0, 10.0, 10.0, 10.0], // constant
                vec![0.0, 1.0, 2.0, 3.0],
            ],
        )
    }

    #[test]
    fn aggregate_computes_range_mean_stddev() {
        let sumy = aggregate("test", &matrix());
        assert_eq!(sumy.len(), 3);
        let a = sumy.row_for("AAAAAAAAAA".parse().unwrap()).unwrap();
        assert_eq!(a.range, Interval::new(2.0, 6.0).unwrap());
        assert_eq!(a.average, 4.0);
        assert!((a.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
        let c = sumy.row_for("CCCCCCCCCC".parse().unwrap()).unwrap();
        assert_eq!(c.range.width(), 0.0);
        assert_eq!(c.std_dev, 0.0);
    }

    #[test]
    fn aggregate_tags_restricts_rows() {
        let m = matrix();
        let g = m.id_of("GGGGGGGGGG".parse().unwrap()).unwrap();
        let sumy = aggregate_tags("sub", &m, &[g]);
        assert_eq!(sumy.len(), 1);
        assert_eq!(sumy.rows()[0].average, 1.5);
    }

    #[test]
    fn select_range_with_allen_relation() {
        let sumy = aggregate("test", &matrix());
        // Tags whose range is *during* [−1, 7]: AAAAAAAAAA ([2,6]) and
        // GGGGGGGGGG ([0,3]).
        let hit = sumy.select_range(
            "d",
            AllenRelation::During,
            Interval::new(-1.0, 7.0).unwrap(),
        );
        assert_eq!(hit.len(), 2);
        assert!(hit.row_for("CCCCCCCCCC".parse().unwrap()).is_none());
    }

    #[test]
    fn select_intersecting_is_loose() {
        let sumy = aggregate("test", &matrix());
        let hit = sumy.select_intersecting("ov", Interval::new(6.0, 9.0).unwrap());
        // [2,6] touches 6; [10,10] and [0,3] do not intersect [6,9].
        assert_eq!(hit.len(), 1);
        assert_eq!(hit.rows()[0].tag.to_string(), "AAAAAAAAAA");
    }

    #[test]
    fn selection_by_average() {
        let sumy = aggregate("test", &matrix());
        let high = sumy.select("high", |r| r.average > 3.0);
        assert_eq!(high.len(), 2);
    }

    #[test]
    fn projection_drops_extras_only() {
        let mut rows = aggregate("test", &matrix()).rows().to_vec();
        rows[0].extras.insert("median".to_string(), 4.0);
        let sumy = SumyTable::new("with_extras", rows);
        let projected = sumy.project_away_extras("clean", &["median"]);
        assert!(projected.rows()[0].extras.is_empty());
        assert_eq!(projected.len(), sumy.len());
    }

    #[test]
    fn extras_aggregates() {
        let m = matrix();
        let sumy = aggregate_with_extras(
            "x",
            &m,
            &[
                ExtraAggregate::Median,
                ExtraAggregate::Percentile(0.25),
                ExtraAggregate::Sum,
                ExtraAggregate::ExpressingLibraries,
            ],
        );
        let a = sumy.row_for("AAAAAAAAAA".parse().unwrap()).unwrap();
        // Values 2, 4, 4, 6: nearest-rank median = 4, p25 = 2, sum = 16.
        assert_eq!(a.extras["median"], 4.0);
        assert_eq!(a.extras["p25"], 2.0);
        assert_eq!(a.extras["sum"], 16.0);
        assert_eq!(a.extras["expressing"], 4.0);
        let g = sumy.row_for("GGGGGGGGGG".parse().unwrap()).unwrap();
        // Values 0, 1, 2, 3: one zero.
        assert_eq!(g.extras["expressing"], 3.0);
        assert_eq!(g.extras["median"], 1.0);
    }

    #[test]
    fn percentile_column_names_are_collision_free() {
        // Canonical integral names keep their zero-padded form.
        assert_eq!(ExtraAggregate::Percentile(0.25).column_name(), "p25");
        assert_eq!(ExtraAggregate::Percentile(0.5).column_name(), "p50");
        assert_eq!(ExtraAggregate::Percentile(0.05).column_name(), "p05");
        assert_eq!(ExtraAggregate::Percentile(1.0).column_name(), "p100");
        // The old `{:02.0}` rounding mapped these to the same name.
        let a = ExtraAggregate::Percentile(0.054).column_name();
        let b = ExtraAggregate::Percentile(0.056).column_name();
        assert_ne!(a, b, "distinct quantiles collided: {a}");
        assert_eq!(a, "p5.4");
        assert!(b.starts_with("p5.6"), "unexpected name {b}");
        // Dense nearby quantiles all stay distinct.
        let names: std::collections::HashSet<String> = (0..100)
            .map(|i| ExtraAggregate::Percentile(0.05 + i as f64 * 1e-4).column_name())
            .collect();
        assert_eq!(names.len(), 100);
    }

    #[test]
    fn blocked_kernel_matches_scalar_reference() {
        // A shape that exercises both the 4-lane blocks and the scalar
        // tail (7 tags = one block + 3), with awkward values.
        // Distinct tags, lexicographically ascending in i, so row i is
        // universe tag id i.
        let universe = TagUniverse::from_tags((0..7usize).map(|i| {
            let mut s = String::new();
            s.push(['A', 'C', 'G', 'T'][i / 4]);
            s.push(['A', 'C', 'G', 'T'][i % 4]);
            s.push_str("AAAAAAAA");
            s.parse().unwrap()
        }));
        let libs = (0..5)
            .map(|i| {
                library_meta(
                    &format!("L{i}"),
                    TissueType::Brain,
                    NeoplasticState::Normal,
                    TissueSource::BulkTissue,
                )
            })
            .collect();
        let rows: Vec<Vec<f64>> = (0..7)
            .map(|t| {
                (0..5)
                    .map(|l| ((t * 31 + l * 17) % 23) as f64 * 0.1 + 0.01 * t as f64)
                    .collect()
            })
            .collect();
        let m = ExpressionMatrix::from_rows(universe, libs, rows);
        let blocked = aggregate_rows_range(&m, 0, 7);
        for (i, row) in blocked.iter().enumerate() {
            let want = reference::aggregate_row(&m, TagId(i as u32));
            assert_eq!(row, &want, "tag {i} diverged from the reference");
            let want_tags = reference::aggregate_tags_row(&m, TagId(i as u32));
            assert_eq!(row, &want_tags, "tag {i} diverged from the fold reference");
        }
    }

    #[test]
    fn sumy_new_sorts_unsorted_rows() {
        // The sorted fast path must not change behaviour for unsorted
        // input: rows still come out tag-sorted, duplicates still panic.
        let mut rows = aggregate("t", &matrix()).rows().to_vec();
        rows.reverse();
        let table = SumyTable::new("r", rows);
        let tags: Vec<Tag> = table.tags().collect();
        let mut sorted = tags.clone();
        sorted.sort();
        assert_eq!(tags, sorted);
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(super::percentile(&[5.0], 0.5), 5.0);
        assert_eq!(super::percentile(&[1.0, 2.0, 3.0], 0.0), 1.0);
        assert_eq!(super::percentile(&[1.0, 2.0, 3.0], 1.0), 3.0);
        assert_eq!(super::percentile(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    #[should_panic(expected = "duplicate tag")]
    fn duplicate_tags_rejected() {
        let row = SumyRow {
            tag: "AAAAAAAAAA".parse().unwrap(),
            tag_no: 0,
            range: Interval::new(0.0, 1.0).unwrap(),
            average: 0.5,
            std_dev: 0.1,
            extras: BTreeMap::new(),
        };
        SumyTable::new("dup", vec![row.clone(), row]);
    }
}
