//! Authentication and administration (thesis Appendix III).
//!
//! GEA supports multi-user access with two privilege levels: *system
//! administrators* (full access, may manage accounts) and *system users*.
//! Login verifies the user name, password **and** requested access level;
//! the error-checking dialog of Figure 4.27 deliberately hints only at the
//! password and type, not the user name. This registry is a faithful
//! functional reproduction of the appendix, not security-grade software —
//! passwords are salted-hashed with a non-cryptographic hash, sufficient
//! for the thesis's demo semantics.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Access privilege levels (Figure AIII.1's radio buttons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessLevel {
    /// Full access, including account management and configuration.
    Administrator,
    /// Analysis operations only.
    User,
}

impl fmt::Display for AccessLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessLevel::Administrator => "administrator",
            AccessLevel::User => "user",
        })
    }
}

/// Account-management errors, worded like the thesis's dialog boxes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminError {
    /// Figure 4.27: "Login failed! Please check your PASSWORD and TYPE".
    LoginFailed,
    /// The acting user lacks administrator privileges.
    NotAuthorized,
    /// Account already exists.
    DuplicateUser(String),
    /// No such account.
    UnknownUser(String),
}

impl fmt::Display for AdminError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdminError::LoginFailed => {
                f.write_str("Login failed! Please check your PASSWORD and TYPE")
            }
            AdminError::NotAuthorized => f.write_str("operation requires administrator privileges"),
            AdminError::DuplicateUser(u) => write!(f, "user {u:?} already exists"),
            AdminError::UnknownUser(u) => write!(f, "no such user {u:?}"),
        }
    }
}

impl std::error::Error for AdminError {}

#[derive(Debug, Clone)]
struct Account {
    password_hash: u64,
    level: AccessLevel,
}

fn hash_password(user: &str, password: &str) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    user.hash(&mut h); // user name as salt
    password.hash(&mut h);
    h.finish()
}

/// A session token proving a successful login.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoginSession {
    /// Logged-in user name.
    pub user: String,
    /// Granted level.
    pub level: AccessLevel,
}

/// The user registry.
#[derive(Debug, Clone)]
pub struct UserRegistry {
    accounts: BTreeMap<String, Account>,
}

impl UserRegistry {
    /// A registry with one bootstrap administrator account.
    pub fn with_admin(user: &str, password: &str) -> UserRegistry {
        let mut accounts = BTreeMap::new();
        accounts.insert(
            user.to_string(),
            Account {
                password_hash: hash_password(user, password),
                level: AccessLevel::Administrator,
            },
        );
        UserRegistry { accounts }
    }

    /// Log in with explicit name, password and requested level; all three
    /// must match the account.
    pub fn login(
        &self,
        user: &str,
        password: &str,
        level: AccessLevel,
    ) -> Result<LoginSession, AdminError> {
        match self.accounts.get(user) {
            Some(acct)
                if acct.password_hash == hash_password(user, password) && acct.level == level =>
            {
                Ok(LoginSession {
                    user: user.to_string(),
                    level,
                })
            }
            _ => Err(AdminError::LoginFailed),
        }
    }

    fn require_admin(session: &LoginSession) -> Result<(), AdminError> {
        if session.level == AccessLevel::Administrator {
            Ok(())
        } else {
            Err(AdminError::NotAuthorized)
        }
    }

    /// Add a new account (Figure AIII.9). Administrator only.
    pub fn add_user(
        &mut self,
        acting: &LoginSession,
        user: &str,
        password: &str,
        level: AccessLevel,
    ) -> Result<(), AdminError> {
        UserRegistry::require_admin(acting)?;
        if self.accounts.contains_key(user) {
            return Err(AdminError::DuplicateUser(user.to_string()));
        }
        self.accounts.insert(
            user.to_string(),
            Account {
                password_hash: hash_password(user, password),
                level,
            },
        );
        Ok(())
    }

    /// Delete an account (Figure AIII.10). Administrator only.
    pub fn delete_user(&mut self, acting: &LoginSession, user: &str) -> Result<(), AdminError> {
        UserRegistry::require_admin(acting)?;
        self.accounts
            .remove(user)
            .map(|_| ())
            .ok_or_else(|| AdminError::UnknownUser(user.to_string()))
    }

    /// Modify password and/or level (Figure AIII.11). Administrator only.
    pub fn modify_user(
        &mut self,
        acting: &LoginSession,
        user: &str,
        new_password: Option<&str>,
        new_level: Option<AccessLevel>,
    ) -> Result<(), AdminError> {
        UserRegistry::require_admin(acting)?;
        let acct = self
            .accounts
            .get_mut(user)
            .ok_or_else(|| AdminError::UnknownUser(user.to_string()))?;
        if let Some(pw) = new_password {
            acct.password_hash = hash_password(user, pw);
        }
        if let Some(level) = new_level {
            acct.level = level;
        }
        Ok(())
    }

    /// All account names, sorted.
    pub fn users(&self) -> Vec<&str> {
        self.accounts.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> (UserRegistry, LoginSession) {
        let reg = UserRegistry::with_admin("root", "secret");
        let session = reg
            .login("root", "secret", AccessLevel::Administrator)
            .unwrap();
        (reg, session)
    }

    #[test]
    fn login_requires_all_three_fields() {
        let (reg, _) = registry();
        assert!(reg
            .login("root", "wrong", AccessLevel::Administrator)
            .is_err());
        assert!(reg.login("root", "secret", AccessLevel::User).is_err());
        assert!(reg
            .login("ghost", "secret", AccessLevel::Administrator)
            .is_err());
        assert!(reg
            .login("root", "secret", AccessLevel::Administrator)
            .is_ok());
    }

    #[test]
    fn login_failure_message_matches_figure_4_27() {
        let (reg, _) = registry();
        let err = reg
            .login("root", "bad", AccessLevel::Administrator)
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "Login failed! Please check your PASSWORD and TYPE"
        );
    }

    #[test]
    fn admin_manages_accounts() {
        let (mut reg, admin) = registry();
        reg.add_user(&admin, "jessica", "pw", AccessLevel::User)
            .unwrap();
        assert_eq!(reg.users(), vec!["jessica", "root"]);
        assert!(reg.login("jessica", "pw", AccessLevel::User).is_ok());
        // The confirmation-check flow: adding again is an error.
        assert_eq!(
            reg.add_user(&admin, "jessica", "pw2", AccessLevel::User),
            Err(AdminError::DuplicateUser("jessica".to_string()))
        );
        // Promote and re-login at the new level (Figure AIII.11's example).
        reg.modify_user(&admin, "jessica", None, Some(AccessLevel::Administrator))
            .unwrap();
        assert!(reg
            .login("jessica", "pw", AccessLevel::Administrator)
            .is_ok());
        reg.delete_user(&admin, "jessica").unwrap();
        assert_eq!(
            reg.delete_user(&admin, "jessica"),
            Err(AdminError::UnknownUser("jessica".to_string()))
        );
    }

    #[test]
    fn plain_users_cannot_administer() {
        let (mut reg, admin) = registry();
        reg.add_user(&admin, "cfu", "pw", AccessLevel::User)
            .unwrap();
        let user = reg.login("cfu", "pw", AccessLevel::User).unwrap();
        assert_eq!(
            reg.add_user(&user, "other", "x", AccessLevel::User),
            Err(AdminError::NotAuthorized)
        );
        assert_eq!(
            reg.delete_user(&user, "root"),
            Err(AdminError::NotAuthorized)
        );
    }
}
