//! # gea-core — the Gene Expression Analyzer
//!
//! GEA models multi-step cluster analysis of gene expression data with a
//! two-world algebraic framework (a specialization of the 3W model of
//! Johnson, Lakshmanan & Ng):
//!
//! * the **extensional world** — [`enum_table::EnumTable`]: explicit
//!   enumerations of libraries × tags, manipulated with relational algebra
//!   (via `gea-relstore`);
//! * the **intensional world** — [`sumy::SumyTable`] (cluster definitions:
//!   per-tag range / mean / std-dev) and [`gap::GapTable`] (per-tag
//!   differences between two SUMY tables).
//!
//! Operators move between and within the worlds: [`mine::mine`] (fascicle
//! production), [`mod@populate`] (definition → enumeration, with
//! entropy-indexed evaluation), [`sumy::aggregate`] (enumeration →
//! definition), [`gap::diff`], the [`setops`] (minus/intersect/union at the
//! tag level), selection with Allen [`interval`] relations, and
//! [`topgap`] extraction. [`compare`] implements the thirteen GAP-analysis
//! queries; [`lineage`] tracks the operation history; [`search`] provides
//! the general database searches; [`session::GeaSession`] strings it all
//! together as the thesis's macro operations.
//!
//! ```
//! use gea_core::session::GeaSession;
//! use gea_sage::clean::CleaningConfig;
//! use gea_sage::generate::{generate, GeneratorConfig};
//! use gea_sage::TissueType;
//!
//! let (corpus, _truth) = generate(&GeneratorConfig::demo(7));
//! let mut session = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
//! session.create_tissue_dataset("Ebrain", &TissueType::Brain).unwrap();
//! assert!(session.enum_table("Ebrain").unwrap().n_libraries() > 0);
//! ```

#![warn(missing_docs)]

pub mod admin;
pub mod compare;
pub mod enum_table;
pub mod gap;
pub mod interval;
pub mod interval_algebra;
pub mod lineage;
pub mod mem;
pub mod mine;
pub mod persist;
pub mod populate;
pub mod relational;
pub mod search;
pub mod session;
pub mod setops;
pub mod sumy;
pub mod topgap;
pub mod xprofiler;

pub use compare::{compare_gaps, compare_gaps_self, CompareOp, CompareQuery};
pub use enum_table::EnumTable;
pub use gap::{diff, GapTable};
pub use interval::{AllenRelation, Interval};
pub use interval_algebra::{compose_basic, ConstraintChain, RelationSet};
pub use lineage::{Lineage, NodeKind};
pub use mem::ApproxMem;
pub use mine::{materialize_cluster, mine, mine_groups, MinedCluster, Miner};
pub use persist::{
    corpus_fingerprint, load_results, load_session, load_session_verified, remove_spill,
    save_results, save_session, session_from_snapshot_bytes, snapshot_to_bytes, spill_session,
    PersistError, SpillFile,
};
pub use populate::{populate, populate_columnar, populate_indexed, populate_scan, PopulateIndex};
pub use session::{
    ControlGroupInputs, ControlGroups, ExecConfig, ExecEvent, GeaError, GeaSession, SessionSnapshot,
};
pub use sumy::{aggregate, aggregate_with_extras, ExtraAggregate, SumyTable};
pub use topgap::{top_gaps, TopGapOrder};
pub use xprofiler::{compare_pools, XProfilerResult, XProfilerRow};
