//! The mine() operator (thesis §3.2.1): from the extensional world to the
//! intensional world.
//!
//! `SUMY = mine(ENUM, fascicle)` runs the Fascicles algorithm over an ENUM
//! table and represents each found fascicle intensionally as a SUMY table
//! over its compact tags. "In the general case, the mining operation can be
//! something other than fascicle production" — the [`Miner`] enum also
//! exposes the baseline clusterers, which yield SUMY definitions for their
//! flat clusters.

use gea_cluster::dataset::AttrSource;
use gea_cluster::{
    agglomerate, kmeans, mine_greedy, FascicleParams, KMeansParams, Linkage, Metric,
    ToleranceVector,
};
use gea_sage::library::LibraryId;
use gea_sage::tag::TagId;

use crate::enum_table::EnumTable;
use crate::sumy::{aggregate_tags, SumyTable};

/// Adapter presenting an ENUM table's matrix as a clustering input:
/// libraries are the records, tags the attributes.
pub struct MatrixView<'a>(&'a EnumTable);

impl<'a> MatrixView<'a> {
    /// Wrap an ENUM table.
    pub fn new(table: &'a EnumTable) -> MatrixView<'a> {
        MatrixView(table)
    }
}

impl AttrSource for MatrixView<'_> {
    fn n_records(&self) -> usize {
        self.0.n_libraries()
    }

    fn n_attrs(&self) -> usize {
        self.0.n_tags()
    }

    fn attr_values(&self, attr: usize) -> &[f64] {
        self.0.matrix.tag_row(TagId(attr as u32))
    }
}

/// The metadata generator of Figure 4.5: a tolerance vector from a
/// width percentage over the ENUM table's tags.
pub fn generate_metadata(table: &EnumTable, width_fraction: f64) -> ToleranceVector {
    ToleranceVector::from_width_fraction(&MatrixView::new(table), width_fraction)
}

/// Number of tags that are *constant* across every library of the table
/// (typically tags never expressed in this tissue). Constant tags are
/// compact in any record subset, so they set a floor on fascicle
/// compactness: a meaningful `k` must exceed this count — which is why the
/// thesis mines brain at `k = 25,000–35,000` out of ~60,000 tags.
pub fn constant_tag_count(table: &EnumTable) -> usize {
    (0..table.n_tags())
        .filter(|&a| {
            let vals = table.matrix.tag_row(TagId(a as u32));
            vals.windows(2).all(|w| w[0] == w[1])
        })
        .count()
}

/// One mined cluster, in both identities: its member libraries
/// (extensional) and its SUMY definition over the compact tags
/// (intensional).
#[derive(Debug, Clone)]
pub struct MinedCluster {
    /// Name assigned to the cluster (e.g. `brain35k_1`).
    pub name: String,
    /// Member libraries, as ids within the mined ENUM table.
    pub libraries: Vec<LibraryId>,
    /// Compact tags, as ids within the mined ENUM table.
    pub compact_tags: Vec<TagId>,
    /// The intensional definition: aggregates over the compact tags,
    /// computed from the member libraries.
    pub sumy: SumyTable,
}

/// Mining algorithms available behind mine().
#[derive(Debug, Clone)]
pub enum Miner {
    /// The Fascicles algorithm with the given parameters (the thesis's
    /// default and focus).
    Fascicles(FascicleParams),
    /// k-means over libraries; every tag is reported as a "compact" tag of
    /// each cluster (the baseline has no compactness notion).
    KMeans(KMeansParams),
    /// Hierarchical average-linkage with correlation distance, cut into
    /// `k` clusters (the Eisen et al. baseline).
    Hierarchical {
        /// Number of flat clusters to cut the dendrogram into.
        k: usize,
    },
}

/// Run mine() over an ENUM table. `tolerance` is required for
/// [`Miner::Fascicles`] and ignored otherwise. Returned clusters are named
/// `{base_name}_{i}` with `i` starting at 1, as in the thesis's
/// `brain35k_1 … brain35k_4`.
pub fn mine(
    table: &EnumTable,
    base_name: &str,
    miner: &Miner,
    tolerance: Option<&ToleranceVector>,
) -> Vec<MinedCluster> {
    mine_groups(table, miner, tolerance)
        .into_iter()
        .enumerate()
        .map(|(i, (records, attrs))| materialize_cluster(table, base_name, i, records, attrs))
        .collect()
}

/// The clustering half of [`mine`]: run the configured algorithm and
/// return each cluster as `(record indices, compact attribute indices)`.
/// Sequential by nature (the greedy/k-means/agglomerative passes are
/// iterative); the per-cluster [`materialize_cluster`] step that follows
/// is what parallel drivers fan out.
pub fn mine_groups(
    table: &EnumTable,
    miner: &Miner,
    tolerance: Option<&ToleranceVector>,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    let view = MatrixView::new(table);
    match miner {
        Miner::Fascicles(params) => {
            let tol = tolerance.expect("Fascicles mining needs a tolerance vector");
            mine_greedy(&view, tol, params)
                .into_iter()
                .map(|f| (f.records, f.compact_attrs))
                .collect()
        }
        Miner::KMeans(params) => {
            let result = kmeans(&view, params);
            let all_tags: Vec<usize> = (0..table.n_tags()).collect();
            (0..params.k)
                .map(|c| {
                    let members: Vec<usize> = result
                        .assignments
                        .iter()
                        .enumerate()
                        .filter(|&(_, &a)| a == c)
                        .map(|(r, _)| r)
                        .collect();
                    (members, all_tags.clone())
                })
                .filter(|(members, _)| !members.is_empty())
                .collect()
        }
        Miner::Hierarchical { k } => {
            let dendrogram = agglomerate(&view, Metric::Correlation, Linkage::Average);
            let labels = dendrogram.cut(*k);
            let all_tags: Vec<usize> = (0..table.n_tags()).collect();
            (0..*k)
                .map(|c| {
                    let members: Vec<usize> = labels
                        .iter()
                        .enumerate()
                        .filter(|&(_, &l)| l == c)
                        .map(|(r, _)| r)
                        .collect();
                    (members, all_tags.clone())
                })
                .filter(|(members, _)| !members.is_empty())
                .collect()
        }
    }
}

/// The materialization half of [`mine`]: turn the `index`-th cluster of a
/// [`mine_groups`] pass into a [`MinedCluster`] — name it, select the
/// member submatrix, and aggregate the compact tags into the SUMY
/// definition. Each cluster materializes independently, so this is the
/// unit of work the sharded mine driver fans across its pool.
pub fn materialize_cluster(
    table: &EnumTable,
    base_name: &str,
    index: usize,
    records: Vec<usize>,
    attrs: Vec<usize>,
) -> MinedCluster {
    let name = format!("{base_name}_{}", index + 1);
    let libraries: Vec<LibraryId> = records.iter().map(|&r| LibraryId(r as u32)).collect();
    let compact_tags: Vec<TagId> = attrs.iter().map(|&a| TagId(a as u32)).collect();
    let members = table.matrix.select_libraries(&libraries);
    let sumy = aggregate_tags(&name, &members, &compact_tags);
    MinedCluster {
        name,
        libraries,
        compact_tags,
        sumy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_sage::corpus::library_meta;
    use gea_sage::library::{NeoplasticState, TissueSource, TissueType};
    use gea_sage::tag::TagUniverse;
    use gea_sage::ExpressionMatrix;

    /// Six libraries: 0–2 agree tightly on both tags (a plantable
    /// fascicle), 3–5 scattered.
    fn table() -> EnumTable {
        let universe = TagUniverse::from_tags(
            ["AAAAAAAAAA", "CCCCCCCCCC"]
                .iter()
                .map(|s| s.parse().unwrap()),
        );
        let libs = (0..6)
            .map(|i| {
                library_meta(
                    &format!("L{i}"),
                    TissueType::Brain,
                    if i < 3 {
                        NeoplasticState::Cancerous
                    } else {
                        NeoplasticState::Normal
                    },
                    TissueSource::BulkTissue,
                )
            })
            .collect();
        EnumTable::new(
            "E",
            ExpressionMatrix::from_rows(
                universe,
                libs,
                vec![
                    vec![100.0, 102.0, 101.0, 10.0, 250.0, 400.0],
                    vec![50.0, 50.5, 49.5, 200.0, 90.0, 5.0],
                ],
            ),
        )
    }

    #[test]
    fn constant_tag_counting() {
        let table = table();
        // Neither demo tag is constant across the six libraries.
        assert_eq!(constant_tag_count(&table), 0);
        // Restrict to a single library: every tag is trivially constant.
        let solo = table.with_libraries("solo", &[LibraryId(0)]);
        assert_eq!(constant_tag_count(&solo), 2);
    }

    #[test]
    fn fascicle_mining_finds_the_tight_group() {
        let table = table();
        let tol = generate_metadata(&table, 0.05);
        let clusters = mine(
            &table,
            "brain2k",
            &Miner::Fascicles(FascicleParams {
                min_compact_attrs: 2,
                min_records: 3,
                batch_size: 6,
            }),
            Some(&tol),
        );
        assert_eq!(clusters.len(), 1);
        let c = &clusters[0];
        assert_eq!(c.name, "brain2k_1");
        assert_eq!(c.libraries, vec![LibraryId(0), LibraryId(1), LibraryId(2)]);
        assert_eq!(c.compact_tags.len(), 2);
        // The SUMY definition covers exactly the compact tags with the
        // member-library aggregates.
        assert_eq!(c.sumy.len(), 2);
        let a = c.sumy.row_for("AAAAAAAAAA".parse().unwrap()).unwrap();
        assert_eq!(a.average, 101.0);
        assert_eq!(a.range.lo(), 100.0);
        assert_eq!(a.range.hi(), 102.0);
    }

    #[test]
    fn kmeans_mining_partitions_libraries() {
        let table = table();
        let clusters = mine(
            &table,
            "km",
            &Miner::KMeans(KMeansParams {
                k: 2,
                max_iters: 50,
                seed: 1,
            }),
            None,
        );
        assert_eq!(clusters.len(), 2);
        let total: usize = clusters.iter().map(|c| c.libraries.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn hierarchical_mining_cuts_to_k() {
        let table = table();
        let clusters = mine(&table, "hc", &Miner::Hierarchical { k: 3 }, None);
        assert_eq!(clusters.len(), 3);
        let total: usize = clusters.iter().map(|c| c.libraries.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn mined_sumy_populates_back_to_members() {
        // The mine → populate closure of Figure 3.1.
        let table = table();
        let tol = generate_metadata(&table, 0.05);
        let clusters = mine(
            &table,
            "f",
            &Miner::Fascicles(FascicleParams {
                min_compact_attrs: 2,
                min_records: 3,
                batch_size: 6,
            }),
            Some(&tol),
        );
        let c = &clusters[0];
        let (libs, _) = crate::populate::populate_scan(&c.sumy, &table);
        assert_eq!(libs, c.libraries);
    }
}
