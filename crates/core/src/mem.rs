//! Approximate memory accounting for session state.
//!
//! The query server's registry evicts sessions against a configurable
//! byte budget, which needs a cheap estimate of how much heap a
//! [`GeaSession`] is holding. [`ApproxMem`] provides that estimate:
//! structural sizes (dense matrix cells, table rows, string payloads)
//! plus small per-object constants for allocator and container overhead.
//! The numbers are deliberately approximate — eviction needs relative
//! magnitudes and stable ordering, not byte-exact totals — but they are
//! dominated by the terms that actually dominate (the `values` buffer of
//! every [`ExpressionMatrix`], the per-tag counts of every raw library),
//! so a session holding a thesis-scale corpus reports tens of megabytes
//! while a freshly opened demo session reports a few.

use std::collections::BTreeMap;

use gea_relstore::{Database, Table, Value};
use gea_sage::corpus::SageCorpus;
use gea_sage::library::{LibraryMeta, SageLibrary};
use gea_sage::tag::TagUniverse;
use gea_sage::ExpressionMatrix;

use crate::enum_table::EnumTable;
use crate::gap::GapTable;
use crate::lineage::Lineage;
use crate::session::{FascicleRecord, GeaSession};
use crate::sumy::SumyTable;

/// Per-allocation bookkeeping charged for each owned heap object
/// (allocator header plus container node overhead).
const ALLOC_OVERHEAD: usize = 32;

/// Estimated heap footprint of a value, in bytes.
///
/// Estimates are additive over components and never zero for an owning
/// container, so a registry summing them gets a monotone signal: growing
/// a session (new ENUM/SUMY/GAP tables, mined fascicles, materialized
/// relations) strictly grows its reported size.
pub trait ApproxMem {
    /// Approximate number of heap bytes reachable through `self`.
    fn approx_bytes(&self) -> usize;
}

fn string_bytes(s: &str) -> usize {
    ALLOC_OVERHEAD + s.len()
}

impl ApproxMem for TagUniverse {
    fn approx_bytes(&self) -> usize {
        // A tag code (u32) plus its id-lookup entry.
        ALLOC_OVERHEAD + self.len() * 12
    }
}

impl ApproxMem for LibraryMeta {
    fn approx_bytes(&self) -> usize {
        // The enums (tissue/state/source) are inline; only the name owns heap.
        string_bytes(&self.name) + 16
    }
}

impl ApproxMem for SageLibrary {
    fn approx_bytes(&self) -> usize {
        // One (Tag, u32) map entry per distinct tag.
        self.meta.approx_bytes() + self.unique_tags() * 16
    }
}

impl ApproxMem for SageCorpus {
    fn approx_bytes(&self) -> usize {
        ALLOC_OVERHEAD
            + self
                .iter()
                .map(|(_, lib)| lib.approx_bytes())
                .sum::<usize>()
    }
}

impl ApproxMem for ExpressionMatrix {
    fn approx_bytes(&self) -> usize {
        let cells = self.n_tags() * self.n_libraries() * std::mem::size_of::<f64>();
        let metas: usize = self.libraries().iter().map(ApproxMem::approx_bytes).sum();
        cells + self.universe().approx_bytes() + metas
    }
}

impl ApproxMem for EnumTable {
    fn approx_bytes(&self) -> usize {
        string_bytes(&self.name) + self.matrix.approx_bytes()
    }
}

impl ApproxMem for SumyTable {
    fn approx_bytes(&self) -> usize {
        let rows: usize = self
            .rows()
            .iter()
            .map(|r| {
                // tag + tag_no + range + average + std_dev, plus extras.
                48 + r.extras.keys().map(|k| string_bytes(k) + 8).sum::<usize>()
            })
            .sum();
        string_bytes(&self.name) + rows
    }
}

impl ApproxMem for GapTable {
    fn approx_bytes(&self) -> usize {
        let columns: usize = self.columns.iter().map(|c| string_bytes(c)).sum();
        let rows: usize = self
            .rows()
            .iter()
            .map(|r| 16 + r.gaps.len() * std::mem::size_of::<Option<f64>>())
            .sum();
        string_bytes(&self.name) + columns + rows
    }
}

impl ApproxMem for Value {
    fn approx_bytes(&self) -> usize {
        match self {
            Value::Text(s) => string_bytes(s) + 8,
            _ => std::mem::size_of::<Value>(),
        }
    }
}

impl ApproxMem for Table {
    fn approx_bytes(&self) -> usize {
        let header: usize = self
            .schema()
            .columns()
            .iter()
            .map(|c| string_bytes(&c.name))
            .sum();
        let cells: usize = (0..self.n_cols())
            .map(|c| {
                self.column(c)
                    .iter()
                    .map(ApproxMem::approx_bytes)
                    .sum::<usize>()
            })
            .sum();
        ALLOC_OVERHEAD + header + cells
    }
}

impl ApproxMem for Database {
    fn approx_bytes(&self) -> usize {
        ALLOC_OVERHEAD
            + self
                .names()
                .iter()
                .map(|n| {
                    string_bytes(n)
                        + self
                            .get(n)
                            .map(ApproxMem::approx_bytes)
                            .unwrap_or(ALLOC_OVERHEAD)
                })
                .sum::<usize>()
    }
}

impl ApproxMem for Lineage {
    fn approx_bytes(&self) -> usize {
        ALLOC_OVERHEAD
            + self
                .iter()
                .map(|n| {
                    string_bytes(&n.name)
                        + string_bytes(&n.operation)
                        + string_bytes(&n.comment)
                        + n.parents.len() * 4
                        + n.params
                            .iter()
                            .map(|(k, v)| string_bytes(k) + string_bytes(v))
                            .sum::<usize>()
                })
                .sum::<usize>()
    }
}

impl ApproxMem for FascicleRecord {
    fn approx_bytes(&self) -> usize {
        string_bytes(&self.name)
            + string_bytes(&self.dataset)
            + string_bytes(&self.sumy_name)
            + string_bytes(&self.backend)
            + self.members.iter().map(|m| string_bytes(m)).sum::<usize>()
            + self.compact_tags.len() * 4
            + self.purity.len()
            + self
                .params
                .iter()
                .map(|(k, v)| string_bytes(k) + string_bytes(v))
                .sum::<usize>()
    }
}

impl<T: ApproxMem> ApproxMem for BTreeMap<String, T> {
    fn approx_bytes(&self) -> usize {
        ALLOC_OVERHEAD
            + self
                .iter()
                .map(|(k, v)| string_bytes(k) + v.approx_bytes())
                .sum::<usize>()
    }
}

impl ApproxMem for GeaSession {
    fn approx_bytes(&self) -> usize {
        self.corpus().approx_bytes()
            + self.base().approx_bytes()
            + self.database().approx_bytes()
            + self.lineage().approx_bytes()
            + self.named_tables_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::GeaSession;
    use gea_sage::clean::CleaningConfig;
    use gea_sage::generate::{generate, GeneratorConfig};
    use gea_sage::TissueType;

    #[test]
    fn session_size_grows_with_derived_tables() {
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        let mut s = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        let base = s.approx_bytes();
        // A demo session holds a dense matrix; well over 100 KiB.
        assert!(base > 100 * 1024, "implausibly small session: {base}");
        s.create_tissue_dataset("Eb", &TissueType::Brain).unwrap();
        let grown = s.approx_bytes();
        assert!(grown > base, "dataset did not grow the estimate");
        // Deleting with cascade shrinks it back below the grown size.
        s.delete("Eb", true).unwrap();
        assert!(s.approx_bytes() < grown);
    }

    #[test]
    fn component_estimates_are_nonzero() {
        let (corpus, _) = generate(&GeneratorConfig::demo(7));
        assert!(corpus.approx_bytes() > 0);
        let s = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        assert!(s.base().approx_bytes() > s.base().matrix.universe().approx_bytes());
        assert!(s.lineage().approx_bytes() > 0);
        assert!(s.database().approx_bytes() > 0);
    }
}
