//! Allen's interval algebra (thesis §4.4.1, Table 4.1).
//!
//! SUMY tables carry a `[min, max]` range per tag; GEA supports "the
//! well-known range arithmetic proposed by Allen" so users can select tags
//! whose ranges stand in a chosen relationship to a query interval (e.g.
//! *overlaps [10, 700]*, Figures 4.16/4.17).
//!
//! The 13 basic relations partition all pairs of *proper* intervals
//! (`lo < hi`): exactly one holds for any pair, and each relation's inverse
//! relates the swapped pair. Point intervals (`lo == hi`) are accepted by
//! [`Interval`] but break the partition property (e.g. a point at another
//! interval's start both *meets* and *starts* it); [`Interval::relation`]
//! resolves such ties with a fixed precedence and documents itself as doing
//! so.

use std::fmt;

/// A closed numeric interval `[lo, hi]` with `lo ≤ hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

/// Error for inverted interval bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidInterval {
    /// Attempted lower bound.
    pub lo: f64,
    /// Attempted upper bound.
    pub hi: f64,
}

impl fmt::Display for InvalidInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid interval [{}, {}]: lo > hi", self.lo, self.hi)
    }
}

impl std::error::Error for InvalidInterval {}

impl Interval {
    /// Construct, requiring `lo ≤ hi` and finite bounds.
    pub fn new(lo: f64, hi: f64) -> Result<Interval, InvalidInterval> {
        if lo <= hi && lo.is_finite() && hi.is_finite() {
            Ok(Interval { lo, hi })
        } else {
            Err(InvalidInterval { lo, hi })
        }
    }

    /// Construct from unordered bounds.
    pub fn spanning(a: f64, b: f64) -> Interval {
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Lower bound.
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Whether the interval is a single point (`lo == hi`).
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// The unique Allen relation from `self` to `other` for proper
    /// intervals. For point intervals ties are broken by the order the
    /// relations are tested: equals, before, after, meets, met-by,
    /// overlaps, overlapped-by, during, includes, starts, started-by,
    /// finishes, finished-by.
    pub fn relation(self, other: Interval) -> AllenRelation {
        use AllenRelation::*;
        for rel in AllenRelation::ALL {
            if match rel {
                Equals => self.lo == other.lo && self.hi == other.hi,
                Before => self.hi < other.lo,
                After => self.lo > other.hi,
                Meets => self.hi == other.lo,
                MetBy => self.lo == other.hi,
                Overlaps => self.lo < other.lo && other.lo < self.hi && self.hi < other.hi,
                OverlappedBy => other.lo < self.lo && self.lo < other.hi && other.hi < self.hi,
                During => self.lo > other.lo && self.hi < other.hi,
                Includes => self.lo < other.lo && self.hi > other.hi,
                Starts => self.lo == other.lo && self.hi < other.hi,
                StartedBy => self.lo == other.lo && self.hi > other.hi,
                Finishes => self.hi == other.hi && self.lo > other.lo,
                FinishedBy => self.hi == other.hi && self.lo < other.lo,
            } {
                return rel;
            }
        }
        unreachable!("the 13 relations cover all interval pairs")
    }

    /// Whether `self rel other` holds — the Figure 4.16 search predicate.
    pub fn satisfies(self, rel: AllenRelation, other: Interval) -> bool {
        self.relation(other) == rel
    }

    /// Whether the intervals share at least one point — the *overlap* test
    /// of the gap-value definition (§3.2.2), which is broader than Allen's
    /// strict `overlaps` (it includes meets, during, equals, ...).
    pub fn intersects(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The intersection interval, if any.
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// The smallest interval containing both.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Interval width (`hi − lo`).
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// The 13 basic relations of Table 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllenRelation {
    /// `A before B` (symbol `b`): A ends strictly before B starts.
    Before,
    /// `B after A` (`bi`): inverse of before.
    After,
    /// `A meets B` (`m`): A ends exactly where B starts.
    Meets,
    /// `B met-by A` (`mi`): inverse of meets.
    MetBy,
    /// `A overlaps B` (`o`): A starts first, they share an interior span,
    /// B ends last.
    Overlaps,
    /// `B overlapped-by A` (`oi`): inverse of overlaps.
    OverlappedBy,
    /// `A during B` (`d`): A strictly inside B.
    During,
    /// `B includes A` (`di`): inverse of during.
    Includes,
    /// `A starts B` (`s`): same start, A ends first.
    Starts,
    /// `B started-by A` (`si`): inverse of starts.
    StartedBy,
    /// `A finishes B` (`f`): same end, A starts later.
    Finishes,
    /// `B finished-by A` (`fi`): inverse of finishes.
    FinishedBy,
    /// `A equals B` (`e`).
    Equals,
}

impl AllenRelation {
    /// All 13 relations, in the tie-breaking precedence order of
    /// [`Interval::relation`].
    pub const ALL: [AllenRelation; 13] = [
        AllenRelation::Equals,
        AllenRelation::Before,
        AllenRelation::After,
        AllenRelation::Meets,
        AllenRelation::MetBy,
        AllenRelation::Overlaps,
        AllenRelation::OverlappedBy,
        AllenRelation::During,
        AllenRelation::Includes,
        AllenRelation::Starts,
        AllenRelation::StartedBy,
        AllenRelation::Finishes,
        AllenRelation::FinishedBy,
    ];

    /// Table 4.1's symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            AllenRelation::Before => "b",
            AllenRelation::After => "bi",
            AllenRelation::Meets => "m",
            AllenRelation::MetBy => "mi",
            AllenRelation::Overlaps => "o",
            AllenRelation::OverlappedBy => "oi",
            AllenRelation::During => "d",
            AllenRelation::Includes => "di",
            AllenRelation::Starts => "s",
            AllenRelation::StartedBy => "si",
            AllenRelation::Finishes => "f",
            AllenRelation::FinishedBy => "fi",
            AllenRelation::Equals => "e",
        }
    }

    /// Table 4.1's English reading.
    pub fn meaning(self) -> &'static str {
        match self {
            AllenRelation::Before => "A before B",
            AllenRelation::After => "B after A",
            AllenRelation::Meets => "A meets B",
            AllenRelation::MetBy => "B met-by A",
            AllenRelation::Overlaps => "A overlaps B",
            AllenRelation::OverlappedBy => "B overlapped-by A",
            AllenRelation::During => "A during B",
            AllenRelation::Includes => "B includes A",
            AllenRelation::Starts => "A starts B",
            AllenRelation::StartedBy => "B started-by A",
            AllenRelation::Finishes => "A finishes B",
            AllenRelation::FinishedBy => "B finished-by A",
            AllenRelation::Equals => "A equals B",
        }
    }

    /// The inverse relation: `a rel b ⟺ b rel.inverse() a`.
    pub fn inverse(self) -> AllenRelation {
        match self {
            AllenRelation::Before => AllenRelation::After,
            AllenRelation::After => AllenRelation::Before,
            AllenRelation::Meets => AllenRelation::MetBy,
            AllenRelation::MetBy => AllenRelation::Meets,
            AllenRelation::Overlaps => AllenRelation::OverlappedBy,
            AllenRelation::OverlappedBy => AllenRelation::Overlaps,
            AllenRelation::During => AllenRelation::Includes,
            AllenRelation::Includes => AllenRelation::During,
            AllenRelation::Starts => AllenRelation::StartedBy,
            AllenRelation::StartedBy => AllenRelation::Starts,
            AllenRelation::Finishes => AllenRelation::FinishedBy,
            AllenRelation::FinishedBy => AllenRelation::Finishes,
            AllenRelation::Equals => AllenRelation::Equals,
        }
    }

    /// Parse a relation by symbol or name (case-insensitive).
    pub fn parse(s: &str) -> Option<AllenRelation> {
        let lower = s.to_ascii_lowercase();
        AllenRelation::ALL.into_iter().find(|r| {
            r.symbol() == lower
                || r.meaning().to_ascii_lowercase().contains(&lower) && lower.len() > 2
        })
    }
}

impl fmt::Display for AllenRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.meaning())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn all_thirteen_relations_are_producible() {
        let b = iv(10.0, 20.0);
        let cases = [
            (iv(1.0, 5.0), AllenRelation::Before),
            (iv(25.0, 30.0), AllenRelation::After),
            (iv(5.0, 10.0), AllenRelation::Meets),
            (iv(20.0, 25.0), AllenRelation::MetBy),
            (iv(5.0, 15.0), AllenRelation::Overlaps),
            (iv(15.0, 25.0), AllenRelation::OverlappedBy),
            (iv(12.0, 18.0), AllenRelation::During),
            (iv(5.0, 25.0), AllenRelation::Includes),
            (iv(10.0, 15.0), AllenRelation::Starts),
            (iv(10.0, 25.0), AllenRelation::StartedBy),
            (iv(15.0, 20.0), AllenRelation::Finishes),
            (iv(5.0, 20.0), AllenRelation::FinishedBy),
            (iv(10.0, 20.0), AllenRelation::Equals),
        ];
        for (a, expected) in cases {
            assert_eq!(a.relation(b), expected, "{a} vs {b}");
        }
    }

    #[test]
    fn inverse_pairs_are_consistent() {
        let a = iv(5.0, 15.0);
        let b = iv(10.0, 20.0);
        assert_eq!(a.relation(b).inverse(), b.relation(a));
        for rel in AllenRelation::ALL {
            assert_eq!(rel.inverse().inverse(), rel);
        }
    }

    #[test]
    fn proper_intervals_satisfy_exactly_one_relation() {
        // Deterministic sweep over endpoint configurations.
        let points = [0.0, 1.0, 2.0, 3.0];
        for &alo in &points {
            for &ahi in &points {
                for &blo in &points {
                    for &bhi in &points {
                        if alo >= ahi || blo >= bhi {
                            continue;
                        }
                        let a = iv(alo, ahi);
                        let b = iv(blo, bhi);
                        let rel = a.relation(b);
                        // Independent, definitional re-statement of each
                        // relation; for proper intervals exactly one must
                        // hold and it must be the computed one.
                        let definitional = |r: AllenRelation| -> bool {
                            use AllenRelation::*;
                            match r {
                                Before => ahi < blo,
                                After => alo > bhi,
                                Meets => ahi == blo,
                                MetBy => alo == bhi,
                                Overlaps => alo < blo && blo < ahi && ahi < bhi,
                                OverlappedBy => blo < alo && alo < bhi && bhi < ahi,
                                During => alo > blo && ahi < bhi,
                                Includes => alo < blo && ahi > bhi,
                                Starts => alo == blo && ahi < bhi,
                                StartedBy => alo == blo && ahi > bhi,
                                Finishes => ahi == bhi && alo > blo,
                                FinishedBy => ahi == bhi && alo < blo,
                                Equals => alo == blo && ahi == bhi,
                            }
                        };
                        let holding: Vec<AllenRelation> = AllenRelation::ALL
                            .into_iter()
                            .filter(|&r| definitional(r))
                            .collect();
                        assert_eq!(holding, vec![rel], "{a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn intersects_is_broader_than_allen_overlaps() {
        let a = iv(0.0, 10.0);
        let b = iv(10.0, 20.0);
        // Meets: shares exactly one point.
        assert_eq!(a.relation(b), AllenRelation::Meets);
        assert!(a.intersects(b));
        assert!(!a.satisfies(AllenRelation::Overlaps, b));
        // The thesis's Figure 4.16 example: does [20, 616] overlap [10, 700]?
        let tag_range = iv(20.0, 616.0);
        let query = iv(10.0, 700.0);
        assert!(tag_range.intersects(query));
        assert_eq!(tag_range.relation(query), AllenRelation::During);
    }

    #[test]
    fn intersection_and_hull() {
        let a = iv(0.0, 10.0);
        let b = iv(5.0, 20.0);
        assert_eq!(a.intersection(b), Some(iv(5.0, 10.0)));
        assert_eq!(a.hull(b), iv(0.0, 20.0));
        let c = iv(30.0, 40.0);
        assert_eq!(a.intersection(c), None);
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(Interval::new(5.0, 1.0).is_err());
        assert!(Interval::new(f64::NAN, 1.0).is_err());
        assert_eq!(Interval::spanning(5.0, 1.0), iv(1.0, 5.0));
    }

    #[test]
    fn symbols_match_table_4_1() {
        assert_eq!(AllenRelation::Before.symbol(), "b");
        assert_eq!(AllenRelation::After.symbol(), "bi");
        assert_eq!(AllenRelation::Overlaps.symbol(), "o");
        assert_eq!(AllenRelation::Equals.symbol(), "e");
        assert_eq!(AllenRelation::parse("o"), Some(AllenRelation::Overlaps));
        assert_eq!(
            AllenRelation::parse("overlaps"),
            Some(AllenRelation::Overlaps)
        );
        assert_eq!(AllenRelation::parse("zzz"), None);
    }

    #[test]
    fn point_interval_ties_resolve_deterministically() {
        let point = iv(10.0, 10.0);
        let b = iv(10.0, 20.0);
        // Both `meets` and `starts` hold definitionally; precedence picks
        // `meets` (earlier in ALL).
        assert_eq!(point.relation(b), AllenRelation::Meets);
        assert!(point.is_point());
    }
}
