//! An xProfiler-style pooled differential comparison (thesis §2.3.3).
//!
//! The NCBI SAGE site's *xProfiler* "is designed for differential-type
//! analyses, for pooling and comparing SAGE libraries. The user can place
//! similar libraries into one of the two groups … Comparisons are then made
//! between the two groups using a statistical test developed specifically
//! for SAGE data." The thesis's critique: "the user has to guess which SAGE
//! libraries should form a group", whereas GEA *mines* the groups.
//!
//! This module reproduces the xProfiler workflow as a comparison baseline:
//! pool each group's (normalized) levels per tag, and test the difference
//! of pooled proportions with a two-proportion z-test — the frequentist
//! stand-in for the site's SAGE-specific test, adequate at pooled depths of
//! hundreds of thousands of tags. The `repro` harness contrasts its
//! candidate lists with GEA's gap-based lists under correct and naive
//! groupings.

use gea_sage::library::LibraryId;
use gea_sage::tag::Tag;

use crate::enum_table::EnumTable;

/// One tag's pooled comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct XProfilerRow {
    /// The tag.
    pub tag: Tag,
    /// Tag number in the table's universe.
    pub tag_no: u32,
    /// Pooled level in group A (sum of normalized levels).
    pub pooled_a: f64,
    /// Pooled level in group B.
    pub pooled_b: f64,
    /// log2 of the (pseudocounted) proportion ratio A/B.
    pub log2_ratio: f64,
    /// Two-proportion z statistic (positive: enriched in A).
    pub z_score: f64,
    /// Two-sided p-value under the normal approximation.
    pub p_value: f64,
}

/// A full pooled comparison, sorted by ascending p-value.
#[derive(Debug, Clone, PartialEq)]
pub struct XProfilerResult {
    /// Rows for every tag expressed in either pool, most significant first.
    pub rows: Vec<XProfilerRow>,
    /// Total pooled mass of group A.
    pub total_a: f64,
    /// Total pooled mass of group B.
    pub total_b: f64,
}

impl XProfilerResult {
    /// Rows significant at level `alpha` with a Bonferroni correction over
    /// the tested tags.
    pub fn significant(&self, alpha: f64) -> Vec<&XProfilerRow> {
        let threshold = alpha / self.rows.len().max(1) as f64;
        self.rows.iter().filter(|r| r.p_value < threshold).collect()
    }

    /// The row for one tag, if it was tested.
    pub fn row_for(&self, tag: Tag) -> Option<&XProfilerRow> {
        self.rows.iter().find(|r| r.tag == tag)
    }
}

/// Complementary error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e−7)
/// extended over the real line by symmetry.
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let val = poly * (-x * x).exp();
    if sign_negative {
        2.0 - val
    } else {
        val
    }
}

/// Two-sided p-value for a standard-normal statistic.
fn two_sided_p(z: f64) -> f64 {
    erfc(z.abs() / std::f64::consts::SQRT_2)
}

/// Pool and compare two library groups over every tag of the table.
///
/// Panics when either group is empty or the groups overlap.
pub fn compare_pools(
    table: &EnumTable,
    group_a: &[LibraryId],
    group_b: &[LibraryId],
) -> XProfilerResult {
    assert!(
        !group_a.is_empty() && !group_b.is_empty(),
        "both pools need libraries"
    );
    assert!(
        group_a.iter().all(|a| !group_b.contains(a)),
        "pools must be disjoint"
    );
    let pool = |group: &[LibraryId], tid| -> f64 {
        group
            .iter()
            .map(|&l| table.matrix.value(tid, l))
            .sum::<f64>()
    };
    let mut total_a = 0.0;
    let mut total_b = 0.0;
    let mut raw = Vec::with_capacity(table.n_tags());
    for tid in table.matrix.tag_ids() {
        let a = pool(group_a, tid);
        let b = pool(group_b, tid);
        total_a += a;
        total_b += b;
        raw.push((tid, a, b));
    }
    assert!(total_a > 0.0 && total_b > 0.0, "pools must have mass");

    let mut rows = Vec::with_capacity(raw.len());
    for (tid, a, b) in raw {
        if a == 0.0 && b == 0.0 {
            continue;
        }
        let pa = a / total_a;
        let pb = b / total_b;
        // Pooled-proportion z-test.
        let p = (a + b) / (total_a + total_b);
        let se = (p * (1.0 - p) * (1.0 / total_a + 1.0 / total_b)).sqrt();
        let z = if se > 0.0 { (pa - pb) / se } else { 0.0 };
        // Pseudocount of one normalized unit per pool for the ratio.
        let log2_ratio = ((a + 1.0) / (total_a + 1.0) / ((b + 1.0) / (total_b + 1.0))).log2();
        rows.push(XProfilerRow {
            tag: table.matrix.tag_of(tid),
            tag_no: tid.0,
            pooled_a: a,
            pooled_b: b,
            log2_ratio,
            z_score: z,
            p_value: two_sided_p(z),
        });
    }
    rows.sort_by(|x, y| {
        x.p_value
            .total_cmp(&y.p_value)
            .then(y.z_score.abs().total_cmp(&x.z_score.abs()))
            .then(x.tag.cmp(&y.tag))
    });
    XProfilerResult {
        rows,
        total_a,
        total_b,
    }
}

/// Convenience: pool by neoplastic state within a table — the "guess" a
/// naive xProfiler user makes (all cancerous vs all normal).
pub fn compare_cancer_vs_normal(table: &EnumTable) -> XProfilerResult {
    use gea_sage::NeoplasticState;
    let cancer: Vec<LibraryId> = table.library_ids_where(|m| m.state == NeoplasticState::Cancerous);
    let normal: Vec<LibraryId> = table.library_ids_where(|m| m.state == NeoplasticState::Normal);
    compare_pools(table, &cancer, &normal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_sage::corpus::library_meta;
    use gea_sage::library::{NeoplasticState, TissueSource};
    use gea_sage::tag::TagUniverse;
    use gea_sage::{ExpressionMatrix, TissueType};

    fn table() -> EnumTable {
        let universe = TagUniverse::from_tags(
            ["AAAAAAAAAA", "CCCCCCCCCC", "GGGGGGGGGG"]
                .iter()
                .map(|s| s.parse().unwrap()),
        );
        let libs = (0..6)
            .map(|i| {
                library_meta(
                    &format!("L{i}"),
                    TissueType::Brain,
                    if i < 3 {
                        NeoplasticState::Cancerous
                    } else {
                        NeoplasticState::Normal
                    },
                    TissueSource::BulkTissue,
                )
            })
            .collect();
        EnumTable::new(
            "E",
            ExpressionMatrix::from_rows(
                universe,
                libs,
                // Every library sums to 1,500 — proportions are only
                // meaningful on normalized libraries (as GEA's cleaned
                // matrix guarantees); unequal totals would leak
                // compositional artifacts into the balanced tag.
                vec![
                    // Strongly enriched in the first group.
                    vec![900.0, 950.0, 920.0, 100.0, 120.0, 90.0],
                    // Balanced.
                    vec![500.0, 480.0, 510.0, 505.0, 495.0, 500.0],
                    // Depleted in the first group.
                    vec![100.0, 70.0, 70.0, 895.0, 885.0, 910.0],
                ],
            ),
        )
    }

    #[test]
    fn erfc_sanity() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(3.0) < 3e-5);
        assert!((erfc(-1.0) + erfc(1.0) - 2.0).abs() < 1e-6);
        // Φ(1.96) two-sided ≈ 0.05.
        assert!((two_sided_p(1.96) - 0.05).abs() < 0.001);
    }

    #[test]
    fn detects_differential_tags() {
        let t = table();
        let result = compare_cancer_vs_normal(&t);
        assert_eq!(result.rows.len(), 3);
        let a = result.row_for("AAAAAAAAAA".parse().unwrap()).unwrap();
        assert!(a.z_score > 2.0, "enriched tag z = {}", a.z_score);
        assert!(a.log2_ratio > 1.0);
        let g = result.row_for("GGGGGGGGGG".parse().unwrap()).unwrap();
        assert!(g.z_score < -2.0, "depleted tag z = {}", g.z_score);
        let c = result.row_for("CCCCCCCCCC".parse().unwrap()).unwrap();
        assert!(c.z_score.abs() < 1.0, "balanced tag z = {}", c.z_score);
        // Sorted by significance: the balanced tag comes last.
        assert_eq!(result.rows.last().unwrap().tag, c.tag);
    }

    #[test]
    fn significance_filter_is_bonferroni_corrected() {
        let t = table();
        let result = compare_cancer_vs_normal(&t);
        let hits = result.significant(0.05);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|r| r.p_value < 0.05 / 3.0));
    }

    #[test]
    fn direction_flips_with_group_order() {
        let t = table();
        let cancer: Vec<LibraryId> = (0..3).map(LibraryId).collect();
        let normal: Vec<LibraryId> = (3..6).map(LibraryId).collect();
        let forward = compare_pools(&t, &cancer, &normal);
        let backward = compare_pools(&t, &normal, &cancer);
        let tag = "AAAAAAAAAA".parse().unwrap();
        let f = forward.row_for(tag).unwrap();
        let b = backward.row_for(tag).unwrap();
        assert!((f.z_score + b.z_score).abs() < 1e-9);
        assert!((f.p_value - b.p_value).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_pools_rejected() {
        let t = table();
        compare_pools(&t, &[LibraryId(0)], &[LibraryId(0)]);
    }

    #[test]
    #[should_panic(expected = "need libraries")]
    fn empty_pool_rejected() {
        let t = table();
        compare_pools(&t, &[], &[LibraryId(0)]);
    }
}
