//! GAP tables and the diff() operator (thesis §3.2.2).
//!
//! A GAP table summarizes the difference between two SUMY tables, one row
//! per tag common to both. The gap level for a tag is
//!
//! ```text
//! gap = (μ_hi − σ_hi) − (μ_lo + σ_lo)
//! ```
//!
//! where the `hi` side is the SUMY table with the higher average. When the
//! two `[μ − σ, μ + σ]` bands do not overlap the gap is that positive
//! separation, *signed*: positive if the **first** SUMY table has the higher
//! average, negative otherwise. When the bands overlap, the gap is NULL
//! (Figure 3.4) — such tags are usually filtered out before candidate-gene
//! inspection.

use gea_sage::tag::Tag;

use crate::sumy::{SumyRow, SumyTable};

/// One GAP row.
#[derive(Debug, Clone, PartialEq)]
pub struct GapRow {
    /// The tag.
    pub tag: Tag,
    /// Display tag number (taken from the first SUMY table's row).
    pub tag_no: u32,
    /// Gap levels, one per gap column. A single-`diff` table has one; set
    /// operations can produce several (Figure 3.6's GAP₄ has two).
    pub gaps: Vec<Option<f64>>,
}

impl GapRow {
    /// The first gap column (the common case).
    pub fn gap(&self) -> Option<f64> {
        self.gaps.first().copied().flatten()
    }
}

/// A GAP table: named, one row per tag, one or more gap columns.
#[derive(Debug, Clone, PartialEq)]
pub struct GapTable {
    /// Table name, e.g. `brain35k_4canvsnor_gap`.
    pub name: String,
    /// Names of the gap columns (`["Gap"]` for a plain diff; set operations
    /// label columns by their source table).
    pub columns: Vec<String>,
    rows: Vec<GapRow>,
}

impl GapTable {
    /// Build from rows; sorted by tag, duplicates rejected, and every row
    /// must have one gap per column.
    pub fn new(name: &str, columns: Vec<String>, mut rows: Vec<GapRow>) -> GapTable {
        assert!(
            !columns.is_empty(),
            "GAP table needs at least one gap column"
        );
        for r in &rows {
            assert_eq!(
                r.gaps.len(),
                columns.len(),
                "row {} has {} gaps for {} columns",
                r.tag,
                r.gaps.len(),
                columns.len()
            );
        }
        rows.sort_by_key(|r| r.tag);
        for pair in rows.windows(2) {
            assert_ne!(pair[0].tag, pair[1].tag, "duplicate tag in GAP table");
        }
        GapTable {
            name: name.to_string(),
            columns,
            rows,
        }
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows in tag order.
    pub fn rows(&self) -> &[GapRow] {
        &self.rows
    }

    /// The row for `tag`, if present.
    pub fn row_for(&self, tag: Tag) -> Option<&GapRow> {
        self.rows
            .binary_search_by_key(&tag, |r| r.tag)
            .ok()
            .map(|i| &self.rows[i])
    }

    /// σ on GAP: keep rows satisfying `keep` (§3.2.3's selection operator).
    pub fn select(&self, name: &str, mut keep: impl FnMut(&GapRow) -> bool) -> GapTable {
        GapTable {
            name: name.to_string(),
            columns: self.columns.clone(),
            rows: self.rows.iter().filter(|r| keep(r)).cloned().collect(),
        }
    }

    /// Keep only rows whose first gap is non-NULL — the usual step before
    /// sorting and plotting ("we remove all the tags with overlapping
    /// ranges", §4.3.1 step 7).
    pub fn drop_null_gaps(&self, name: &str) -> GapTable {
        self.select(name, |r| r.gap().is_some())
    }

    /// Keep rows with a negative first gap (lower expression in the first
    /// SUMY table) — Case 3's "selection to keep only the tags with
    /// negative gap values".
    pub fn negative_gaps(&self, name: &str) -> GapTable {
        self.select(name, |r| matches!(r.gap(), Some(g) if g < 0.0))
    }

    /// Keep rows with a positive first gap.
    pub fn positive_gaps(&self, name: &str) -> GapTable {
        self.select(name, |r| matches!(r.gap(), Some(g) if g > 0.0))
    }

    /// π on GAP: only the tag list survives (Case 3 "applied 'projection'
    /// to retain only the tags").
    pub fn project_tags(&self) -> Vec<Tag> {
        self.rows.iter().map(|r| r.tag).collect()
    }
}

/// The diff() operator: `GAP = diff(SUMY₁, SUMY₂)` over the tags common to
/// both tables.
pub fn diff(name: &str, first: &SumyTable, second: &SumyTable) -> GapTable {
    let mut rows = Vec::new();
    for row1 in first.rows() {
        let Some(row2) = second.row_for(row1.tag) else {
            continue;
        };
        rows.push(GapRow {
            tag: row1.tag,
            tag_no: row1.tag_no,
            gaps: vec![gap_value(row1, row2)],
        });
    }
    GapTable::new(name, vec!["Gap".to_string()], rows)
}

/// The gap level between two SUMY rows for the same tag (Figure 3.4):
/// `(μ_hi − σ_hi) − (μ_lo + σ_lo)`, signed positive when `first` has the
/// higher average, NULL (None) when the σ-bands overlap.
pub fn gap_value(first: &SumyRow, second: &SumyRow) -> Option<f64> {
    let (hi, lo, sign) = if first.average >= second.average {
        (first, second, 1.0)
    } else {
        (second, first, -1.0)
    };
    let separation = (hi.average - hi.std_dev) - (lo.average + lo.std_dev);
    if separation > 0.0 {
        Some(sign * separation)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use std::collections::BTreeMap;

    fn row(tag: &str, no: u32, lo: f64, hi: f64, avg: f64, sd: f64) -> SumyRow {
        SumyRow {
            tag: tag.parse().unwrap(),
            tag_no: no,
            range: Interval::new(lo, hi).unwrap(),
            average: avg,
            std_dev: sd,
            extras: BTreeMap::new(),
        }
    }

    /// The exact worked example of Figure 3.5.
    fn figure_3_5_tables() -> (SumyTable, SumyTable) {
        // Tag names stand in for the thesis's abstract Tag1..Tag5.
        let sumy1 = SumyTable::new(
            "SUMY1",
            vec![
                row("AAAAAAAAAA", 1, 5.0, 5.0, 5.0, 0.0),      // Tag1
                row("CCCCCCCCCC", 2, 0.0, 7.0, 3.0, 1.0),      // Tag2
                row("GGGGGGGGGG", 3, 10.0, 120.0, 70.0, 15.0), // Tag3
                row("TTTTTTTTTT", 4, 0.0, 20.0, 10.0, 4.0),    // Tag4
            ],
        );
        let sumy2 = SumyTable::new(
            "SUMY2",
            vec![
                row("AAAAAAAAAA", 1, 0.0, 14.0, 7.0, 1.0),
                row("GGGGGGGGGG", 3, 10.0, 130.0, 60.0, 25.0),
                row("TTTTTTTTTT", 4, 0.0, 12.0, 3.0, 1.0),
                row("ACGTACGTAC", 5, 0.0, 50.0, 20.0, 15.0), // Tag5
            ],
        );
        (sumy1, sumy2)
    }

    #[test]
    fn figure_3_5() {
        let (s1, s2) = figure_3_5_tables();
        let gap = diff("GAP", &s1, &s2);
        // Only the common tags Tag1, Tag3, Tag4 appear.
        assert_eq!(gap.len(), 3);
        assert!(gap.row_for("CCCCCCCCCC".parse().unwrap()).is_none());
        assert!(gap.row_for("ACGTACGTAC".parse().unwrap()).is_none());
        // Tag1: (7−1) − (5+0) = 1, negative because SUMY1 has the lower
        // average → −1.
        let t1 = gap.row_for("AAAAAAAAAA".parse().unwrap()).unwrap();
        assert_eq!(t1.gap(), Some(-1.0));
        // Tag3: bands overlap → NULL.
        let t3 = gap.row_for("GGGGGGGGGG".parse().unwrap()).unwrap();
        assert_eq!(t3.gap(), None);
        // Tag4: (10−4) − (3+1) = 2, positive (SUMY1 higher).
        let t4 = gap.row_for("TTTTTTTTTT".parse().unwrap()).unwrap();
        assert_eq!(t4.gap(), Some(2.0));
    }

    #[test]
    fn gap_is_antisymmetric() {
        let (s1, s2) = figure_3_5_tables();
        let forward = diff("f", &s1, &s2);
        let backward = diff("b", &s2, &s1);
        for fr in forward.rows() {
            let br = backward.row_for(fr.tag).unwrap();
            match (fr.gap(), br.gap()) {
                (Some(f), Some(b)) => assert_eq!(f, -b, "tag {}", fr.tag),
                (None, None) => {}
                other => panic!("nullness differs for {}: {other:?}", fr.tag),
            }
        }
    }

    #[test]
    fn touching_bands_are_overlap() {
        // μ₁ = 10, σ₁ = 2 → band up to 12... band down to 8; μ₂ = 5, σ₂ = 3
        // → band up to 8. Separation = 8 − 8 = 0: defined as overlap (NULL).
        let a = row("AAAAAAAAAA", 1, 0.0, 20.0, 10.0, 2.0);
        let b = row("AAAAAAAAAA", 1, 0.0, 10.0, 5.0, 3.0);
        assert_eq!(gap_value(&a, &b), None);
    }

    #[test]
    fn selection_helpers() {
        let (s1, s2) = figure_3_5_tables();
        let gap = diff("g", &s1, &s2);
        assert_eq!(gap.drop_null_gaps("nn").len(), 2);
        assert_eq!(gap.negative_gaps("neg").len(), 1);
        assert_eq!(gap.positive_gaps("pos").len(), 1);
        assert_eq!(gap.project_tags().len(), 3);
    }

    #[test]
    fn equal_rows_have_null_gap() {
        let a = row("AAAAAAAAAA", 1, 0.0, 10.0, 5.0, 1.0);
        assert_eq!(gap_value(&a, &a), None);
    }

    #[test]
    fn zero_stddev_non_overlapping() {
        let a = row("AAAAAAAAAA", 1, 8.0, 8.0, 8.0, 0.0);
        let b = row("AAAAAAAAAA", 1, 3.0, 3.0, 3.0, 0.0);
        assert_eq!(gap_value(&a, &b), Some(5.0));
        assert_eq!(gap_value(&b, &a), Some(-5.0));
    }

    #[test]
    #[should_panic(expected = "needs at least one gap column")]
    fn empty_columns_rejected() {
        GapTable::new("bad", vec![], vec![]);
    }
}
