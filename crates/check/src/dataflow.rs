//! The dataflow pass: definition/use bookkeeping over one linear script.
//!
//! Three hazards, all warnings (the engine would execute these scripts,
//! they are just wasteful or misleading):
//!
//! * **dead assignment** — a table defined and never read before the
//!   script ends;
//! * **discarded by load** — a table defined and never read before a
//!   `load`/`open` replaces the whole session, so the work is thrown away;
//! * **stale export** — a table exported to CSV and then mutated, so the
//!   file no longer reflects the session.
//!
//! Only *pure definitions* (dataset/custom/select/project/gap and the
//! 3-argument populate) are tracked for deadness: verbs like `topgap` and
//! `compare` print their result — creating the table is not their only
//! effect — and machine-derived names (`groups` outputs, mined fascicles)
//! were never typed by the user, so flagging them would be noise.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;

#[derive(Debug, Clone)]
struct DefRecord {
    line: usize,
    read: bool,
}

/// Per-name definition/use state, fed by the analyzer as it walks the
/// script.
#[derive(Debug, Clone, Default)]
pub struct Dataflow {
    defs: BTreeMap<String, DefRecord>,
    exports: BTreeMap<String, usize>,
}

impl Dataflow {
    /// A tracked pure definition.
    pub fn define(&mut self, line: usize, name: &str) {
        self.defs
            .insert(name.to_string(), DefRecord { line, read: false });
    }

    /// Any reference that consumes the name.
    pub fn read(&mut self, name: &str) {
        if let Some(rec) = self.defs.get_mut(name) {
            rec.read = true;
        }
    }

    /// `export <name> <path>`: counts as a read, and arms the stale-export
    /// hazard for later mutations.
    pub fn export(&mut self, line: usize, name: &str) {
        self.read(name);
        self.exports.insert(name.to_string(), line);
    }

    /// A mutation of `name` (delete). Warns if the name was exported
    /// earlier — the CSV on disk no longer reflects the session.
    pub fn mutated(&mut self, line: usize, name: &str) -> Option<Diagnostic> {
        let at = self.exports.remove(name)?;
        Some(Diagnostic::warning(
            line,
            "stale-export",
            format!(
                "{name:?} was exported at line {at}; this mutation makes the exported CSV stale"
            ),
        ))
    }

    /// Stop tracking a name (cascade delete removed it).
    pub fn forget(&mut self, name: &str) {
        self.defs.remove(name);
        self.exports.remove(name);
    }

    /// The whole session is replaced (`load <dir>` or a re-`open`):
    /// every definition not yet read was computed for nothing.
    pub fn replaced(&mut self, line: usize, verb: &str) -> Vec<Diagnostic> {
        let defs = std::mem::take(&mut self.defs);
        self.exports.clear();
        defs.into_iter()
            .filter(|(_, rec)| !rec.read)
            .map(|(name, rec)| {
                Diagnostic::warning(
                    rec.line,
                    "discarded-by-load",
                    format!(
                        "{name:?} is never read before `{verb}` replaces the session at line {line}"
                    ),
                )
            })
            .collect()
    }

    /// End of script: definitions never read are dead assignments.
    pub fn finish(&mut self) -> Vec<Diagnostic> {
        std::mem::take(&mut self.defs)
            .into_iter()
            .filter(|(_, rec)| !rec.read)
            .map(|(name, rec)| {
                Diagnostic::warning(
                    rec.line,
                    "dead-assignment",
                    format!("{name:?} is defined but never read"),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unread_definitions_are_dead() {
        let mut f = Dataflow::default();
        f.define(1, "E");
        f.define(2, "F");
        f.read("E");
        let dead = f.finish();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].line, 2);
        assert_eq!(dead[0].code, "dead-assignment");
    }

    #[test]
    fn load_discards_unread_work() {
        let mut f = Dataflow::default();
        f.define(1, "E");
        f.define(2, "F");
        f.read("F");
        let lost = f.replaced(3, "load");
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].line, 1);
        assert_eq!(lost[0].code, "discarded-by-load");
        // The replacement emptied the tracking: nothing is dead at finish.
        assert!(f.finish().is_empty());
    }

    #[test]
    fn export_then_mutate_is_stale() {
        let mut f = Dataflow::default();
        f.define(1, "G");
        f.export(2, "G");
        let d = f.mutated(3, "G").expect("stale export");
        assert_eq!(d.code, "stale-export");
        assert_eq!(d.line, 3);
        // Export counted as a read: not dead. And the hazard fires once.
        assert!(f.mutated(4, "G").is_none());
        assert!(f.finish().is_empty());
    }

    #[test]
    fn forget_drops_all_tracking() {
        let mut f = Dataflow::default();
        f.define(1, "E");
        f.export(2, "E");
        f.forget("E");
        assert!(f.mutated(3, "E").is_none());
        assert!(f.finish().is_empty());
    }
}
