//! Static cost intervals: the second tier-2 abstract domain.
//!
//! Each table name is abstracted to a cardinality [`Interval`] (how many
//! rows it can hold), seeded from a live session's actual table sizes
//! ([`CostSeed::from_session`]) or from the thesis-scale defaults for
//! standalone scripts. [`cost_pipeline`] pushes the intervals through a
//! pipeline with per-verb transfer functions and charges each command a
//! cost in abstract *row-visit* units via [`CostModel`] — deliberately
//! hardware-free, so a budget (`gea-server --max-cost`) means the same
//! thing on every host. The model's relative weights are calibrated,
//! best-effort, from the repo's `BENCH_*.json` trajectory; absent or
//! malformed bench files fall back to the built-in coefficients.
//!
//! Consumers: `gea-cli --check --cost`, the server `check` verb's cost
//! section, the `--max-cost`/`EBUDGET` admission gate, and `gea-opt`'s
//! index-vs-scan `populate` oracle.

use std::collections::BTreeMap;

use gea_core::session::GeaSession;

use crate::gql::{self, GqlCommand, Request};

/// A closed cardinality interval `[lo, hi]` in rows. All arithmetic
/// saturates: the domain tops out rather than wrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Fewest rows the table can hold.
    pub lo: u64,
    /// Most rows the table can hold.
    pub hi: u64,
}

impl Interval {
    /// The exact cardinality `n`.
    pub const fn point(n: u64) -> Interval {
        Interval { lo: n, hi: n }
    }

    /// `[lo, hi]`, normalized so `lo <= hi`.
    pub const fn range(lo: u64, hi: u64) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// Pointwise minimum (intersection-shaped operators).
    pub fn min(self, other: Interval) -> Interval {
        Interval::range(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Pointwise saturating sum (union-shaped operators).
    pub fn join_sum(self, other: Interval) -> Interval {
        Interval::range(
            self.lo.saturating_add(other.lo),
            self.hi.saturating_add(other.hi),
        )
    }

    /// Drop the lower bound to zero (filters can reject everything).
    pub fn may_be_empty(self) -> Interval {
        Interval::range(0, self.hi)
    }

    /// Cap the upper bound.
    pub fn clamp_hi(self, hi: u64) -> Interval {
        Interval::range(self.lo.min(hi), self.hi.min(hi))
    }

    /// `"n"` for a point, `"lo..hi"` otherwise.
    pub fn render(&self) -> String {
        if self.lo == self.hi {
            self.lo.to_string()
        } else {
            format!("{}..{}", self.lo, self.hi)
        }
    }
}

/// Corpus scalars plus per-name cardinalities the interpretation starts
/// from.
#[derive(Debug, Clone)]
pub struct CostSeed {
    /// Libraries in the corpus (the extensional axis).
    pub libraries: u64,
    /// Tags in the universe (the intensional axis).
    pub tags: u64,
    names: BTreeMap<String, Interval>,
}

impl CostSeed {
    /// Thesis-published scale, for standalone scripts where no session
    /// exists yet: the SAGE corpus of chapter 3 (hundreds of libraries,
    /// tens of thousands of distinct tags).
    pub fn script_default() -> CostSeed {
        CostSeed {
            libraries: 250,
            tags: 25_000,
            names: BTreeMap::new(),
        }
    }

    /// Seed from a live session's actual table sizes, so the server
    /// `check` verb predicts against real cardinalities.
    pub fn from_session(session: &GeaSession) -> CostSeed {
        let mut names = BTreeMap::new();
        let mut tags = 0u64;
        for (name, table) in session.enum_tables() {
            names.insert(name.clone(), Interval::point(table.n_libraries() as u64));
            tags = tags.max(table.n_tags() as u64);
        }
        for (name, table) in session.sumy_tables() {
            names.insert(name.clone(), Interval::point(table.rows().len() as u64));
        }
        for (name, table) in session.gap_tables() {
            names.insert(name.clone(), Interval::point(table.rows().len() as u64));
        }
        for name in session.fascicle_records().keys() {
            names.entry(name.clone()).or_insert(Interval::point(1));
        }
        CostSeed {
            libraries: session.corpus().len() as u64,
            tags: if tags > 0 { tags } else { 1 },
            names,
        }
    }

    /// The cardinality bound for a name, defaulting to "anything up to
    /// the larger axis" when the name is unknown (undefined names are the
    /// world pass's problem, not the cost pass's).
    fn lookup(&self, env: &BTreeMap<String, Interval>, name: &str) -> Interval {
        env.get(name)
            .or_else(|| self.names.get(name))
            .copied()
            .unwrap_or(Interval::range(0, self.libraries.max(self.tags)))
    }
}

/// Per-verb cost coefficients, in abstract row-visit units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost per library visited by a corpus scan (dataset/custom/select).
    pub scan_weight: u64,
    /// Cost per candidate×batch cell visited by `mine`.
    pub mine_weight: u64,
    /// Cost per row written to or read from the filesystem.
    pub io_weight: u64,
    /// Cost per library tested by the `populate` operator's full scan.
    pub populate_scan_weight: u64,
    /// Cost per library touched while *building* a populate index; the
    /// indexed probe then verifies only the candidate subset.
    pub populate_index_weight: u64,
    /// Cost multiplier for `xprofiler`'s pooled two-sided comparison.
    pub xprofiler_weight: u64,
}

impl CostModel {
    /// The built-in coefficients (used when no bench trajectory is
    /// available, and as the base the calibration adjusts).
    pub fn default_coefficients() -> CostModel {
        CostModel {
            scan_weight: 1,
            mine_weight: 8,
            io_weight: 2,
            populate_scan_weight: 2,
            populate_index_weight: 1,
            xprofiler_weight: 4,
        }
    }

    /// Calibrate from the repo's bench trajectory, best-effort: reads
    /// `BENCH_populate.json` under `dir` and, if it carries both a scan
    /// and an indexed variant, sets the populate weights to their
    /// observed ratio (clamped to `1..=16`). Any missing or malformed
    /// file silently keeps the defaults — the bench data tunes the model,
    /// it is never load-bearing.
    pub fn calibrated(dir: &std::path::Path) -> CostModel {
        let mut model = CostModel::default_coefficients();
        let Ok(text) = std::fs::read_to_string(dir.join("BENCH_populate.json")) else {
            return model;
        };
        let scan = variant_wall_ms(&text, "scan").or_else(|| variant_wall_ms(&text, "columnar"));
        let indexed = variant_wall_ms(&text, "indexed");
        if let (Some(scan), Some(indexed)) = (scan, indexed) {
            if indexed > 0.0 && scan > 0.0 {
                let ratio = (scan / indexed).clamp(1.0, 16.0);
                model.populate_scan_weight = ratio.round() as u64;
                model.populate_index_weight = 1;
            }
        }
        model
    }

    /// The oracle `gea-opt`'s index-vs-scan `populate` rule consults:
    /// with `constraints` SUMY conditions over `libraries` candidates,
    /// is building a top-entropy index predicted cheaper than the full
    /// scan? Both plans are byte-identical; a wrong answer here costs
    /// time, never correctness.
    pub fn populate_prefers_index(&self, libraries: u64, constraints: u64) -> bool {
        let scan = libraries
            .saturating_mul(constraints.max(1))
            .saturating_mul(self.populate_scan_weight);
        // Fixed setup charge, a build pass over the candidates, then a
        // verify pass on roughly an eighth of them (the index prunes the
        // rest). The setup charge keeps tiny inputs on the scan path.
        let indexed = 256u64
            .saturating_add(libraries.saturating_mul(self.populate_index_weight))
            .saturating_add(libraries / 8 * constraints.max(1));
        indexed < scan
    }
}

/// The predicted rows and cost of one command in a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandCost {
    /// 1-based position (pipeline index or script line).
    pub index: usize,
    /// The verb.
    pub verb: &'static str,
    /// Predicted output cardinality.
    pub rows: Interval,
    /// Predicted cost in abstract units.
    pub cost: u64,
}

/// Per-command costs plus the pipeline total.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CostReport {
    /// One entry per costed command, in order.
    pub per_command: Vec<CommandCost>,
    /// Saturating sum of the per-command costs.
    pub total: u64,
}

impl CostReport {
    /// Human rendering, one line per command plus the total:
    ///
    /// ```text
    /// predicted cost (abstract row-visit units):
    ///   1: dataset  rows 1..250  cost 250
    /// total: 250
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::from("predicted cost (abstract row-visit units):");
        for c in &self.per_command {
            out.push_str(&format!(
                "\n  {}: {}  rows {}  cost {}",
                c.index,
                c.verb,
                c.rows.render(),
                c.cost
            ));
        }
        out.push_str(&format!("\ntotal: {}", self.total));
        out
    }
}

/// Abstract-interpret a pipeline: push cardinality intervals through the
/// per-verb transfer functions, charging each command its cost.
pub fn cost_pipeline(model: &CostModel, seed: &CostSeed, cmds: &[GqlCommand]) -> CostReport {
    let mut env: BTreeMap<String, Interval> = BTreeMap::new();
    let mut report = CostReport::default();
    for (i, cmd) in cmds.iter().enumerate() {
        cost_command(model, seed, &mut env, i + 1, cmd, &mut report);
    }
    report
}

/// Cost a whole script (the `gea-cli --check --cost` entry point):
/// non-GQL lines (session control, comments, blanks, parse failures) are
/// skipped — the checker reports those; this pass only predicts work.
pub fn cost_script(model: &CostModel, seed: &CostSeed, text: &str) -> CostReport {
    let mut env: BTreeMap<String, Interval> = BTreeMap::new();
    let mut report = CostReport::default();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Ok(Some(Request::Gql(cmd))) = gql::parse(trimmed) {
            cost_command(model, seed, &mut env, i + 1, &cmd, &mut report);
        }
    }
    report
}

fn cost_command(
    model: &CostModel,
    seed: &CostSeed,
    env: &mut BTreeMap<String, Interval>,
    index: usize,
    cmd: &GqlCommand,
    report: &mut CostReport,
) {
    let libs = Interval::range(0, seed.libraries);
    let (rows, cost) = match cmd {
        GqlCommand::Tissues => (libs, seed.libraries.saturating_mul(model.scan_weight)),
        GqlCommand::Dataset { name, .. } => {
            let rows = Interval::range(1, seed.libraries);
            env.insert(name.clone(), rows);
            (rows, seed.libraries.saturating_mul(model.scan_weight))
        }
        GqlCommand::Custom { name, libraries } => {
            let rows = Interval::point(libraries.len() as u64).clamp_hi(seed.libraries);
            env.insert(name.clone(), rows);
            (rows, seed.libraries.saturating_mul(model.scan_weight))
        }
        GqlCommand::Select {
            name,
            dataset,
            libraries,
        } => {
            let input = seed.lookup(env, dataset);
            let rows = input.clamp_hi(libraries.len() as u64).may_be_empty();
            env.insert(name.clone(), rows);
            (rows, input.hi.saturating_mul(model.scan_weight))
        }
        GqlCommand::Project { name, dataset, .. } => {
            // Projection keeps every library; only the tag axis narrows.
            let rows = seed.lookup(env, dataset);
            env.insert(name.clone(), rows);
            (rows, rows.hi.saturating_mul(model.scan_weight))
        }
        GqlCommand::Mine { dataset, batch, .. } => {
            let input = seed.lookup(env, dataset);
            let rows = Interval::range(0, *batch as u64);
            let cost = input
                .hi
                .saturating_mul((*batch as u64).max(1))
                .saturating_mul(model.mine_weight);
            (rows, cost)
        }
        GqlCommand::MineWith { dataset, .. } => {
            let input = seed.lookup(env, dataset);
            let rows = Interval::range(0, input.hi);
            let cost = input
                .hi
                .saturating_mul(seed.tags.max(1))
                .saturating_mul(model.mine_weight)
                / 8; // backends batch internally; charge an amortized pass
            (rows, cost)
        }
        GqlCommand::Fascicles => (Interval::range(0, seed.libraries), 1),
        GqlCommand::Purity(f) => {
            let rows = seed.lookup(env, f);
            (rows, seed.libraries.saturating_mul(model.scan_weight))
        }
        GqlCommand::Groups(f) => {
            // Three derived SUMYs, each bounded by the tag universe.
            let rows = Interval::range(0, seed.tags);
            env.insert(format!("{f}CancerFasTbl"), rows);
            env.insert(format!("{f}CanNotInFasTbl"), rows);
            env.insert(format!("{f}NormalTable"), rows);
            (
                rows,
                seed.libraries
                    .saturating_mul(seed.tags.max(1))
                    .saturating_mul(model.scan_weight)
                    / 8,
            )
        }
        GqlCommand::Gap { name, sumy1, sumy2 } => {
            let a = seed.lookup(env, sumy1);
            let b = seed.lookup(env, sumy2);
            // A gap row needs the tag on at least one side.
            let rows = a.join_sum(b).clamp_hi(seed.tags).may_be_empty();
            env.insert(name.clone(), rows);
            (
                rows,
                a.hi.saturating_add(b.hi).saturating_mul(model.scan_weight),
            )
        }
        GqlCommand::TopGap { gap, x } => {
            let input = seed.lookup(env, gap);
            let rows = input.clamp_hi(*x as u64).may_be_empty();
            env.insert(format!("{gap}_{x}"), rows);
            (rows, input.hi.saturating_mul(model.scan_weight))
        }
        GqlCommand::Compare {
            name, g1, g2, op, ..
        } => {
            let a = seed.lookup(env, g1);
            let b = seed.lookup(env, g2);
            let rows = match op {
                gea_core::compare::CompareOp::Union => a.join_sum(b).clamp_hi(seed.tags),
                gea_core::compare::CompareOp::Intersect => a.min(b).may_be_empty(),
                gea_core::compare::CompareOp::Difference => a.may_be_empty(),
            };
            env.insert(name.clone(), rows);
            (
                rows,
                a.hi.saturating_add(b.hi).saturating_mul(model.scan_weight),
            )
        }
        GqlCommand::Show { name, n, .. } => {
            let input = seed.lookup(env, name);
            let rows = input.clamp_hi(*n as u64);
            (rows, (*n as u64).max(1))
        }
        GqlCommand::Plot { dataset, .. } => {
            let input = seed.lookup(env, dataset);
            (input, input.hi.saturating_mul(model.scan_weight))
        }
        GqlCommand::Library(_) => (Interval::point(1), 1),
        GqlCommand::TagFreq { dataset, .. } => {
            let input = seed.lookup(env, dataset);
            (input, input.hi.saturating_mul(model.scan_weight))
        }
        GqlCommand::Export { name, .. } => {
            let rows = seed.lookup(env, name);
            (rows, rows.hi.saturating_mul(model.io_weight))
        }
        GqlCommand::Comment { .. } => (Interval::point(1), 1),
        GqlCommand::Delete { .. } => (Interval::point(0), 1),
        GqlCommand::Populate { name, from: None } => {
            let rows = seed.lookup(env, name);
            (rows, rows.hi.saturating_mul(model.populate_scan_weight))
        }
        GqlCommand::Populate {
            name,
            from: Some((sumy, dataset)),
        } => {
            let candidates = seed.lookup(env, dataset);
            let constraints = seed.lookup(env, sumy);
            let rows = candidates.may_be_empty();
            env.insert(name.clone(), rows);
            let per_lib = constraints.hi.max(1);
            (
                rows,
                candidates
                    .hi
                    .saturating_mul(per_lib)
                    .saturating_mul(model.populate_scan_weight),
            )
        }
        GqlCommand::Check(cmds) => (Interval::point(cmds.len() as u64), cmds.len() as u64 + 1),
        GqlCommand::Lineage | GqlCommand::Cleaning => (Interval::range(0, seed.libraries), 1),
        GqlCommand::Xprofiler(dataset) => {
            let input = seed.lookup(env, dataset);
            (
                input,
                input
                    .hi
                    .saturating_mul(seed.tags.max(1))
                    .saturating_mul(model.xprofiler_weight)
                    / 8,
            )
        }
        GqlCommand::Save(_) => (
            libs,
            seed.libraries
                .saturating_add(seed.tags)
                .saturating_mul(model.io_weight),
        ),
        GqlCommand::Load(_) => (
            libs,
            seed.libraries
                .saturating_add(seed.tags)
                .saturating_mul(model.io_weight),
        ),
    };
    report.total = report.total.saturating_add(cost);
    report.per_command.push(CommandCost {
        index,
        verb: cmd.verb(),
        rows,
        cost,
    });
}

/// Extract the `wall_ms` of the first bench row whose `variant` contains
/// `needle`, with a hand-rolled scan (the workspace carries no JSON
/// dependency and the bench format is flat).
fn variant_wall_ms(text: &str, needle: &str) -> Option<f64> {
    for row in text.split("\"variant\"").skip(1) {
        let name_end = row.find("\"wall_ms\"")?;
        if !row[..name_end].contains(needle) {
            continue;
        }
        let tail = &row[name_end + "\"wall_ms\"".len()..];
        let tail = tail.trim_start_matches([':', ' ']);
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(tail.len());
        return tail[..end].parse().ok();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmds(script: &str) -> Vec<GqlCommand> {
        script
            .lines()
            .filter_map(|l| match gql::parse(l.trim()) {
                Ok(Some(Request::Gql(cmd))) => Some(cmd),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn intervals_flow_through_a_pipeline() {
        let model = CostModel::default_coefficients();
        let seed = CostSeed::script_default();
        let report = cost_pipeline(
            &model,
            &seed,
            &cmds(
                "dataset e brain\n\
                 select s e L1 L2\n\
                 mine e m 50 3 6\n\
                 topgap g 5\n",
            ),
        );
        assert_eq!(report.per_command.len(), 4);
        // dataset is bounded by the corpus.
        assert_eq!(report.per_command[0].rows, Interval::range(1, 250));
        // select keeps at most its listed libraries.
        assert!(report.per_command[1].rows.hi <= 2);
        // mine yields at most `batch` fascicles.
        assert_eq!(report.per_command[2].rows, Interval::range(0, 6));
        // topgap of an unknown gap still caps at x.
        assert!(report.per_command[3].rows.hi <= 5);
        assert!(report.total > 0);
        let rendered = report.render();
        assert!(rendered.contains("predicted cost"));
        assert!(rendered.contains("total:"));
        assert!(rendered.contains("rows 0..6"));
    }

    #[test]
    fn session_seed_uses_real_cardinalities() {
        use gea_sage::clean::CleaningConfig;
        use gea_sage::generate::{generate, GeneratorConfig};
        use gea_sage::TissueType;

        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        let mut session =
            gea_core::session::GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        session
            .create_tissue_dataset("Eb", &TissueType::Brain)
            .unwrap();
        let seed = CostSeed::from_session(&session);
        assert!(seed.libraries > 0);
        assert!(seed.tags > 0);
        let model = CostModel::default_coefficients();
        let report = cost_pipeline(&model, &seed, &cmds("export Eb out.csv\n"));
        // The live ENUM's exact row count flows in as a point interval.
        let n = session.enum_tables()["Eb"].n_libraries() as u64;
        assert_eq!(report.per_command[0].rows, Interval::point(n));
        assert_eq!(report.per_command[0].cost, n * model.io_weight);
    }

    #[test]
    fn costs_are_monotone_in_batch_and_saturate() {
        let model = CostModel::default_coefficients();
        let seed = CostSeed::script_default();
        let small = cost_pipeline(&model, &seed, &cmds("mine e m 50 3 2\n"));
        let large = cost_pipeline(&model, &seed, &cmds("mine e m 50 3 64\n"));
        assert!(large.total > small.total);
        // A pathological batch saturates instead of wrapping.
        let huge = cost_pipeline(&model, &seed, &cmds("mine e m 50 3 18446744073709551615\n"));
        assert_eq!(huge.per_command.len(), 1);
        assert!(huge.total >= large.total);
    }

    #[test]
    fn cost_script_skips_non_gql_lines() {
        let model = CostModel::default_coefficients();
        let seed = CostSeed::script_default();
        let report = cost_script(
            &model,
            &seed,
            "# comment\nload-demo 42\ndataset e brain\n\nnot a command\nquit\n",
        );
        assert_eq!(report.per_command.len(), 1);
        assert_eq!(report.per_command[0].verb, "dataset");
        assert_eq!(report.per_command[0].index, 3, "indexes are script lines");
    }

    #[test]
    fn bench_calibration_parses_and_survives_garbage() {
        let dir = std::env::temp_dir().join(format!("gea_cost_cal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_populate.json"),
            r#"{"rows":[{"variant":"scan_serial","wall_ms":80.0,"identical":true},
                        {"variant":"indexed","wall_ms":10.0,"identical":true}]}"#,
        )
        .unwrap();
        let model = CostModel::calibrated(&dir);
        assert_eq!(model.populate_scan_weight, 8);
        assert_eq!(model.populate_index_weight, 1);
        // Garbage file: defaults survive.
        std::fs::write(dir.join("BENCH_populate.json"), "not json at all").unwrap();
        assert_eq!(
            CostModel::calibrated(&dir),
            CostModel::default_coefficients()
        );
        // Missing file: defaults survive.
        let _ = std::fs::remove_file(dir.join("BENCH_populate.json"));
        assert_eq!(
            CostModel::calibrated(&dir),
            CostModel::default_coefficients()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_oracle_prefers_scan_on_tiny_inputs() {
        let model = CostModel::default_coefficients();
        // One constraint over few candidates: the build pass cannot pay
        // for itself.
        assert!(!model.populate_prefers_index(8, 1));
        // Many constraints over many candidates: pruning wins.
        assert!(model.populate_prefers_index(10_000, 4));
    }
}
