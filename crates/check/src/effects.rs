//! The verb-effect table: one statically-derived summary of what every
//! GQL verb does to a session, exported as the single source of truth
//! for every subsystem that used to hand-classify verbs.
//!
//! Three consumers used to keep overlapping match arms in sync by hand:
//!
//! * `gea-server`'s locking and response-cache admission (read vs write,
//!   cacheable vs always-execute);
//! * `gea-router`'s dispatch (affine read vs replicated write vs
//!   scatter/gather across shards);
//! * `gea-opt`'s rewrite safety conditions.
//!
//! All three now consume [`EffectTable`]. The table has two faces: a
//! `const` row per verb ([`EffectTable::ROWS`]) for table-driven
//! consumers and documentation, and [`EffectTable::of`] which resolves a
//! *specific* command to its [`Effect`] — necessary because two verbs
//! are form-dependent (`populate` only scatters in its operator form,
//! `mine` only for range-sharded backends). `of` is an exhaustive match
//! with no wildcard arm, so adding a `GqlCommand` variant without
//! deciding its effects is a compile error; the unit test below closes
//! the remaining gap by checking every parseable verb has a `ROWS` entry
//! that agrees with `of`.

use crate::gql::GqlCommand;
use crate::world::{World, WorldSet};

const ENUM: WorldSet = WorldSet::of(World::Enum);
const SUMY: WorldSet = WorldSet::of(World::Sumy);
const GAP: WorldSet = WorldSet::of(World::Gap);
const FASC: WorldSet = WorldSet::of(World::Fascicle);
const NONE: WorldSet = WorldSet::EMPTY;
const ALL: WorldSet = ENUM
    .with(World::Sumy)
    .with(World::Gap)
    .with(World::Fascicle);
/// `mine` defines its output in three worlds at once (the 3W model).
const MINED: WorldSet = ENUM.with(World::Sumy).with(World::Fascicle);

/// When a verb may be scattered across shard backends instead of being
/// executed whole on every replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scatter {
    /// Never shard-split; reads route affine, writes replicate.
    Never,
    /// Every form of the verb is scan-shaped over contiguous library
    /// ranges (`groups`).
    Always,
    /// Only the thesis operator form (`populate <name> <sumy> <dataset>`)
    /// scans; the lineage re-materialization form does not.
    OperatorFormOnly,
    /// Only backends whose kernel is a contiguous-range scan (the classic
    /// fascicle miner and `isa`); `simplex` mines in rotated tag space,
    /// which has no library-range decomposition.
    RangeShardedBackendsOnly,
}

/// The static effect row for one verb: the most general summary true of
/// every form of the verb. Form-dependent refinement (scatter) lives in
/// [`EffectTable::of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerbEffect {
    /// The verb string, as [`GqlCommand::verb`] reports it.
    pub verb: &'static str,
    /// Worlds the verb resolves operands in.
    pub reads: WorldSet,
    /// Worlds the verb defines or replaces names in.
    pub writes: WorldSet,
    /// Whether executing mutates the session (tables, lineage, or the
    /// whole state for `load`). `!mutates_session` is exactly the
    /// server's read-lock class.
    pub mutates_session: bool,
    /// Whether the reply is a function of (session generation, command
    /// line) alone — false for verbs that touch the filesystem
    /// (`save`/`export`), whose state the generation does not cover.
    pub pure: bool,
    /// Whether repeated execution at a fixed generation yields
    /// byte-identical replies. True for every verb today (mining is
    /// seeded); kept explicit so a future stochastic backend has a place
    /// to declare itself.
    pub deterministic: bool,
    /// Shard-scatter policy.
    pub scatter: Scatter,
}

/// The effect of one *specific* command, with form-dependent fields
/// resolved. This is what the server and router consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effect {
    /// The verb's static row.
    pub row: &'static VerbEffect,
    /// Whether *this* command may scatter across range-sharded backends.
    pub scatterable: bool,
}

impl Effect {
    /// Read-lock class: the command only reads the session.
    pub fn is_read(&self) -> bool {
        !self.row.mutates_session
    }

    /// Response-cache admission: pure deterministic reads only.
    pub fn is_cacheable(&self) -> bool {
        self.is_read() && self.row.pure && self.row.deterministic
    }
}

/// One row per verb. Row order follows the `help` text.
const ROWS: &[VerbEffect] = &[
    row("tissues", NONE, NONE, READ, PURE),
    row("dataset", NONE, ENUM, WRITE, PURE),
    row("custom", NONE, ENUM, WRITE, PURE),
    row("select", ENUM, ENUM, WRITE, PURE),
    row("project", ENUM, ENUM, WRITE, PURE),
    scatter_row("mine", ENUM, MINED, Scatter::RangeShardedBackendsOnly),
    row("fascicles", FASC, NONE, READ, PURE),
    row("purity", FASC, NONE, READ, PURE),
    scatter_row("groups", FASC, SUMY, Scatter::Always),
    row("gap", SUMY, GAP, WRITE, PURE),
    row("topgap", GAP, GAP, WRITE, PURE),
    row("compare", GAP, GAP, WRITE, PURE),
    row("show", SUMY.with(World::Gap), NONE, READ, PURE),
    row("plot", ENUM.with(World::Fascicle), NONE, READ, PURE),
    row("library", NONE, NONE, READ, PURE),
    row("tagfreq", ENUM, NONE, READ, PURE),
    // Reads for locking purposes, but the reply lands on the filesystem,
    // which the session generation does not cover: never cached.
    row("export", ALL, NONE, READ, IMPURE),
    // Annotation lands in the lineage, which `lineage` then reports:
    // a session mutation even though no table changes.
    row("comment", ALL, NONE, WRITE, PURE),
    row("delete", ALL, ALL, WRITE, PURE),
    scatter_row(
        "populate",
        SUMY.with(World::Enum),
        ENUM,
        Scatter::OperatorFormOnly,
    ),
    // Analyzes the pipeline against the symbol table without executing
    // it: a pure, cacheable read.
    row("check", ALL, NONE, READ, PURE),
    row("lineage", NONE, NONE, READ, PURE),
    row("cleaning", NONE, NONE, READ, PURE),
    row("xprofiler", ENUM, NONE, READ, PURE),
    row("save", ALL, NONE, READ, IMPURE),
    row("load", NONE, ALL, WRITE, PURE),
];

const READ: bool = false;
const WRITE: bool = true;
const PURE: bool = true;
const IMPURE: bool = false;

const fn row(
    verb: &'static str,
    reads: WorldSet,
    writes: WorldSet,
    mutates_session: bool,
    pure: bool,
) -> VerbEffect {
    VerbEffect {
        verb,
        reads,
        writes,
        mutates_session,
        pure,
        deterministic: true,
        scatter: Scatter::Never,
    }
}

const fn scatter_row(
    verb: &'static str,
    reads: WorldSet,
    writes: WorldSet,
    scatter: Scatter,
) -> VerbEffect {
    VerbEffect {
        verb,
        reads,
        writes,
        mutates_session: true,
        pure: true,
        deterministic: true,
        scatter,
    }
}

/// The verb-effect table. Stateless; both associated functions index the
/// `const` rows.
pub struct EffectTable;

impl EffectTable {
    /// Every verb's static row, in `help` order.
    pub fn rows() -> &'static [VerbEffect] {
        ROWS
    }

    /// The static row for a verb string, if the verb exists.
    pub fn row(verb: &str) -> Option<&'static VerbEffect> {
        ROWS.iter().find(|r| r.verb == verb)
    }

    /// Resolve one command to its effect. Exhaustive over `GqlCommand` —
    /// no wildcard arm — so a new variant cannot compile without an
    /// effects decision here *and* a row above (the unit test cross-checks
    /// the two).
    pub fn of(cmd: &GqlCommand) -> Effect {
        let scatterable = match cmd {
            // Contiguous library-range scans: always scatterable.
            GqlCommand::Mine { .. } | GqlCommand::Groups(_) => true,
            // Only backends with a range-sharded kernel; `simplex`
            // clusters in rotated tag space and must run whole.
            GqlCommand::MineWith { algo, .. } => algo == "isa",
            // The operator form scans `dataset`'s libraries; the lineage
            // re-materialization form replays history instead.
            GqlCommand::Populate { from, .. } => from.is_some(),
            GqlCommand::Tissues
            | GqlCommand::Dataset { .. }
            | GqlCommand::Custom { .. }
            | GqlCommand::Select { .. }
            | GqlCommand::Project { .. }
            | GqlCommand::Fascicles
            | GqlCommand::Purity(_)
            | GqlCommand::Gap { .. }
            | GqlCommand::TopGap { .. }
            | GqlCommand::Compare { .. }
            | GqlCommand::Show { .. }
            | GqlCommand::Plot { .. }
            | GqlCommand::Library(_)
            | GqlCommand::TagFreq { .. }
            | GqlCommand::Export { .. }
            | GqlCommand::Comment { .. }
            | GqlCommand::Delete { .. }
            | GqlCommand::Check(_)
            | GqlCommand::Lineage
            | GqlCommand::Cleaning
            | GqlCommand::Xprofiler(_)
            | GqlCommand::Save(_)
            | GqlCommand::Load(_) => false,
        };
        let row = Self::row(cmd.verb())
            .unwrap_or_else(|| panic!("verb {:?} has no effect row", cmd.verb()));
        Effect { row, scatterable }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gql::{parse, Request};

    /// One example line per verb and per form-dependent shape: every
    /// `GqlCommand` variant is represented, plus both `populate` forms
    /// and the three `mine` spellings.
    const EXAMPLES: &[&str] = &[
        "tissues",
        "dataset e brain",
        "custom c L1 L2",
        "select s e L1",
        "project p e ACGTACGTAC",
        "mine e m 50 3 6",
        "mine e m with isa seeds=4",
        "mine e m with simplex",
        "fascicles",
        "purity m_1",
        "groups m_1",
        "gap g s1 s2",
        "topgap g 5",
        "compare c2 g1 g2 union 1",
        "show gap g 10",
        "plot e ACGTACGTAC m_1",
        "library L1",
        "tagfreq e ACGTACGTAC",
        "export g out.csv",
        "comment g \"note\"",
        "delete g",
        "populate e2",
        "populate e2 s1 e",
        "check dataset x brain ; select y x L1",
        "lineage",
        "cleaning",
        "xprofiler e",
        "save dir",
        "load dir",
    ];

    fn parse_cmd(line: &str) -> GqlCommand {
        match parse(line).expect("example parses").expect("non-blank") {
            Request::Gql(cmd) => cmd,
            other => panic!("{line:?} parsed to non-GQL {other:?}"),
        }
    }

    #[test]
    fn every_verb_has_exactly_one_row_and_of_agrees() {
        let mut seen = std::collections::BTreeSet::new();
        for line in EXAMPLES {
            let cmd = parse_cmd(line);
            let effect = EffectTable::of(&cmd);
            let row = EffectTable::row(cmd.verb())
                .unwrap_or_else(|| panic!("verb {:?} missing from ROWS", cmd.verb()));
            assert_eq!(
                effect.row.verb, row.verb,
                "of() must return the verb's own row"
            );
            seen.insert(cmd.verb());
        }
        // Exhaustiveness both ways: no parseable verb without a row (above)
        // and no stale row for a verb the grammar no longer produces.
        let rows: std::collections::BTreeSet<&str> =
            EffectTable::rows().iter().map(|r| r.verb).collect();
        assert_eq!(rows.len(), EffectTable::rows().len(), "duplicate verb row");
        assert_eq!(seen, rows, "ROWS and the grammar's verb set must match");
    }

    #[test]
    fn effect_classes_match_the_grammar_contract() {
        for line in EXAMPLES {
            let cmd = parse_cmd(line);
            let effect = EffectTable::of(&cmd);
            assert_eq!(effect.is_read(), cmd.is_read(), "{line}");
            assert_eq!(effect.is_cacheable(), cmd.is_cacheable(), "{line}");
        }
    }

    #[test]
    fn scatter_resolution_is_form_dependent() {
        assert!(EffectTable::of(&parse_cmd("mine e m 50 3 6")).scatterable);
        assert!(EffectTable::of(&parse_cmd("mine e m with isa")).scatterable);
        assert!(!EffectTable::of(&parse_cmd("mine e m with simplex")).scatterable);
        assert!(EffectTable::of(&parse_cmd("groups m_1")).scatterable);
        assert!(EffectTable::of(&parse_cmd("populate e2 s1 e")).scatterable);
        assert!(!EffectTable::of(&parse_cmd("populate e2")).scatterable);
        assert!(!EffectTable::of(&parse_cmd("gap g s1 s2")).scatterable);
        // The static rows agree with the policy enum.
        assert_eq!(
            EffectTable::row("mine").unwrap().scatter,
            Scatter::RangeShardedBackendsOnly
        );
        assert_eq!(EffectTable::row("groups").unwrap().scatter, Scatter::Always);
        assert_eq!(
            EffectTable::row("populate").unwrap().scatter,
            Scatter::OperatorFormOnly
        );
    }

    #[test]
    fn cacheable_is_pure_deterministic_read() {
        for r in EffectTable::rows() {
            if !r.mutates_session && r.pure && r.deterministic {
                continue; // cacheable; nothing more to check
            }
            // Writes must not be cacheable even if pure.
            if r.mutates_session {
                assert!(!r.writes.is_empty() || r.verb == "comment", "{}", r.verb);
            }
        }
        // The filesystem-touching reads are exactly save and export.
        let impure: Vec<&str> = EffectTable::rows()
            .iter()
            .filter(|r| !r.mutates_session && !r.pure)
            .map(|r| r.verb)
            .collect();
        assert_eq!(impure, ["export", "save"]);
    }
}
