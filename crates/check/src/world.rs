//! The world-type lattice: every GQL name lives in one or more *worlds*
//! (the 3W model's extensional/intensional split). `mine` output names are
//! simultaneously an ENUM, a SUMY, and a fascicle record, so a name's
//! static type is a *set* of worlds, and an operator's operand is
//! well-typed when the set contains the world the operator consumes.

use std::fmt;

/// One world a name can live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum World {
    /// Extensional: a set of libraries with their full expression matrix.
    Enum,
    /// Intensional: per-tag aggregate conditions (the defining property).
    Sumy,
    /// Intensional: per-tag expression *gaps* between two SUMYs.
    Gap,
    /// A mined fascicle record (membership + compact tags).
    Fascicle,
}

impl World {
    const ALL: [World; 4] = [World::Enum, World::Sumy, World::Gap, World::Fascicle];

    const fn bit(self) -> u8 {
        match self {
            World::Enum => 1,
            World::Sumy => 2,
            World::Gap => 4,
            World::Fascicle => 8,
        }
    }
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            World::Enum => "ENUM",
            World::Sumy => "SUMY",
            World::Gap => "GAP",
            World::Fascicle => "fascicle",
        })
    }
}

/// The set of worlds a name lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorldSet(u8);

impl WorldSet {
    /// No worlds.
    pub const EMPTY: WorldSet = WorldSet(0);

    /// The singleton set.
    pub const fn of(w: World) -> WorldSet {
        WorldSet(w.bit())
    }

    /// This set plus `w`.
    pub const fn with(self, w: World) -> WorldSet {
        WorldSet(self.0 | w.bit())
    }

    /// Membership.
    pub const fn contains(self, w: World) -> bool {
        self.0 & w.bit() != 0
    }

    /// True when no world is present.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `ENUM+SUMY+fascicle`-style rendering for diagnostics.
    pub fn describe(self) -> String {
        if self.is_empty() {
            return "nothing".to_string();
        }
        let mut out = String::new();
        for w in World::ALL {
            if self.contains(w) {
                if !out.is_empty() {
                    out.push('+');
                }
                out.push_str(&w.to_string());
            }
        }
        out
    }
}

impl From<World> for WorldSet {
    fn from(w: World) -> WorldSet {
        WorldSet::of(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra() {
        let ws = WorldSet::of(World::Enum).with(World::Fascicle);
        assert!(ws.contains(World::Enum));
        assert!(ws.contains(World::Fascicle));
        assert!(!ws.contains(World::Gap));
        assert!(!ws.is_empty());
        assert!(WorldSet::EMPTY.is_empty());
    }

    #[test]
    fn describe_is_stable() {
        let mined = WorldSet::of(World::Fascicle)
            .with(World::Sumy)
            .with(World::Enum);
        assert_eq!(mined.describe(), "ENUM+SUMY+fascicle");
        assert_eq!(WorldSet::of(World::Gap).describe(), "GAP");
        assert_eq!(WorldSet::EMPTY.describe(), "nothing");
    }
}
