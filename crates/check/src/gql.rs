//! The GEA Query Language (GQL): one line-oriented textual grammar shared
//! by the `gea-cli` REPL, batch scripts, and the TCP wire protocol.
//!
//! A request line is a verb plus whitespace-separated arguments; double
//! quotes group an argument containing spaces (`comment g1 "looks real"`).
//! Parsing is front-end independent: the same [`parse`] feeds the REPL's
//! single session and the server's named shared sessions.

use std::fmt;

use gea_core::compare::{CompareOp, CompareQuery};
use gea_mine::ParamValue;
use gea_sage::{Tag, TissueType};

/// The command reference printed by `help` (the thesis chapter 4 menus plus
/// the serving layer).
pub const HELP: &str = "\
GQL commands (thesis chapter 4's menus, served):
  session control
    open <name> demo <seed>             create/replace a named session from a demo corpus
    open <name> dir <dir>               create/replace a named session from a corpus directory
    load-demo <seed>                    shorthand: open the default session from a demo corpus
    load-dir <dir>                      shorthand: open the default session from a directory
    use <name>                          attach this connection to a named session
    sessions                            list open sessions
    close <name>                        drop a named session
  data sets
    tissues                             list tissue types and their libraries
    dataset <name> <tissue>             E = sigma_tissue(SAGE)        [Fig 4.4]
    custom <name> <lib> [<lib>...]      user-defined data set         [Fig 4.15]
    select <name> <dataset> <lib> [<lib>...]   sigma_libraries(dataset)
    project <name> <dataset> <tag> [<tag>...]  pi_tags(dataset)
  mining and gaps
    mine <dataset> <out> <k%> <min> <batch>   calculate fascicles     [Fig 4.6]
    mine <dataset> <out> with <algo> [key=val ...]   pluggable backends: fascicles, isa, simplex
    fascicles                           list mined fascicles
    purity <fascicle>                   purity check                  [Fig 4.8]
    groups <fascicle>                   form control-group SUMYs      [Fig 4.7]
    gap <name> <sumy1> <sumy2>          GAP = diff(S1, S2)            [Fig 4.9]
    topgap <gap> <x>                    calculate top gaps            [Fig 4.19]
    compare <name> <g1> <g2> <union|intersect|difference> <query#>    [Fig 4.13]
  inspection
    show gap|sumy <name> [n]            view a table's first rows
    plot <dataset> <tag> <fascicle>     tag distribution              [Fig 4.10]
    library <name|id>                   library information           [Fig 4.23]
    tagfreq <dataset> <tag>             expression values of a tag    [Fig 4.26]
    lineage                             operation history             [Fig 4.18]
    cleaning                            cleaning report               [Fig 4.1]
    xprofiler <dataset>                 pooled cancer-vs-normal comparison  [sec 2.3.3]
  static analysis
    check <cmd> [; <cmd>]...            validate a pipeline against this session without running it
  persistence and admin
    export <name> <file.csv>            EXPORT a table to CSV
    comment <name> <text...>            annotate a lineage node
    delete <name> [--cascade]           drop contents / cascade       [Fig 4.18]
    populate <name> [<sumy> <dataset>]  re-materialize (§4.4.2), or populate(SUMY, ENUM) -> ENUM
    save <dir>                          persist the full session (tables, lineage, snapshot)
    load <dir>                          restore a saved session in place (replaces current state)
    gen-corpus <seed> <dir>             write a demo corpus as SAGE text files
  server
    ping                                liveness check
    stats                               request counts, latencies, connections
    shutdown                            stop the server gracefully
    help                                this text
    quit";

/// A parse failure: the offending message, reported as `ERR EPARSE …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn usage(text: &str) -> ParseError {
    ParseError(format!("usage: {text}"))
}

/// Session-registry control commands, handled by the hosting front-end
/// (the server's connection loop or the REPL), not the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionCtl {
    /// Create or replace a named session from a generated demo corpus.
    OpenDemo {
        /// Registry name (`default` for the REPL shorthands).
        name: String,
        /// Generator seed.
        seed: u64,
    },
    /// Create or replace a named session from a corpus directory.
    OpenDir {
        /// Registry name.
        name: String,
        /// Directory of `sageName.txt` files.
        dir: String,
    },
    /// Attach the connection to an existing named session.
    Use(String),
    /// List open sessions.
    List,
    /// Drop a named session from the registry.
    Close(String),
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The command reference.
    Help,
    /// Close the connection (REPL: exit).
    Quit,
    /// Liveness check.
    Ping,
    /// Server metrics.
    Stats,
    /// Graceful server shutdown.
    Shutdown,
    /// Write a demo corpus to disk (no session involved).
    GenCorpus {
        /// Generator seed.
        seed: u64,
        /// Output directory.
        dir: String,
    },
    /// Session-registry control.
    Session(SessionCtl),
    /// An algebra command for the current session.
    Gql(GqlCommand),
}

/// The table kinds `show` accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShowKind {
    /// A GAP table.
    Gap,
    /// A SUMY table.
    Sumy,
}

/// An algebra command executed against one session by the server's engine
/// (`gea_server::engine`).
#[derive(Debug, Clone, PartialEq)]
pub enum GqlCommand {
    /// List tissue types.
    Tissues,
    /// `E = σ_tissue(SAGE)`.
    Dataset {
        /// New table name.
        name: String,
        /// Tissue to select.
        tissue: TissueType,
    },
    /// User-defined data set from the root.
    Custom {
        /// New table name.
        name: String,
        /// Member library names.
        libraries: Vec<String>,
    },
    /// `σ_libraries(dataset)` — select libraries out of any data set.
    Select {
        /// New table name.
        name: String,
        /// Source data set.
        dataset: String,
        /// Library names to keep.
        libraries: Vec<String>,
    },
    /// `π_tags(dataset)` — project a data set onto a tag list.
    Project {
        /// New table name.
        name: String,
        /// Source data set.
        dataset: String,
        /// Tags to keep.
        tags: Vec<Tag>,
    },
    /// Calculate fascicles.
    Mine {
        /// Source data set.
        dataset: String,
        /// Output name prefix.
        out: String,
        /// Compactness threshold as a percentage of the data set's tags.
        k_pct: usize,
        /// Minimum fascicle size.
        min_records: usize,
        /// Candidate batch size.
        batch: usize,
    },
    /// Calculate clusters with a named `gea-mine` backend
    /// (`mine <dataset> <out> with <algo> [key=val ...]`). The classic
    /// positional form and `with fascicles` both parse to [`Mine`];
    /// this variant only carries the new backends.
    ///
    /// [`Mine`]: GqlCommand::Mine
    MineWith {
        /// Source data set.
        dataset: String,
        /// Output name prefix.
        out: String,
        /// Backend registry name (`isa`, `simplex`).
        algo: String,
        /// Explicit `key=val` overrides, sorted by key (unmentioned keys
        /// take the backend's defaults at execution time).
        params: Vec<(String, ParamValue)>,
    },
    /// List mined fascicles.
    Fascicles,
    /// Purity check.
    Purity(String),
    /// Form control-group SUMYs.
    Groups(String),
    /// `GAP = diff(SUMY₁, SUMY₂)`.
    Gap {
        /// New GAP name.
        name: String,
        /// First SUMY.
        sumy1: String,
        /// Second SUMY.
        sumy2: String,
    },
    /// Calculate top gaps.
    TopGap {
        /// Source GAP.
        gap: String,
        /// How many.
        x: usize,
    },
    /// GAP comparison.
    Compare {
        /// New GAP name.
        name: String,
        /// First GAP.
        g1: String,
        /// Second GAP.
        g2: String,
        /// Set operation.
        op: CompareOp,
        /// Thesis query (1–13).
        query: CompareQuery,
    },
    /// View a table's first rows.
    Show {
        /// Table kind.
        kind: ShowKind,
        /// Table name.
        name: String,
        /// Row limit.
        n: usize,
    },
    /// Tag distribution across a data set.
    Plot {
        /// Data set.
        dataset: String,
        /// The tag.
        tag: Tag,
        /// Fascicle labelling the series.
        fascicle: String,
    },
    /// Library information.
    Library(String),
    /// Expression values of a tag.
    TagFreq {
        /// Data set.
        dataset: String,
        /// The tag.
        tag: Tag,
    },
    /// Export a table to CSV.
    Export {
        /// Table name.
        name: String,
        /// Output path.
        path: String,
    },
    /// Annotate a lineage node.
    Comment {
        /// Table name.
        name: String,
        /// The comment.
        text: String,
    },
    /// Drop contents or cascade-delete.
    Delete {
        /// Table name.
        name: String,
        /// Cascade to derived tables.
        cascade: bool,
    },
    /// `populate <name>`: re-materialize a contents-only-deleted table
    /// from its lineage (§4.4.2). `populate <name> <sumy> <dataset>`: the
    /// thesis's populate operator — materialize the ENUM of `dataset`
    /// libraries whose expression satisfies the SUMY's intensional
    /// definition.
    Populate {
        /// New (or re-materialized) table name.
        name: String,
        /// `Some((sumy, dataset))` selects the operator form.
        from: Option<(String, String)>,
    },
    /// Statically validate a `;`-separated pipeline against the session's
    /// symbol table without executing any of it.
    Check(Vec<GqlCommand>),
    /// Operation history.
    Lineage,
    /// Cleaning report.
    Cleaning,
    /// Pooled cancer-vs-normal comparison.
    Xprofiler(String),
    /// Persist tables and lineage.
    Save(String),
    /// Browse saved tables and lineage.
    Load(String),
}

impl GqlCommand {
    /// Whether the command only reads the session. Read commands run under
    /// a shared read lock on the server; everything else takes the write
    /// lock. Delegates to the verb-effect table ([`crate::effects`]), the
    /// single source of truth for verb classification — `save` and
    /// `export` touch the filesystem but not the session, so they are
    /// reads here; `load` *replaces* the session in place, so it is a
    /// write; `check` analyzes but never mutates, so it is a read.
    pub fn is_read(&self) -> bool {
        crate::effects::EffectTable::of(self).is_read()
    }

    /// Whether the command's reply may be served from the server's
    /// response cache: the pure deterministic reads, per the verb-effect
    /// table. `save` and `export` are reads for locking purposes but
    /// touch the filesystem, whose state the session generation does not
    /// cover, so they always execute.
    pub fn is_cacheable(&self) -> bool {
        crate::effects::EffectTable::of(self).is_cacheable()
    }

    /// The normalized command line: the canonical spelling that parses
    /// back to this command. Used as the response-cache key component, so
    /// surface variants (`show gap g` vs `show gap g 10`, extra
    /// whitespace, `difference` vs `diff`) share one cache slot.
    pub fn canonical(&self) -> String {
        fn quote(token: &str) -> String {
            if !token.is_empty() && !token.contains(|c: char| c.is_whitespace() || c == '"') {
                return token.to_string();
            }
            let mut out = String::with_capacity(token.len() + 2);
            out.push('"');
            for c in token.chars() {
                if c == '"' || c == '\\' {
                    out.push('\\');
                }
                out.push(c);
            }
            out.push('"');
            out
        }
        fn join(verb: &str, args: &[&str]) -> String {
            let mut out = verb.to_string();
            for arg in args {
                out.push(' ');
                out.push_str(&quote(arg));
            }
            out
        }
        match self {
            GqlCommand::Tissues => "tissues".to_string(),
            GqlCommand::Dataset { name, tissue } => join("dataset", &[name, &tissue.to_string()]),
            GqlCommand::Custom { name, libraries } => {
                let mut args: Vec<&str> = vec![name];
                args.extend(libraries.iter().map(|s| s.as_str()));
                join("custom", &args)
            }
            GqlCommand::Select {
                name,
                dataset,
                libraries,
            } => {
                let mut args: Vec<&str> = vec![name, dataset];
                args.extend(libraries.iter().map(|s| s.as_str()));
                join("select", &args)
            }
            GqlCommand::Project {
                name,
                dataset,
                tags,
            } => {
                let tags: Vec<String> = tags.iter().map(|t| t.to_string()).collect();
                let mut args: Vec<&str> = vec![name, dataset];
                args.extend(tags.iter().map(|s| s.as_str()));
                join("project", &args)
            }
            GqlCommand::Mine {
                dataset,
                out,
                k_pct,
                min_records,
                batch,
            } => join(
                "mine",
                &[
                    dataset,
                    out,
                    &k_pct.to_string(),
                    &min_records.to_string(),
                    &batch.to_string(),
                ],
            ),
            GqlCommand::MineWith {
                dataset,
                out,
                algo,
                params,
            } => {
                let rendered: Vec<String> =
                    params.iter().map(|(k, v)| format!("{k}={v}")).collect();
                let mut args: Vec<&str> = vec![dataset, out, "with", algo];
                args.extend(rendered.iter().map(|s| s.as_str()));
                join("mine", &args)
            }
            GqlCommand::Fascicles => "fascicles".to_string(),
            GqlCommand::Purity(f) => join("purity", &[f]),
            GqlCommand::Groups(f) => join("groups", &[f]),
            GqlCommand::Gap { name, sumy1, sumy2 } => join("gap", &[name, sumy1, sumy2]),
            GqlCommand::TopGap { gap, x } => join("topgap", &[gap, &x.to_string()]),
            GqlCommand::Compare {
                name,
                g1,
                g2,
                op,
                query,
            } => {
                let op = match op {
                    CompareOp::Union => "union",
                    CompareOp::Intersect => "intersect",
                    CompareOp::Difference => "difference",
                };
                let qnum = CompareQuery::ALL
                    .iter()
                    .position(|q| q == query)
                    .map_or(0, |i| i + 1);
                join("compare", &[name, g1, g2, op, &qnum.to_string()])
            }
            GqlCommand::Show { kind, name, n } => {
                let kind = match kind {
                    ShowKind::Gap => "gap",
                    ShowKind::Sumy => "sumy",
                };
                join("show", &[kind, name, &n.to_string()])
            }
            GqlCommand::Plot {
                dataset,
                tag,
                fascicle,
            } => join("plot", &[dataset, &tag.to_string(), fascicle]),
            GqlCommand::Library(key) => join("library", &[key]),
            GqlCommand::TagFreq { dataset, tag } => join("tagfreq", &[dataset, &tag.to_string()]),
            GqlCommand::Export { name, path } => join("export", &[name, path]),
            GqlCommand::Comment { name, text } => join("comment", &[name, text]),
            GqlCommand::Delete { name, cascade } => {
                if *cascade {
                    join("delete", &[name, "--cascade"])
                } else {
                    join("delete", &[name])
                }
            }
            GqlCommand::Populate { name, from: None } => join("populate", &[name]),
            GqlCommand::Populate {
                name,
                from: Some((sumy, dataset)),
            } => join("populate", &[name, sumy, dataset]),
            GqlCommand::Check(cmds) => {
                // The separator stays a bare `;` token so the canonical
                // line re-splits into the same sub-commands.
                let mut out = "check".to_string();
                for (i, c) in cmds.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" ;");
                    }
                    out.push(' ');
                    out.push_str(&c.canonical());
                }
                out
            }
            GqlCommand::Lineage => "lineage".to_string(),
            GqlCommand::Cleaning => "cleaning".to_string(),
            GqlCommand::Xprofiler(dataset) => join("xprofiler", &[dataset]),
            GqlCommand::Save(dir) => join("save", &[dir]),
            GqlCommand::Load(dir) => join("load", &[dir]),
        }
    }

    /// The verb, for metrics labels.
    pub fn verb(&self) -> &'static str {
        match self {
            GqlCommand::Tissues => "tissues",
            GqlCommand::Dataset { .. } => "dataset",
            GqlCommand::Custom { .. } => "custom",
            GqlCommand::Select { .. } => "select",
            GqlCommand::Project { .. } => "project",
            GqlCommand::Mine { .. } | GqlCommand::MineWith { .. } => "mine",
            GqlCommand::Fascicles => "fascicles",
            GqlCommand::Purity(_) => "purity",
            GqlCommand::Groups(_) => "groups",
            GqlCommand::Gap { .. } => "gap",
            GqlCommand::TopGap { .. } => "topgap",
            GqlCommand::Compare { .. } => "compare",
            GqlCommand::Show { .. } => "show",
            GqlCommand::Plot { .. } => "plot",
            GqlCommand::Library(_) => "library",
            GqlCommand::TagFreq { .. } => "tagfreq",
            GqlCommand::Export { .. } => "export",
            GqlCommand::Comment { .. } => "comment",
            GqlCommand::Delete { .. } => "delete",
            GqlCommand::Populate { .. } => "populate",
            GqlCommand::Check(_) => "check",
            GqlCommand::Lineage => "lineage",
            GqlCommand::Cleaning => "cleaning",
            GqlCommand::Xprofiler(_) => "xprofiler",
            GqlCommand::Save(_) => "save",
            GqlCommand::Load(_) => "load",
        }
    }
}

impl Request {
    /// The verb, for metrics labels.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Help => "help",
            Request::Quit => "quit",
            Request::Ping => "ping",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::GenCorpus { .. } => "gen-corpus",
            Request::Session(SessionCtl::OpenDemo { .. })
            | Request::Session(SessionCtl::OpenDir { .. }) => "open",
            Request::Session(SessionCtl::Use(_)) => "use",
            Request::Session(SessionCtl::List) => "sessions",
            Request::Session(SessionCtl::Close(_)) => "close",
            Request::Gql(cmd) => cmd.verb(),
        }
    }
}

/// Split a request line into tokens. Double quotes group a token with
/// spaces; `\"` escapes a quote inside one.
pub fn tokenize(line: &str) -> Result<Vec<String>, ParseError> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_token = false;
    let mut chars = line.chars();
    loop {
        match chars.next() {
            None => break,
            Some(c) if c.is_whitespace() => {
                if in_token {
                    tokens.push(std::mem::take(&mut current));
                    in_token = false;
                }
            }
            Some('"') => {
                in_token = true;
                loop {
                    match chars.next() {
                        None => return Err(ParseError("unterminated quote".to_string())),
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(e) => current.push(e),
                            None => return Err(ParseError("unterminated quote".to_string())),
                        },
                        Some(c) => current.push(c),
                    }
                }
            }
            Some(c) => {
                in_token = true;
                current.push(c);
            }
        }
    }
    if in_token {
        tokens.push(current);
    }
    Ok(tokens)
}

fn parse_num<T: std::str::FromStr>(what: &str, token: &str) -> Result<T, ParseError>
where
    T::Err: fmt::Display,
{
    token
        .parse()
        .map_err(|e| ParseError(format!("bad {what}: {e}")))
}

fn parse_tag(token: &str) -> Result<Tag, ParseError> {
    token
        .parse()
        .map_err(|e| ParseError(format!("bad tag: {e}")))
}

/// Parse `mine <dataset> <out> with <algo> [key=val ...]`. The backend
/// name and parameter *types* are checked here against the `gea-mine`
/// registry (unknown backends, unknown keys, duplicates, and non-numeric
/// values are parse errors); parameter *ranges* are the analyzer's and
/// engine's job. `with fascicles` desugars to the classic positional
/// [`GqlCommand::Mine`], so the bare verb and the sugared form share one
/// canonical spelling, one cache key, and one execution path.
fn parse_mine_with(
    dataset: &str,
    out: &str,
    algo: &str,
    tokens: &[&str],
) -> Result<GqlCommand, ParseError> {
    let Some(backend) = gea_mine::backend(algo) else {
        return Err(ParseError(format!(
            "unknown mining backend {algo:?} (available: {})",
            gea_mine::backend_names()
        )));
    };
    let specs = backend.params();
    let mut params: Vec<(String, ParamValue)> = Vec::new();
    for token in tokens {
        let Some((key, value)) = token.split_once('=') else {
            return Err(ParseError(format!(
                "expected key=val after `with {algo}`, got {token:?}"
            )));
        };
        let Some(spec) = specs.iter().find(|s| s.key == key) else {
            let known: Vec<&str> = specs.iter().map(|s| s.key).collect();
            return Err(ParseError(format!(
                "backend {} has no parameter {key:?} (expected: {})",
                backend.name(),
                known.join(", ")
            )));
        };
        if params.iter().any(|(k, _)| k == key) {
            return Err(ParseError(format!("duplicate parameter {key:?}")));
        }
        let value = spec
            .domain
            .parse_token(value)
            .map_err(|e| ParseError(format!("parameter {key}: {e}")))?;
        params.push((key.to_string(), value));
    }
    params.sort_by(|a, b| a.0.cmp(&b.0));
    if backend.name() == "fascicles" {
        let resolved = gea_mine::resolve_params(specs, &params).map_err(ParseError)?;
        return Ok(GqlCommand::Mine {
            dataset: dataset.to_string(),
            out: out.to_string(),
            k_pct: resolved.uint("k_pct") as usize,
            min_records: resolved.uint("min_records") as usize,
            batch: resolved.uint("batch") as usize,
        });
    }
    Ok(GqlCommand::MineWith {
        dataset: dataset.to_string(),
        out: out.to_string(),
        algo: backend.name().to_string(),
        params,
    })
}

/// Parse one request line. `Ok(None)` means the line was blank.
pub fn parse(line: &str) -> Result<Option<Request>, ParseError> {
    let tokens = tokenize(line)?;
    let Some((cmd, args)) = tokens.split_first() else {
        return Ok(None);
    };
    let args: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    let req = match cmd.as_str() {
        "help" => Request::Help,
        "quit" | "exit" => Request::Quit,
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "sessions" => Request::Session(SessionCtl::List),
        "use" => {
            let [name] = args[..] else {
                return Err(usage("use <name>"));
            };
            Request::Session(SessionCtl::Use(name.to_string()))
        }
        "close" => {
            let [name] = args[..] else {
                return Err(usage("close <name>"));
            };
            Request::Session(SessionCtl::Close(name.to_string()))
        }
        "open" => match args[..] {
            [name, "demo", seed] => Request::Session(SessionCtl::OpenDemo {
                name: name.to_string(),
                seed: parse_num("seed", seed)?,
            }),
            [name, "dir", dir] => Request::Session(SessionCtl::OpenDir {
                name: name.to_string(),
                dir: dir.to_string(),
            }),
            _ => return Err(usage("open <name> demo <seed> | open <name> dir <dir>")),
        },
        "load-demo" => {
            let seed = match args[..] {
                [] => 42,
                [seed] => parse_num("seed", seed)?,
                _ => return Err(usage("load-demo <seed>")),
            };
            Request::Session(SessionCtl::OpenDemo {
                name: "default".to_string(),
                seed,
            })
        }
        "load-dir" => {
            let [dir] = args[..] else {
                return Err(usage("load-dir <dir>"));
            };
            Request::Session(SessionCtl::OpenDir {
                name: "default".to_string(),
                dir: dir.to_string(),
            })
        }
        "gen-corpus" => {
            let [seed, dir] = args[..] else {
                return Err(usage("gen-corpus <seed> <dir>"));
            };
            Request::GenCorpus {
                seed: parse_num("seed", seed)?,
                dir: dir.to_string(),
            }
        }
        other => match parse_gql(cmd, &args)? {
            Some(gql) => Request::Gql(gql),
            None => return Err(ParseError(format!("unknown command {other:?}; try `help`"))),
        },
    };
    Ok(Some(req))
}

/// Parse one algebra (table-level) command. `Ok(None)` means the verb is
/// not a GQL table command (it may still be a session/server verb handled
/// by [`parse`]). Factored out of [`parse`] so the `check` verb can parse
/// each sub-command of its `;`-separated pipeline with the same grammar.
fn parse_gql(cmd: &str, args: &[&str]) -> Result<Option<GqlCommand>, ParseError> {
    let gql = match cmd {
        "tissues" => GqlCommand::Tissues,
        "dataset" => {
            let [name, tissue] = args[..] else {
                return Err(usage("dataset <name> <tissue>"));
            };
            GqlCommand::Dataset {
                name: name.to_string(),
                tissue: TissueType::parse(tissue),
            }
        }
        "custom" => {
            let Some((&name, libs)) = args.split_first() else {
                return Err(usage("custom <name> <lib> [<lib>...]"));
            };
            if libs.is_empty() {
                return Err(ParseError("need at least one library".to_string()));
            }
            GqlCommand::Custom {
                name: name.to_string(),
                libraries: libs.iter().map(|s| s.to_string()).collect(),
            }
        }
        "select" => {
            let [name, dataset, libs @ ..] = args else {
                return Err(usage("select <name> <dataset> <lib> [<lib>...]"));
            };
            if libs.is_empty() {
                return Err(ParseError("need at least one library".to_string()));
            }
            GqlCommand::Select {
                name: name.to_string(),
                dataset: dataset.to_string(),
                libraries: libs.iter().map(|s| s.to_string()).collect(),
            }
        }
        "project" => {
            let [name, dataset, tags @ ..] = args else {
                return Err(usage("project <name> <dataset> <tag> [<tag>...]"));
            };
            if tags.is_empty() {
                return Err(ParseError("need at least one tag".to_string()));
            }
            GqlCommand::Project {
                name: name.to_string(),
                dataset: dataset.to_string(),
                tags: tags
                    .iter()
                    .map(|t| parse_tag(t))
                    .collect::<Result<_, _>>()?,
            }
        }
        "mine" => {
            if args.get(2).copied() == Some("with") {
                let [dataset, out, _with, algo, params @ ..] = args else {
                    return Err(usage("mine <dataset> <out> with <algo> [key=val ...]"));
                };
                parse_mine_with(dataset, out, algo, params)?
            } else {
                let [dataset, out, kpct, min, batch] = args[..] else {
                    return Err(usage("mine <dataset> <out> <k%> <min> <batch>"));
                };
                GqlCommand::Mine {
                    dataset: dataset.to_string(),
                    out: out.to_string(),
                    k_pct: parse_num("k%", kpct)?,
                    min_records: parse_num("min", min)?,
                    batch: parse_num("batch", batch)?,
                }
            }
        }
        "fascicles" => GqlCommand::Fascicles,
        "purity" => {
            let [f] = args[..] else {
                return Err(usage("purity <fascicle>"));
            };
            GqlCommand::Purity(f.to_string())
        }
        "groups" => {
            let [f] = args[..] else {
                return Err(usage("groups <fascicle>"));
            };
            GqlCommand::Groups(f.to_string())
        }
        "gap" => {
            let [name, s1, s2] = args[..] else {
                return Err(usage("gap <name> <sumy1> <sumy2>"));
            };
            GqlCommand::Gap {
                name: name.to_string(),
                sumy1: s1.to_string(),
                sumy2: s2.to_string(),
            }
        }
        "topgap" => {
            let [gap, x] = args[..] else {
                return Err(usage("topgap <gap> <x>"));
            };
            GqlCommand::TopGap {
                gap: gap.to_string(),
                x: parse_num("x", x)?,
            }
        }
        "compare" => {
            let [name, g1, g2, op, query] = args[..] else {
                return Err(usage(
                    "compare <name> <g1> <g2> <union|intersect|difference> <query#>",
                ));
            };
            let op = match op {
                "union" => CompareOp::Union,
                "intersect" => CompareOp::Intersect,
                "difference" | "diff" => CompareOp::Difference,
                other => return Err(ParseError(format!("unknown op {other:?}"))),
            };
            let qnum: usize = parse_num("query #", query)?;
            let query = *CompareQuery::ALL
                .get(qnum.wrapping_sub(1))
                .ok_or_else(|| ParseError("query # must be 1-13".to_string()))?;
            GqlCommand::Compare {
                name: name.to_string(),
                g1: g1.to_string(),
                g2: g2.to_string(),
                op,
                query,
            }
        }
        "show" => {
            let [kind, name, rest @ ..] = args else {
                return Err(usage("show gap|sumy <name> [n]"));
            };
            let kind = match *kind {
                "gap" => ShowKind::Gap,
                "sumy" => ShowKind::Sumy,
                other => return Err(ParseError(format!("unknown table kind {other:?}"))),
            };
            let n = rest.first().unwrap_or(&"10").parse().unwrap_or(10);
            GqlCommand::Show {
                kind,
                name: name.to_string(),
                n,
            }
        }
        "plot" => {
            let [dataset, tag, fascicle] = args[..] else {
                return Err(usage("plot <dataset> <tag> <fascicle>"));
            };
            GqlCommand::Plot {
                dataset: dataset.to_string(),
                tag: parse_tag(tag)?,
                fascicle: fascicle.to_string(),
            }
        }
        "library" => {
            let [key] = args[..] else {
                return Err(usage("library <name|id>"));
            };
            GqlCommand::Library(key.to_string())
        }
        "tagfreq" => {
            let [dataset, tag] = args[..] else {
                return Err(usage("tagfreq <dataset> <tag>"));
            };
            GqlCommand::TagFreq {
                dataset: dataset.to_string(),
                tag: parse_tag(tag)?,
            }
        }
        "export" => {
            let [name, path] = args[..] else {
                return Err(usage("export <name> <file.csv>"));
            };
            GqlCommand::Export {
                name: name.to_string(),
                path: path.to_string(),
            }
        }
        "comment" => {
            let Some((&name, words)) = args.split_first() else {
                return Err(usage("comment <name> <text...>"));
            };
            if words.is_empty() {
                return Err(usage("comment <name> <text...>"));
            }
            GqlCommand::Comment {
                name: name.to_string(),
                text: words.join(" "),
            }
        }
        "delete" => {
            let Some((&name, flags)) = args.split_first() else {
                return Err(usage("delete <name> [--cascade]"));
            };
            GqlCommand::Delete {
                name: name.to_string(),
                cascade: flags.contains(&"--cascade"),
            }
        }
        "populate" => match args[..] {
            [name] => GqlCommand::Populate {
                name: name.to_string(),
                from: None,
            },
            [name, sumy, dataset] => GqlCommand::Populate {
                name: name.to_string(),
                from: Some((sumy.to_string(), dataset.to_string())),
            },
            _ => return Err(usage("populate <name> [<sumy> <dataset>]")),
        },
        "check" => {
            if args.is_empty() {
                return Err(usage("check <cmd> [; <cmd>]..."));
            }
            let mut cmds = Vec::new();
            for segment in args.split(|t| *t == ";") {
                let Some((&sub, subargs)) = segment.split_first() else {
                    return Err(ParseError(
                        "check: empty command in pipeline (stray `;`)".to_string(),
                    ));
                };
                if sub == "check" {
                    return Err(ParseError("check cannot nest".to_string()));
                }
                match parse_gql(sub, subargs)? {
                    Some(c) => cmds.push(c),
                    None => {
                        return Err(ParseError(format!(
                            "check validates algebra commands only; {sub:?} is a session/server command"
                        )))
                    }
                }
            }
            GqlCommand::Check(cmds)
        }
        "lineage" => GqlCommand::Lineage,
        "cleaning" => GqlCommand::Cleaning,
        "xprofiler" => {
            let [dataset] = args[..] else {
                return Err(usage("xprofiler <dataset>"));
            };
            GqlCommand::Xprofiler(dataset.to_string())
        }
        "save" => {
            let [dir] = args[..] else {
                return Err(usage("save <dir>"));
            };
            GqlCommand::Save(dir.to_string())
        }
        "load" => {
            let [dir] = args[..] else {
                return Err(usage("load <dir>"));
            };
            GqlCommand::Load(dir.to_string())
        }
        _ => return Ok(None),
    };
    Ok(Some(gql))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_handles_quotes_and_blanks() {
        assert_eq!(tokenize("a b  c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(
            tokenize("comment g \"two words\"").unwrap(),
            vec!["comment", "g", "two words"]
        );
        assert_eq!(
            tokenize(r#"say "a \"quoted\" bit""#).unwrap(),
            vec!["say", "a \"quoted\" bit"]
        );
        assert_eq!(tokenize("   ").unwrap(), Vec::<String>::new());
        assert!(tokenize("bad \"unterminated").is_err());
    }

    #[test]
    fn parses_the_full_surface() {
        assert_eq!(parse("").unwrap(), None);
        assert_eq!(parse("help").unwrap(), Some(Request::Help));
        assert_eq!(parse("quit").unwrap(), Some(Request::Quit));
        assert_eq!(parse("exit").unwrap(), Some(Request::Quit));
        assert!(matches!(
            parse("open brain demo 42").unwrap(),
            Some(Request::Session(SessionCtl::OpenDemo { ref name, seed: 42 }))
                if name == "brain"
        ));
        assert!(matches!(
            parse("load-demo 7").unwrap(),
            Some(Request::Session(SessionCtl::OpenDemo { ref name, seed: 7 }))
                if name == "default"
        ));
        assert!(matches!(
            parse("mine E f 50 3 6").unwrap(),
            Some(Request::Gql(GqlCommand::Mine {
                k_pct: 50,
                min_records: 3,
                batch: 6,
                ..
            }))
        ));
        // `with fascicles` is sugar for the classic positional verb:
        // identical command, identical canonical spelling.
        assert_eq!(
            parse("mine E f with fascicles").unwrap(),
            parse("mine E f 50 3 6").unwrap()
        );
        assert_eq!(
            parse("mine E f with fascicles k_pct=70 min_records=2 batch=4").unwrap(),
            parse("mine E f 70 2 4").unwrap()
        );
        // The new backends carry their overrides sorted by key.
        match parse("mine E f with isa t_tags=2.5 seeds=4").unwrap() {
            Some(Request::Gql(GqlCommand::MineWith {
                ref algo,
                ref params,
                ..
            })) => {
                assert_eq!(algo, "isa");
                assert_eq!(
                    params,
                    &vec![
                        ("seeds".to_string(), ParamValue::UInt(4)),
                        ("t_tags".to_string(), ParamValue::Float(2.5)),
                    ]
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(
            parse("delete g --cascade").unwrap(),
            Some(Request::Gql(GqlCommand::Delete { cascade: true, .. }))
        ));
        assert!(matches!(
            parse("show sumy s 3").unwrap(),
            Some(Request::Gql(GqlCommand::Show {
                kind: ShowKind::Sumy,
                n: 3,
                ..
            }))
        ));
        assert!(matches!(
            parse("compare c a b intersect 2").unwrap(),
            Some(Request::Gql(GqlCommand::Compare { .. }))
        ));
    }

    #[test]
    fn errors_are_parse_errors() {
        assert!(parse("mine").is_err());
        assert!(parse("mine E f with").is_err());
        assert!(parse("mine E f with pca").is_err());
        assert!(parse("mine E f with isa bogus=1").is_err());
        assert!(parse("mine E f with isa seeds").is_err());
        assert!(parse("mine E f with isa seeds=abc").is_err());
        assert!(parse("mine E f with isa t_tags=NaN").is_err());
        assert!(parse("mine E f with isa seeds=2 seeds=3").is_err());
        assert!(parse("bogus").is_err());
        assert!(parse("open x demo notanumber").is_err());
        assert!(parse("compare a b c union 99").is_err());
        assert!(parse("topgap g notanumber").is_err());
        assert!(parse("populate a b").is_err());
        assert!(parse("populate a b c d").is_err());
    }

    #[test]
    fn check_parses_pipelines_and_rejects_non_gql() {
        match parse("check dataset E brain ; purity f_1").unwrap() {
            Some(Request::Gql(GqlCommand::Check(cmds))) => {
                assert_eq!(cmds.len(), 2);
                assert!(matches!(cmds[0], GqlCommand::Dataset { .. }));
                assert!(matches!(cmds[1], GqlCommand::Purity(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // A one-command pipeline needs no separator.
        assert!(matches!(
            parse("check tissues").unwrap(),
            Some(Request::Gql(GqlCommand::Check(ref cmds))) if cmds.len() == 1
        ));
        assert!(parse("check").is_err());
        assert!(parse("check dataset E brain ;").is_err());
        assert!(parse("check ; tissues").is_err());
        assert!(parse("check stats").is_err());
        assert!(parse("check open s demo 42").is_err());
        assert!(parse("check check tissues").is_err());
        // A sub-command parse error surfaces as the pipeline's error.
        assert!(parse("check mine E").is_err());
        // `check` never mutates, so it is a cacheable read.
        match parse("check tissues").unwrap() {
            Some(Request::Gql(cmd)) => {
                assert!(cmd.is_read());
                assert!(cmd.is_cacheable());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn read_write_classification() {
        let read = parse("show gap g 5").unwrap().unwrap();
        let write = parse("gap g a b").unwrap().unwrap();
        match (read, write) {
            (Request::Gql(r), Request::Gql(w)) => {
                assert!(r.is_read());
                assert!(!w.is_read());
            }
            other => panic!("unexpected: {other:?}"),
        }
        for line in ["tissues", "lineage", "cleaning", "fascicles", "purity f"] {
            match parse(line).unwrap().unwrap() {
                Request::Gql(cmd) => assert!(cmd.is_read(), "{line} should be a read"),
                other => panic!("{line} parsed to {other:?}"),
            }
        }
        for line in [
            "mine E f 50 3 6",
            "mine E f with isa",
            "mine E f with simplex k=2",
            "dataset E brain",
            "populate t",
            "comment t x",
            "load dir", // replaces the session in place, so it's a write
        ] {
            match parse(line).unwrap().unwrap() {
                Request::Gql(cmd) => assert!(!cmd.is_read(), "{line} should be a write"),
                other => panic!("{line} parsed to {other:?}"),
            }
        }
    }

    #[test]
    fn canonical_round_trips_and_normalizes() {
        // Every command surface: canonical() must parse back to the same
        // command, and re-canonicalize to the same string (a fixpoint).
        for line in [
            "tissues",
            "dataset E brain",
            "dataset E \"weird tissue\"",
            "custom C l1 l2",
            "select S E l1",
            "project P E AAAAAAAAAA",
            "mine E f 50 3 6",
            "mine E f with isa",
            "mine E f with isa seeds=4 t_tags=2.5",
            "mine E f with simplex k=2 zero_repl=0.25",
            "fascicles",
            "purity f_1",
            "groups f_1",
            "gap g s1 s2",
            "topgap g 5",
            "compare c a b intersect 2",
            "show sumy s 3",
            "plot E AAAAAAAAAA f_1",
            "library lib1",
            "tagfreq E AAAAAAAAAA",
            "export g out.csv",
            "comment g \"two words\"",
            "delete g --cascade",
            "delete g",
            "populate g",
            "populate P defS Eb",
            "check dataset E brain ; purity f_1 ; comment g \"two words\"",
            "lineage",
            "cleaning",
            "xprofiler E",
            "save dir",
            "load dir",
        ] {
            let Some(Request::Gql(cmd)) = parse(line).unwrap() else {
                panic!("{line} did not parse to a GQL command");
            };
            let canon = cmd.canonical();
            let Some(Request::Gql(reparsed)) = parse(&canon).unwrap() else {
                panic!("canonical {canon:?} did not parse");
            };
            assert_eq!(reparsed, cmd, "round-trip failed for {line:?}");
            assert_eq!(reparsed.canonical(), canon, "not a fixpoint: {canon:?}");
        }
        // Normalization: surface variants collapse to one key.
        let a = parse("show   gap g").unwrap().unwrap();
        let b = parse("show gap g 10").unwrap().unwrap();
        match (a, b) {
            (Request::Gql(a), Request::Gql(b)) => assert_eq!(a.canonical(), b.canonical()),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn cacheable_is_a_strict_subset_of_reads() {
        for line in ["show gap g 5", "lineage", "tissues", "purity f", "cleaning"] {
            let Some(Request::Gql(cmd)) = parse(line).unwrap() else {
                panic!("{line}");
            };
            assert!(cmd.is_cacheable(), "{line} should be cacheable");
        }
        // Filesystem-touching reads and all writes are not cacheable.
        for line in [
            "export g out.csv",
            "save dir",
            "load dir",
            "mine E f 50 3 6",
            "mine E f with isa seeds=4",
            "topgap g 5",
            "comment g x",
            "dataset E brain",
        ] {
            let Some(Request::Gql(cmd)) = parse(line).unwrap() else {
                panic!("{line}");
            };
            assert!(!cmd.is_cacheable(), "{line} must not be cacheable");
        }
    }

    #[test]
    fn help_covers_every_verb() {
        for verb in [
            "open",
            "use",
            "sessions",
            "close",
            "load-demo",
            "load-dir",
            "gen-corpus",
            "tissues",
            "dataset",
            "custom",
            "select",
            "project",
            "mine",
            "fascicles",
            "purity",
            "groups",
            "gap",
            "topgap",
            "compare",
            "show",
            "plot",
            "library",
            "tagfreq",
            "export",
            "comment",
            "check",
            "delete",
            "populate",
            "lineage",
            "cleaning",
            "xprofiler",
            "save",
            "load",
            "ping",
            "stats",
            "shutdown",
            "help",
            "quit",
        ] {
            assert!(HELP.contains(verb), "help missing {verb}");
        }
    }
}
