//! The world-typed symbol table: which names exist at each point of a
//! script, which worlds each lives in, and the definition lineage the
//! dataflow pass needs for cascade deletes.
//!
//! `mine <dataset> <out> …` is the one operator whose output names are
//! statically unknown (it creates `{out}_1 … {out}_N` for a data-dependent
//! N), so the table also records mine *prefixes*: a reference that matches
//! `{prefix}_<digits>` for a seen prefix resolves as a possible mined
//! fascicle rather than an undefined name.

use std::collections::BTreeMap;

use gea_core::session::GeaSession;

use crate::world::{World, WorldSet};

/// What the table knows about one name.
#[derive(Debug, Clone)]
pub struct SymbolInfo {
    /// The worlds the name lives in.
    pub worlds: WorldSet,
    /// Line that defined it; `None` for names seeded from a live session
    /// (or the root `SAGE`).
    pub defined_line: Option<usize>,
    /// Names derived *from* this one (for cascade-delete propagation).
    pub children: Vec<String>,
}

/// One `mine` the script ran: where, and over which data set (the
/// fascicles' lineage parent, for cascade-delete propagation).
#[derive(Debug, Clone)]
struct MineRecord {
    line: usize,
    dataset: String,
}

/// A live session's name population, used to seed the analyzer for the
/// server's `check` verb: the pipeline is validated against what the
/// session actually holds right now, not against an empty world.
#[derive(Debug, Clone, Default)]
pub struct SymbolSeed {
    /// ENUM table names (`SAGE` is implicit).
    pub enums: Vec<String>,
    /// SUMY table names.
    pub sumys: Vec<String>,
    /// GAP table names.
    pub gaps: Vec<String>,
    /// Mined fascicle names.
    pub fascicles: Vec<String>,
}

impl SymbolSeed {
    /// Snapshot the session's symbol population. Reads names only — the
    /// session is untouched.
    pub fn from_session(session: &GeaSession) -> SymbolSeed {
        SymbolSeed {
            enums: session.enum_tables().keys().cloned().collect(),
            sumys: session.sumy_tables().keys().cloned().collect(),
            gaps: session.gap_tables().keys().cloned().collect(),
            fascicles: session.fascicle_records().keys().cloned().collect(),
        }
    }
}

/// The analyzer's name environment at one program point.
#[derive(Debug, Clone)]
pub struct SymbolTable {
    symbols: BTreeMap<String, SymbolInfo>,
    /// `mine` output prefixes → where/what the mine ran over.
    mine_prefixes: BTreeMap<String, MineRecord>,
    /// Whether any `mine` has happened (or the seed session holds
    /// fascicles): gates `purity`/`groups`/`plot`.
    pub mined: bool,
    /// After `load <dir>` the session's contents are statically unknown,
    /// so undefined-name and redefinition checks are suppressed.
    pub open_world: bool,
}

impl SymbolTable {
    /// A fresh session: only the root `SAGE` exists.
    pub fn fresh() -> SymbolTable {
        let mut t = SymbolTable {
            symbols: BTreeMap::new(),
            mine_prefixes: BTreeMap::new(),
            mined: false,
            open_world: false,
        };
        t.insert_seeded("SAGE", World::Enum);
        t
    }

    /// Seeded from a live session's name population.
    pub fn seeded(seed: &SymbolSeed) -> SymbolTable {
        let mut t = SymbolTable::fresh();
        for n in &seed.enums {
            t.insert_seeded(n, World::Enum);
        }
        for n in &seed.sumys {
            t.insert_seeded(n, World::Sumy);
        }
        for n in &seed.gaps {
            t.insert_seeded(n, World::Gap);
        }
        for n in &seed.fascicles {
            t.insert_seeded(n, World::Fascicle);
        }
        t.mined = !seed.fascicles.is_empty();
        t
    }

    fn insert_seeded(&mut self, name: &str, w: World) {
        let info = self
            .symbols
            .entry(name.to_string())
            .or_insert_with(|| SymbolInfo {
                worlds: WorldSet::EMPTY,
                defined_line: None,
                children: Vec::new(),
            });
        info.worlds = info.worlds.with(w);
    }

    /// After `load <dir>`: anything might exist now.
    pub fn enter_open_world(&mut self) {
        self.open_world = true;
        self.mined = true;
    }

    /// The recorded info for a concretely-known name.
    pub fn get(&self, name: &str) -> Option<&SymbolInfo> {
        self.symbols.get(name)
    }

    /// Resolve a reference: a concrete symbol's worlds, or the
    /// ENUM+SUMY+fascicle triple for a plausible mined-fascicle name.
    pub fn lookup(&self, name: &str) -> Option<WorldSet> {
        if let Some(info) = self.symbols.get(name) {
            return Some(info.worlds);
        }
        self.implicit_fascicle(name).map(|_| {
            WorldSet::of(World::Enum)
                .with(World::Sumy)
                .with(World::Fascicle)
        })
    }

    /// The mine that *may* have created `name`, when `name` is
    /// `{prefix}_<digits>` for a seen mine prefix.
    fn implicit_fascicle(&self, name: &str) -> Option<&MineRecord> {
        let (prefix, suffix) = name.rsplit_once('_')?;
        if suffix.is_empty() || !suffix.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        self.mine_prefixes.get(prefix)
    }

    /// Whether defining `name` could collide with a fascicle a previous
    /// `mine` created (statically unknowable count): `(prefix, mine line)`.
    pub fn possible_fascicle_collision(&self, name: &str) -> Option<(String, usize)> {
        let line = self.implicit_fascicle(name)?.line;
        let (prefix, _) = name.rsplit_once('_').expect("implicit implies underscore");
        Some((prefix.to_string(), line))
    }

    /// Record a definition. The caller has already rejected redefinitions;
    /// `parents` grow child edges for cascade-delete propagation.
    pub fn define(&mut self, line: usize, name: &str, worlds: WorldSet, parents: &[&str]) {
        for p in parents {
            if let Some(info) = self.symbols.get_mut(*p) {
                info.children.push(name.to_string());
            }
        }
        self.symbols.insert(
            name.to_string(),
            SymbolInfo {
                worlds,
                defined_line: Some(line),
                children: Vec::new(),
            },
        );
    }

    /// Turn a successfully-resolved implicit fascicle reference into a
    /// concrete symbol — a child of the mined data set, so cascade
    /// deletes reach it — letting derived names hang child edges off it.
    pub fn materialize_implicit(&mut self, name: &str) {
        if self.symbols.contains_key(name) {
            return;
        }
        let Some(record) = self.implicit_fascicle(name) else {
            return;
        };
        let (line, dataset) = (record.line, record.dataset.clone());
        self.define(
            line,
            name,
            WorldSet::of(World::Enum)
                .with(World::Sumy)
                .with(World::Fascicle),
            &[dataset.as_str()],
        );
    }

    /// Record a `mine <dataset> <out> …`; returns the previous mine line
    /// if the prefix was already used (its output names would collide).
    pub fn note_mine(&mut self, line: usize, out: &str, dataset: &str) -> Option<usize> {
        self.mined = true;
        self.mine_prefixes
            .insert(
                out.to_string(),
                MineRecord {
                    line,
                    dataset: dataset.to_string(),
                },
            )
            .map(|r| r.line)
    }

    /// The closest defined name to `name` within Levenshtein distance 2,
    /// for "did you mean …?" hints on undefined-name diagnostics. When
    /// `want` is given, only names living in that world are candidates,
    /// so a typo'd SUMY reference never suggests an ENUM it couldn't use
    /// anyway. Ties go to the lexicographically smallest candidate.
    pub fn nearest(&self, name: &str, want: Option<World>) -> Option<String> {
        let mut best: Option<(usize, &str)> = None;
        for (cand, info) in &self.symbols {
            if cand == name {
                continue;
            }
            if let Some(w) = want {
                if !info.worlds.contains(w) {
                    continue;
                }
            }
            let Some(d) = levenshtein_within(name, cand, 2) else {
                continue;
            };
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, cand));
            }
        }
        best.map(|(_, cand)| cand.to_string())
    }

    /// `delete --cascade`: drop the name and everything derived from it.
    /// Returns every removed name so the dataflow pass can stop tracking
    /// them.
    pub fn remove_cascade(&mut self, name: &str) -> Vec<String> {
        let mut stack = vec![name.to_string()];
        let mut removed = Vec::new();
        while let Some(n) = stack.pop() {
            if let Some(info) = self.symbols.remove(&n) {
                stack.extend(info.children.iter().cloned());
                removed.push(n);
            }
        }
        // Mines over a removed data set go with it: their fascicles are
        // descendants in the session's lineage, so numbered names of
        // those prefixes must stop resolving.
        self.mine_prefixes
            .retain(|_, rec| !removed.contains(&rec.dataset));
        removed
    }
}

/// Levenshtein distance between `a` and `b` if it is at most `max`,
/// else `None`. Banded single-row dynamic program: a length gap beyond
/// `max` short-circuits, and a row whose minimum exceeds `max` aborts.
fn levenshtein_within(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > max {
        return None;
    }
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        let mut row_min = row[0];
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
            row_min = row_min.min(next);
        }
        if row_min > max {
            return None;
        }
    }
    (row[b.len()] <= max).then_some(row[b.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_knows_only_sage() {
        let t = SymbolTable::fresh();
        assert!(t.lookup("SAGE").unwrap().contains(World::Enum));
        assert!(t.lookup("E").is_none());
        assert!(!t.mined);
    }

    #[test]
    fn mined_prefixes_resolve_numbered_names() {
        let mut t = SymbolTable::fresh();
        t.define(1, "E", World::Enum.into(), &["SAGE"]);
        assert!(t.note_mine(3, "f", "E").is_none());
        assert!(t.mined);
        let ws = t.lookup("f_2").unwrap();
        assert!(ws.contains(World::Fascicle));
        assert!(ws.contains(World::Enum));
        assert!(ws.contains(World::Sumy));
        assert!(t.lookup("f_").is_none());
        assert!(t.lookup("f_2x").is_none());
        assert!(t.lookup("g_1").is_none());
        assert_eq!(t.possible_fascicle_collision("f_9"), Some(("f".into(), 3)));
        // Reusing the prefix reports the first mine's line.
        assert_eq!(t.note_mine(7, "f", "E"), Some(3));
    }

    #[test]
    fn cascade_removes_mines_over_the_deleted_dataset() {
        let mut t = SymbolTable::fresh();
        t.define(1, "E", World::Enum.into(), &["SAGE"]);
        t.define(2, "Other", World::Enum.into(), &["SAGE"]);
        t.note_mine(3, "f", "E");
        t.note_mine(4, "g", "Other");
        // A referenced fascicle becomes a concrete child of its data set.
        t.materialize_implicit("f_1");
        let removed = t.remove_cascade("E");
        assert!(removed.contains(&"f_1".to_string()));
        // Unreferenced numbered names of the dead prefix stop resolving;
        // the other mine survives.
        assert!(t.lookup("f_2").is_none());
        assert!(t.lookup("g_1").is_some());
    }

    #[test]
    fn cascade_removal_follows_child_edges() {
        let mut t = SymbolTable::fresh();
        t.define(1, "E", World::Enum.into(), &["SAGE"]);
        t.define(2, "S", World::Sumy.into(), &["E"]);
        t.define(3, "G", World::Gap.into(), &["S"]);
        t.define(4, "Other", World::Enum.into(), &["SAGE"]);
        let mut removed = t.remove_cascade("E");
        removed.sort();
        assert_eq!(removed, vec!["E", "G", "S"]);
        assert!(t.lookup("G").is_none());
        assert!(t.lookup("Other").is_some());
        assert!(t.lookup("SAGE").is_some());
    }

    #[test]
    fn levenshtein_band_matches_and_bails() {
        assert_eq!(levenshtein_within("gap", "gap", 2), Some(0));
        assert_eq!(levenshtein_within("brian", "brain", 2), Some(2));
        assert_eq!(levenshtein_within("f_1", "f_2", 2), Some(1));
        assert_eq!(levenshtein_within("abc", "xyz", 2), None);
        assert_eq!(levenshtein_within("short", "muchlongername", 2), None);
        assert_eq!(levenshtein_within("", "ab", 2), Some(2));
    }

    #[test]
    fn nearest_suggests_within_distance_two_in_the_right_world() {
        let mut t = SymbolTable::fresh();
        t.define(1, "Expr", World::Enum.into(), &["SAGE"]);
        t.define(2, "ExprSumy", World::Sumy.into(), &["Expr"]);
        // A one-edit typo finds the ENUM, not the SUMY living further away.
        assert_eq!(t.nearest("Exqr", Some(World::Enum)), Some("Expr".into()));
        // World filtering: the same typo asked for as a SUMY has no
        // candidate within distance 2 ("ExprSumy" is 5 edits away).
        assert_eq!(t.nearest("Exqr", Some(World::Sumy)), None);
        // Unfiltered lookup may suggest any world.
        assert_eq!(t.nearest("Expq", None), Some("Expr".into()));
        // Nothing remotely close: no hint at all.
        assert_eq!(t.nearest("zzzzzz", None), None);
        // Ties break to the lexicographically smallest candidate.
        t.define(3, "Exp1", World::Enum.into(), &["SAGE"]);
        assert_eq!(t.nearest("Exp", Some(World::Enum)), Some("Exp1".into()));
    }

    #[test]
    fn seeding_merges_worlds_per_name() {
        let seed = SymbolSeed {
            enums: vec!["f_1".into(), "E".into()],
            sumys: vec!["f_1".into()],
            gaps: vec!["G".into()],
            fascicles: vec!["f_1".into()],
        };
        let t = SymbolTable::seeded(&seed);
        assert!(t.mined);
        let ws = t.lookup("f_1").unwrap();
        assert!(
            ws.contains(World::Enum) && ws.contains(World::Sumy) && ws.contains(World::Fascicle)
        );
        assert!(!t.lookup("E").unwrap().contains(World::Sumy));
        assert!(t.lookup("G").unwrap().contains(World::Gap));
        assert_eq!(t.get("E").unwrap().defined_line, None);
    }
}
