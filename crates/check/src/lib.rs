//! gea-check: the GQL grammar plus a world-typed static analyzer for GQL
//! scripts.
//!
//! The analyzer consumes parsed [`gql::GqlCommand`]s and, **without
//! touching a session**, runs three passes over the linear script:
//!
//! 1. a **world/type pass** — a symbol table mapping names to
//!    [`World`]s flags undefined references, world mismatches (`gap` over
//!    an ENUM, `show sumy` of a GAP), redefinitions, and use of
//!    mine-dependent verbs (`purity`, `groups`, `plot`) before any `mine`;
//! 2. a **dataflow pass** — dead assignments, definitions discarded by a
//!    session-replacing `load`, and mutation-after-`export` hazards;
//! 3. a **parameter-domain pass** — `k% > 100`, `min = 0`, `topgap 0`,
//!    empty library/tag lists, export paths escaping the working
//!    directory, and compare queries inapplicable to `difference`.
//!
//! Diagnostics carry 1-based line numbers and a severity; only errors
//! make a script unrunnable. Front-ends: `gea-cli --check <script>` and
//! the batch pre-flight gate analyze whole scripts with
//! [`check_script`]; the server's `check` GQL verb validates a pipeline
//! against a live session's actual name population with
//! [`check_pipeline`] and a [`SymbolSeed`].

pub mod cost;
pub mod dataflow;
pub mod diag;
pub mod effects;
pub mod fix;
pub mod gql;
pub mod symbols;
pub mod world;

pub use cost::{
    cost_pipeline, cost_script, CommandCost, CostModel, CostReport, CostSeed, Interval,
};
pub use diag::{CheckReport, Diagnostic, Severity};
pub use effects::{Effect, EffectTable, Scatter, VerbEffect};
pub use fix::{fix_script, FixOutcome};
pub use symbols::{SymbolSeed, SymbolTable};
pub use world::{World, WorldSet};

use gea_core::compare::CompareQuery;
use gea_sage::TissueType;

use dataflow::Dataflow;
use gql::{GqlCommand, Request, SessionCtl, ShowKind};

/// The three-pass analyzer. Feed it a script line by line
/// ([`Analyzer::check_line`]) or already-parsed commands
/// ([`Analyzer::check_command`]), then [`Analyzer::finish`].
#[derive(Debug)]
pub struct Analyzer {
    symbols: SymbolTable,
    flow: Dataflow,
    diags: Vec<Diagnostic>,
    commands: usize,
    session_open: bool,
    quit_at: Option<usize>,
    warned_unreachable: bool,
    warned_no_session: bool,
    /// True when analyzing a pipeline *fragment* against a live session
    /// (the server `check` verb). A fragment's definitions outlive the
    /// analysis — they would land in the session and stay readable — so
    /// the end-of-script dead-assignment flush must not fire on them.
    fragment: bool,
    /// `save` targets seen so far (path → first line), for path-collision
    /// checking. Deliberately *not* reset when the script opens a new
    /// session: the collision is on the filesystem, not in the session.
    saved_paths: std::collections::BTreeMap<String, usize>,
}

impl Analyzer {
    /// For a standalone script: no session is open until the script opens
    /// one (`load-demo` / `open … demo` / `load-dir`).
    pub fn for_script() -> Analyzer {
        Analyzer {
            symbols: SymbolTable::fresh(),
            flow: Dataflow::default(),
            diags: Vec::new(),
            commands: 0,
            session_open: false,
            quit_at: None,
            warned_unreachable: false,
            warned_no_session: false,
            fragment: false,
            saved_paths: std::collections::BTreeMap::new(),
        }
    }

    /// For the server's `check` verb: validate against a live session's
    /// actual name population.
    pub fn for_session(seed: &SymbolSeed) -> Analyzer {
        Analyzer {
            symbols: SymbolTable::seeded(seed),
            session_open: true,
            fragment: true,
            ..Analyzer::for_script()
        }
    }

    /// Analyze one raw script line (1-based `line`). Blank lines and `#`
    /// comments are skipped, matching batch-mode execution.
    pub fn check_line(&mut self, line: usize, text: &str) {
        let trimmed = text.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return;
        }
        if self.note_unreachable(line) {
            return;
        }
        match gql::parse(trimmed) {
            Ok(None) => {}
            Ok(Some(req)) => self.check_request(line, &req),
            Err(e) => {
                self.commands += 1;
                self.push(Diagnostic::error(line, "parse", e.0));
            }
        }
    }

    /// Analyze one parsed request (session control included).
    pub fn check_request(&mut self, line: usize, req: &Request) {
        self.commands += 1;
        match req {
            Request::Help | Request::Ping | Request::GenCorpus { .. } => {}
            Request::Quit => self.quit_at = Some(line),
            Request::Stats | Request::Shutdown => self.front_end_only(line, req.verb()),
            Request::Session(ctl) => match ctl {
                SessionCtl::OpenDemo { .. } | SessionCtl::OpenDir { .. } => {
                    self.open_session(line);
                }
                SessionCtl::Use(_) | SessionCtl::List | SessionCtl::Close(_) => {
                    self.front_end_only(line, req.verb());
                }
            },
            Request::Gql(cmd) => {
                if !self.session_open && !self.warned_no_session {
                    self.warned_no_session = true;
                    self.push(Diagnostic::error(
                        line,
                        "no-session",
                        format!(
                            "no session is open before `{}`; start with `load-demo <seed>` or `open <name> demo <seed>`",
                            cmd.verb()
                        ),
                    ));
                }
                self.command(line, cmd);
            }
        }
    }

    /// Analyze one parsed algebra command (the server `check` verb's
    /// entry point; `line` is the 1-based position in the pipeline).
    pub fn check_command(&mut self, line: usize, cmd: &GqlCommand) {
        self.commands += 1;
        self.command(line, cmd);
    }

    /// Run the end-of-script dataflow flush and produce the report. For a
    /// session fragment the flush is skipped: the checked pipeline's
    /// definitions would persist in the live session, so "defined but
    /// never read *within the fragment*" is not a defect.
    pub fn finish(mut self) -> CheckReport {
        if !self.fragment {
            let dead = self.flow.finish();
            self.diags.extend(dead);
        }
        self.diags.sort_by_key(|d| d.line);
        CheckReport {
            diagnostics: self.diags,
            commands: self.commands,
        }
    }

    fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// True (and warns, once) when `line` sits after a `quit`.
    fn note_unreachable(&mut self, line: usize) -> bool {
        let Some(q) = self.quit_at else {
            return false;
        };
        if !self.warned_unreachable {
            self.warned_unreachable = true;
            self.push(Diagnostic::warning(
                line,
                "unreachable",
                format!("the script quits at line {q}; this and later commands never run"),
            ));
        }
        true
    }

    fn front_end_only(&mut self, line: usize, verb: &str) {
        self.push(Diagnostic::error(
            line,
            "front-end",
            format!("`{verb}` is a server command; run it over the wire with gea-client, not in a gea-cli batch"),
        ));
    }

    fn open_session(&mut self, line: usize) {
        let lost = self.flow.replaced(line, "open");
        self.diags.extend(lost);
        self.symbols = SymbolTable::fresh();
        self.session_open = true;
    }

    fn require_mine(&mut self, line: usize, verb: &str) -> bool {
        if self.symbols.open_world || self.symbols.mined {
            return true;
        }
        self.push(Diagnostic::error(
            line,
            "mine-required",
            format!("{verb} needs mined fascicles, but no `mine` precedes this command"),
        ));
        false
    }

    /// Resolve a reference that must live in world `want`.
    fn read_as(&mut self, line: usize, name: &str, want: World, verb: &str) {
        if self.symbols.open_world {
            self.flow.read(name);
            return;
        }
        match self.symbols.lookup(name) {
            Some(ws) if ws.contains(want) => {
                self.symbols.materialize_implicit(name);
                self.flow.read(name);
            }
            Some(ws) => self.push(Diagnostic::error(
                line,
                "world-mismatch",
                format!("{verb} needs a {want} but {name:?} is {}", ws.describe()),
            )),
            None => {
                let mut d = Diagnostic::error(
                    line,
                    "undefined-name",
                    format!("{verb}: no {want} named {name:?} exists at this point"),
                );
                if let Some(near) = self.symbols.nearest(name, Some(want)) {
                    d = d.with_help(format!("did you mean {near:?}?"));
                    d = d.with_fix(diag::Fix::ReplaceName {
                        from: name.to_string(),
                        to: near,
                    });
                }
                self.push(d);
            }
        }
    }

    /// Resolve a reference that accepts any world (comment/delete/export).
    fn read_any(&mut self, line: usize, name: &str, verb: &str) {
        if self.symbols.open_world {
            self.flow.read(name);
            return;
        }
        if self.symbols.lookup(name).is_some() {
            self.symbols.materialize_implicit(name);
            self.flow.read(name);
        } else {
            let mut d = Diagnostic::error(
                line,
                "undefined-name",
                format!("{verb}: {name:?} is not defined at this point"),
            );
            if let Some(near) = self.symbols.nearest(name, None) {
                d = d.with_help(format!("did you mean {near:?}?"));
                d = d.with_fix(diag::Fix::ReplaceName {
                    from: name.to_string(),
                    to: near,
                });
            }
            self.push(d);
        }
    }

    /// Record a definition; errors on redefinition. `track` opts the name
    /// into dead-assignment analysis (pure definitions only — see
    /// [`dataflow`]).
    fn define(&mut self, line: usize, name: &str, worlds: WorldSet, parents: &[&str], track: bool) {
        if !self.symbols.open_world {
            if let Some(info) = self.symbols.get(name) {
                let provenance = match info.defined_line {
                    Some(l) => format!("already defined at line {l}"),
                    None => "already defined in the session".to_string(),
                };
                self.push(Diagnostic::error(
                    line,
                    "redefinition",
                    format!("{name:?} is {provenance}; `delete` it first or pick another name"),
                ));
                return;
            }
            if let Some((prefix, mline)) = self.symbols.possible_fascicle_collision(name) {
                self.push(Diagnostic::warning(
                    line,
                    "redefinition",
                    format!(
                        "{name:?} may collide with a fascicle of `mine … {prefix}` (line {mline})"
                    ),
                ));
            }
        }
        self.symbols.define(line, name, worlds, parents);
        if track {
            self.flow.define(line, name);
        }
    }

    fn command(&mut self, line: usize, cmd: &GqlCommand) {
        match cmd {
            GqlCommand::Tissues
            | GqlCommand::Lineage
            | GqlCommand::Cleaning
            | GqlCommand::Library(_) => {}
            GqlCommand::Save(dir) => {
                if let Some(&prev) = self.saved_paths.get(dir) {
                    self.push(Diagnostic::warning(
                        line,
                        "save-collision",
                        format!(
                            "`save {dir}` overwrites the snapshot saved at line {prev}; the earlier state is lost"
                        ),
                    ));
                } else {
                    self.saved_paths.insert(dir.clone(), line);
                }
            }
            GqlCommand::Dataset { name, tissue } => {
                if let TissueType::Custom(t) = tissue {
                    self.push(Diagnostic::warning(
                        line,
                        "param-suspect",
                        format!(
                            "unknown tissue {t:?} (system tissues: brain, breast, prostate, ovary, colon, pancreas, vascular, skin, kidney); the selection may be empty"
                        ),
                    ));
                }
                self.define(line, name, World::Enum.into(), &["SAGE"], true);
            }
            GqlCommand::Custom { name, libraries } => {
                if libraries.is_empty() {
                    self.push(Diagnostic::error(
                        line,
                        "param-domain",
                        "custom needs at least one library",
                    ));
                }
                self.define(line, name, World::Enum.into(), &["SAGE"], true);
            }
            GqlCommand::Select {
                name,
                dataset,
                libraries,
            } => {
                self.read_as(line, dataset, World::Enum, "select");
                if libraries.is_empty() {
                    self.push(Diagnostic::error(
                        line,
                        "param-domain",
                        "select needs at least one library",
                    ));
                }
                self.define(line, name, World::Enum.into(), &[dataset.as_str()], true);
            }
            GqlCommand::Project {
                name,
                dataset,
                tags,
            } => {
                self.read_as(line, dataset, World::Enum, "project");
                if tags.is_empty() {
                    self.push(Diagnostic::error(
                        line,
                        "param-domain",
                        "project needs at least one tag",
                    ));
                }
                self.define(line, name, World::Enum.into(), &[dataset.as_str()], true);
            }
            GqlCommand::Mine {
                dataset,
                out,
                k_pct,
                min_records,
                batch,
            } => {
                self.read_as(line, dataset, World::Enum, "mine");
                if *k_pct > 100 {
                    self.push(
                        Diagnostic::error(
                            line,
                            "param-domain",
                            format!(
                                "k% = {k_pct}: a compactness threshold above 100% of the data set's tags can never be met"
                            ),
                        )
                        .with_fix(diag::Fix::ReplaceToken {
                            index: 3,
                            from: k_pct.to_string(),
                            with: "100".to_string(),
                        }),
                    );
                } else if *k_pct == 0 {
                    self.push(Diagnostic::warning(
                        line,
                        "param-suspect",
                        "k% = 0 makes every record trivially compact",
                    ));
                }
                if *min_records == 0 {
                    self.push(
                        Diagnostic::error(
                            line,
                            "param-domain",
                            "min = 0: a fascicle needs at least one record",
                        )
                        .with_fix(diag::Fix::ReplaceToken {
                            index: 4,
                            from: "0".to_string(),
                            with: "1".to_string(),
                        }),
                    );
                }
                if *batch == 0 {
                    self.push(
                        Diagnostic::error(line, "param-domain", "batch = 0 mines nothing")
                            .with_fix(diag::Fix::ReplaceToken {
                                index: 5,
                                from: "0".to_string(),
                                with: "1".to_string(),
                            }),
                    );
                }
                if let Some(prev) = self.symbols.note_mine(line, out, dataset) {
                    self.push(Diagnostic::warning(
                        line,
                        "redefinition",
                        format!(
                            "`mine … {out}` already ran at line {prev}; identically-numbered fascicle names will conflict"
                        ),
                    ));
                }
            }
            GqlCommand::MineWith {
                dataset,
                out,
                algo,
                params,
            } => {
                self.read_as(line, dataset, World::Enum, "mine");
                // The parser only accepts registered backends and typed
                // keys; the *ranges* are validated here, per the backend's
                // published schema.
                match gea_mine::backend(algo) {
                    Some(backend) => {
                        for (key, value) in params {
                            let Some(spec) =
                                backend.params().iter().find(|s| s.key == key.as_str())
                            else {
                                self.push(Diagnostic::error(
                                    line,
                                    "param-domain",
                                    format!("backend {algo} has no parameter {key:?}"),
                                ));
                                continue;
                            };
                            if !spec.domain.contains(value) {
                                self.push(Diagnostic::error(
                                    line,
                                    "param-domain",
                                    format!(
                                        "{key} = {value} out of domain for `with {algo}` ({})",
                                        spec.domain.describe()
                                    ),
                                ));
                            }
                        }
                    }
                    None => {
                        self.push(Diagnostic::error(
                            line,
                            "param-domain",
                            format!(
                                "unknown mining backend {algo:?} (available: {})",
                                gea_mine::backend_names()
                            ),
                        ));
                    }
                }
                if let Some(prev) = self.symbols.note_mine(line, out, dataset) {
                    self.push(Diagnostic::warning(
                        line,
                        "redefinition",
                        format!(
                            "`mine … {out}` already ran at line {prev}; identically-numbered fascicle names will conflict"
                        ),
                    ));
                }
            }
            GqlCommand::Fascicles => {
                if !self.symbols.open_world && !self.symbols.mined {
                    self.push(Diagnostic::warning(
                        line,
                        "mine-required",
                        "fascicles lists mined fascicles, but no `mine` precedes this command",
                    ));
                }
            }
            GqlCommand::Purity(f) => {
                if self.require_mine(line, "purity") {
                    self.read_as(line, f, World::Fascicle, "purity");
                }
            }
            GqlCommand::Groups(f) => {
                if self.require_mine(line, "groups") {
                    self.read_as(line, f, World::Fascicle, "groups");
                    // The engine forms control groups over the Cancer
                    // property, so the three derived names are static.
                    let in_f = format!("{f}CancerFasTbl");
                    let out_f = format!("{f}CanNotInFasTbl");
                    let contrast = format!("{f}NormalTable");
                    self.define(line, &in_f, World::Sumy.into(), &[f.as_str()], false);
                    let enum_sumy = WorldSet::of(World::Enum).with(World::Sumy);
                    self.define(line, &out_f, enum_sumy, &[f.as_str()], false);
                    self.define(line, &contrast, enum_sumy, &[f.as_str()], false);
                }
            }
            GqlCommand::Gap { name, sumy1, sumy2 } => {
                self.read_as(line, sumy1, World::Sumy, "gap");
                self.read_as(line, sumy2, World::Sumy, "gap");
                self.define(
                    line,
                    name,
                    World::Gap.into(),
                    &[sumy1.as_str(), sumy2.as_str()],
                    true,
                );
            }
            GqlCommand::TopGap { gap, x } => {
                self.read_as(line, gap, World::Gap, "topgap");
                if *x == 0 {
                    self.push(
                        Diagnostic::error(line, "param-domain", "topgap 0 selects no gaps")
                            .with_fix(diag::Fix::ReplaceToken {
                                index: 2,
                                from: "0".to_string(),
                                with: "1".to_string(),
                            }),
                    );
                } else {
                    self.define(
                        line,
                        &format!("{gap}_{x}"),
                        World::Gap.into(),
                        &[gap.as_str()],
                        false,
                    );
                }
            }
            GqlCommand::Compare {
                name,
                g1,
                g2,
                op,
                query,
            } => {
                self.read_as(line, g1, World::Gap, "compare");
                self.read_as(line, g2, World::Gap, "compare");
                if !query.applies_to(*op) {
                    let qnum = CompareQuery::ALL
                        .iter()
                        .position(|q| q == query)
                        .map_or(0, |i| i + 1);
                    self.push(Diagnostic::error(
                        line,
                        "query-domain",
                        format!(
                            "query #{qnum} needs both gap columns, which `difference` does not carry (use queries 1-5)"
                        ),
                    ));
                }
                self.define(
                    line,
                    name,
                    World::Gap.into(),
                    &[g1.as_str(), g2.as_str()],
                    false,
                );
            }
            GqlCommand::Show { kind, name, n } => {
                let (want, verb) = match kind {
                    ShowKind::Gap => (World::Gap, "show gap"),
                    ShowKind::Sumy => (World::Sumy, "show sumy"),
                };
                self.read_as(line, name, want, verb);
                if *n == 0 {
                    self.push(Diagnostic::warning(
                        line,
                        "param-suspect",
                        "show 0 rows shows nothing",
                    ));
                }
            }
            GqlCommand::Plot {
                dataset, fascicle, ..
            } => {
                self.read_as(line, dataset, World::Enum, "plot");
                if self.require_mine(line, "plot") {
                    self.read_as(line, fascicle, World::Fascicle, "plot");
                }
            }
            GqlCommand::TagFreq { dataset, .. } => {
                self.read_as(line, dataset, World::Enum, "tagfreq");
            }
            GqlCommand::Xprofiler(dataset) => {
                self.read_as(line, dataset, World::Enum, "xprofiler");
            }
            GqlCommand::Export { name, path } => {
                self.read_any(line, name, "export");
                self.flow.export(line, name);
                let p = std::path::Path::new(path);
                let escapes = p.is_absolute()
                    || p.components()
                        .any(|c| matches!(c, std::path::Component::ParentDir));
                if escapes {
                    self.push(Diagnostic::warning(
                        line,
                        "export-path",
                        format!("export path {path:?} escapes the working directory"),
                    ));
                }
            }
            GqlCommand::Comment { name, .. } => self.read_any(line, name, "comment"),
            GqlCommand::Delete { name, cascade } => {
                self.read_any(line, name, "delete");
                if let Some(d) = self.flow.mutated(line, name) {
                    self.push(d);
                }
                if *cascade {
                    for removed in self.symbols.remove_cascade(name) {
                        self.flow.forget(&removed);
                    }
                }
            }
            GqlCommand::Populate { name, from: None } => {
                // Re-materialization restores the table's own contents —
                // a read of the lineage, not a mutation hazard.
                self.read_any(line, name, "populate");
            }
            GqlCommand::Populate {
                name,
                from: Some((sumy, dataset)),
            } => {
                self.read_as(line, sumy, World::Sumy, "populate");
                self.read_as(line, dataset, World::Enum, "populate");
                self.define(
                    line,
                    name,
                    World::Enum.into(),
                    &[sumy.as_str(), dataset.as_str()],
                    true,
                );
            }
            GqlCommand::Load(dir) => {
                // Only meaningful when the script saves at all: a script
                // restoring externally-produced snapshots is fine, but one
                // that saves under some paths and loads a different one
                // has probably misspelled the path.
                if !self.saved_paths.is_empty() && !self.saved_paths.contains_key(dir) {
                    let saved: Vec<&str> = self.saved_paths.keys().map(|s| s.as_str()).collect();
                    self.push(Diagnostic::warning(
                        line,
                        "load-unsaved",
                        format!(
                            "`load {dir}` restores a path this script never saved (saved: {})",
                            saved.join(", ")
                        ),
                    ));
                }
                let lost = self.flow.replaced(line, "load");
                self.diags.extend(lost);
                self.symbols.enter_open_world();
            }
            // A `check` inside a script is itself a pure read; its
            // pipeline is validated when it runs.
            GqlCommand::Check(_) => {}
        }
    }
}

/// Analyze a whole script (the `gea-cli --check` and batch pre-flight
/// entry point).
pub fn check_script(text: &str) -> CheckReport {
    let mut a = Analyzer::for_script();
    for (i, line) in text.lines().enumerate() {
        a.check_line(i + 1, line);
    }
    a.finish()
}

/// Analyze a pipeline of already-parsed commands against a live session's
/// name population (the server `check` verb's entry point). Diagnostic
/// "lines" are 1-based positions in the pipeline.
pub fn check_pipeline(seed: &SymbolSeed, cmds: &[GqlCommand]) -> CheckReport {
    let mut a = Analyzer::for_session(seed);
    for (i, cmd) in cmds.iter().enumerate() {
        a.check_command(i + 1, cmd);
    }
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(report: &CheckReport) -> Vec<(&'static str, usize, Severity)> {
        report
            .diagnostics
            .iter()
            .map(|d| (d.code, d.line, d.severity))
            .collect()
    }

    fn error_codes(report: &CheckReport) -> Vec<&'static str> {
        report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_pipeline_has_no_findings() {
        let report = check_script(
            "# thesis case study shape\n\
             load-demo 42\n\
             dataset Eb brain\n\
             mine Eb f 50 3 6\n\
             purity f_1\n\
             groups f_1\n\
             gap g f_1CancerFasTbl f_1NormalTable\n\
             topgap g 10\n\
             show gap g_10 5\n\
             export g out.csv\n\
             quit\n",
        );
        assert!(
            report.diagnostics.is_empty(),
            "expected clean, got: {}",
            report.render()
        );
        assert!(report.is_clean());
        assert_eq!(report.commands, 10);
    }

    #[test]
    fn undefined_names_are_errors() {
        let report = check_script("load-demo 1\ngap g s1 s2\n");
        assert_eq!(
            error_codes(&report),
            vec!["undefined-name", "undefined-name"]
        );
        assert_eq!(report.diagnostics[0].line, 2);
        assert!(!report.is_clean());
    }

    #[test]
    fn near_miss_references_get_a_suggestion() {
        // `Brain` typo'd as `Brian` (distance 2): the undefined-name
        // error carries a help hint in both renderings.
        let report = check_script("load-demo 1\ndataset Brain brain\nexport Brian b.csv\n");
        assert_eq!(error_codes(&report), vec!["undefined-name"]);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "undefined-name")
            .unwrap();
        assert_eq!(d.help.as_deref(), Some("did you mean \"Brain\"?"));
        assert!(d.render().contains("\n  help: did you mean \"Brain\"?"));
        assert!(d
            .render_machine()
            .contains(r#""help":"did you mean \"Brain\"?""#));
        // World-filtered path: a typo'd gap name suggests the real GAP.
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             mine E f 50 3 6\n\
             groups f_1\n\
             gap g f_1CancerFasTbl f_1NormalTable\n\
             topgap gg 5\n",
        );
        assert_eq!(error_codes(&report), vec!["undefined-name"]);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "undefined-name")
            .unwrap();
        assert_eq!(d.help.as_deref(), Some("did you mean \"g\"?"));
    }

    #[test]
    fn far_miss_references_get_no_suggestion() {
        let report = check_script("load-demo 1\ndataset E brain\nexport Nothing n.csv\n");
        assert_eq!(error_codes(&report), vec!["undefined-name"]);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "undefined-name")
            .unwrap();
        assert_eq!(d.help, None, "no in-world name within distance 2");
        assert!(!d.render().contains("help:"));
        assert!(!d.render_machine().contains("help"));
    }

    #[test]
    fn world_mismatches_are_errors() {
        // `gap` over an ENUM, `show sumy` of a GAP.
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             dataset F lung2\n\
             gap g E E\n\
             show sumy g 5\n",
        );
        let errs = error_codes(&report);
        assert_eq!(
            errs,
            vec!["world-mismatch", "world-mismatch", "world-mismatch"]
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("needs a SUMY") && d.message.contains("ENUM")));
        // Line 3's unknown tissue is only a warning.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "param-suspect" && d.line == 3));
    }

    #[test]
    fn redefinition_is_an_error() {
        let report =
            check_script("load-demo 1\ndataset E brain\ndataset E breast\nexport E e.csv\n");
        assert_eq!(error_codes(&report), vec!["redefinition"]);
        assert_eq!(report.diagnostics[0].line, 3);
        assert!(report.diagnostics[0].message.contains("line 2"));
        // Redefining the root is also caught.
        let report = check_script("load-demo 1\ndataset SAGE brain\n");
        assert_eq!(error_codes(&report), vec!["redefinition"]);
    }

    #[test]
    fn mine_dependent_verbs_need_a_mine() {
        let report =
            check_script("load-demo 1\ndataset E brain\npurity f_1\ngroups f_1\nexport E e.csv\n");
        assert_eq!(error_codes(&report), vec!["mine-required", "mine-required"]);
        // After a mine, numbered outputs of its prefix resolve.
        let report = check_script(
            "load-demo 1\ndataset E brain\nmine E f 50 3 6\npurity f_1\npurity other_1\n",
        );
        assert_eq!(error_codes(&report), vec!["undefined-name"]);
        assert_eq!(report.diagnostics[0].line, 5);
    }

    #[test]
    fn dead_assignments_are_warnings() {
        let report =
            check_script("load-demo 1\ndataset E brain\ndataset F brain\nexport E e.csv\n");
        assert!(report.is_clean(), "dead assignment must stay a warning");
        assert_eq!(
            codes(&report),
            vec![("dead-assignment", 3, Severity::Warning)]
        );
        assert!(report.diagnostics[0].message.contains("\"F\""));
    }

    #[test]
    fn out_of_domain_parameters_are_errors() {
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             mine E f 150 0 0\n\
             mine E h 50 3 6\n\
             topgap q 0\n",
        );
        let errs = error_codes(&report);
        // k% > 100, min = 0, batch = 0, then topgap: undefined gap + x = 0.
        assert_eq!(
            errs,
            vec![
                "param-domain",
                "param-domain",
                "param-domain",
                "undefined-name",
                "param-domain"
            ]
        );
    }

    #[test]
    fn difference_rejects_two_column_queries() {
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             mine E f 50 3 6\n\
             groups f_1\n\
             gap a f_1CancerFasTbl f_1NormalTable\n\
             gap b f_1CancerFasTbl f_1CanNotInFasTbl\n\
             compare bad a b difference 7\n\
             compare ok a b intersect 7\n\
             show gap bad 3\n\
             show gap ok 3\n",
        );
        assert_eq!(error_codes(&report), vec!["query-domain"]);
        assert_eq!(report.diagnostics[0].line, 7);
    }

    #[test]
    fn load_discards_and_opens_the_world() {
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             load /tmp/saved\n\
             show gap anything 5\n\
             dataset E brain\n\
             export E e.csv\n",
        );
        // E discarded unread; after load, unknown names and redefinitions
        // are not statically decidable.
        assert!(report.is_clean());
        assert_eq!(
            codes(&report),
            vec![("discarded-by-load", 2, Severity::Warning)]
        );
    }

    #[test]
    fn mine_with_is_world_typed_and_domain_checked() {
        // The `with` form reads an ENUM like bare mine, and registers the
        // prefix so purity on its numbered outputs resolves.
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             mine E f with isa seeds=4\n\
             purity f_1\n\
             export E e.csv\n",
        );
        assert!(report.is_clean(), "{report:?}");
        // Mining a SUMY world is a world-type error.
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             mine E f 50 3 6\n\
             groups f_1\n\
             mine f_1CancerFasTbl g with simplex\n\
             export E e.csv\n",
        );
        assert_eq!(error_codes(&report), vec!["world-mismatch"]);
        // Out-of-domain values parse (the type is right) but are flagged.
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             mine E f with isa seeds=0\n\
             mine E g with simplex k=0 max_iters=0\n\
             export E e.csv\n",
        );
        assert_eq!(
            error_codes(&report),
            vec!["param-domain", "param-domain", "param-domain"]
        );
        // Reusing a prefix across backends still warns.
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             mine E f 50 3 6\n\
             mine E f with isa\n\
             export E e.csv\n",
        );
        assert_eq!(codes(&report), vec![("redefinition", 4, Severity::Warning)]);
    }

    #[test]
    fn save_collisions_and_unsaved_loads_are_warnings() {
        // Two saves to one path: the first snapshot is clobbered.
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             save /tmp/a\n\
             dataset F brain\n\
             save /tmp/a\n\
             export F f.csv\n\
             export E e.csv\n",
        );
        assert!(report.is_clean());
        assert_eq!(
            codes(&report),
            vec![("save-collision", 5, Severity::Warning)]
        );
        // Loading a path the script never saved (while it does save) is
        // probably a typo.
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             export E e.csv\n\
             save /tmp/a\n\
             load /tmp/b\n",
        );
        assert!(report.is_clean());
        assert_eq!(codes(&report), vec![("load-unsaved", 5, Severity::Warning)]);
        // Save-then-load of the same path is the intended round trip.
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             export E e.csv\n\
             save /tmp/a\n\
             load /tmp/a\n",
        );
        assert!(report.is_clean());
        assert!(codes(&report).is_empty(), "{report:?}");
    }

    #[test]
    fn export_then_delete_is_stale() {
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             export E e.csv\n\
             delete E\n\
             export F /abs/f.csv\n",
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "stale-export" && d.line == 4));
        // Absolute export path warns; the undefined F errs.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "export-path" && d.line == 5));
        assert_eq!(error_codes(&report), vec!["undefined-name"]);
    }

    #[test]
    fn cascade_delete_removes_descendants() {
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             mine E f 50 3 6\n\
             groups f_1\n\
             gap g f_1CancerFasTbl f_1NormalTable\n\
             delete E --cascade\n\
             show gap g 5\n",
        );
        assert_eq!(error_codes(&report), vec!["undefined-name"]);
        assert_eq!(report.diagnostics.last().unwrap().line, 7);
    }

    #[test]
    fn no_session_and_unreachable_and_front_end() {
        let report = check_script("tissues\nstats\nquit\ntissues\ntissues\n");
        let errs = error_codes(&report);
        assert_eq!(errs, vec!["no-session", "front-end"]);
        // One unreachable warning, at the first dead command only.
        let unreachable: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "unreachable")
            .collect();
        assert_eq!(unreachable.len(), 1);
        assert_eq!(unreachable[0].line, 4);
    }

    #[test]
    fn parse_failures_are_line_anchored() {
        let report = check_script("load-demo 1\nbogus command here\nmine E\n");
        let errs = error_codes(&report);
        assert_eq!(errs, vec!["parse", "parse"]);
        assert_eq!(report.diagnostics[0].line, 2);
        assert_eq!(report.diagnostics[1].line, 3);
    }

    #[test]
    fn defining_over_a_mine_prefix_warns() {
        let report = check_script(
            "load-demo 1\n\
             dataset E brain\n\
             mine E f 50 3 6\n\
             groups f_1\n\
             gap f_9 f_1CancerFasTbl f_1NormalTable\n\
             show gap f_9 3\n",
        );
        assert!(report.is_clean());
        assert_eq!(codes(&report), vec![("redefinition", 5, Severity::Warning)]);
    }

    #[test]
    fn empty_library_and_tag_lists_are_domain_errors() {
        // The parser already rejects these on the surface; defend the
        // analyzer against directly-constructed commands.
        let seed = SymbolSeed::default();
        let report = check_pipeline(
            &seed,
            &[
                GqlCommand::Custom {
                    name: "C".into(),
                    libraries: vec![],
                },
                GqlCommand::Select {
                    name: "S".into(),
                    dataset: "SAGE".into(),
                    libraries: vec![],
                },
                GqlCommand::Project {
                    name: "P".into(),
                    dataset: "SAGE".into(),
                    tags: vec![],
                },
                GqlCommand::Export {
                    name: "C".into(),
                    path: "../escape.csv".into(),
                },
            ],
        );
        assert_eq!(
            error_codes(&report),
            vec!["param-domain", "param-domain", "param-domain"]
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "export-path" && d.line == 4));
    }

    #[test]
    fn session_fragment_definitions_do_not_false_positive() {
        // `check dataset X brain ; mine X b 50 3 6` against a live
        // session: X is defined only inside the checked pipeline. It must
        // neither collide with anything nor be flagged dead — if the
        // pipeline ran, X would persist in the session for later use.
        let seed = SymbolSeed::default();
        let report = check_pipeline(
            &seed,
            &[
                GqlCommand::Dataset {
                    name: "X".into(),
                    tissue: TissueType::Brain,
                },
                GqlCommand::Mine {
                    dataset: "X".into(),
                    out: "b".into(),
                    k_pct: 50,
                    min_records: 3,
                    batch: 6,
                },
            ],
        );
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.diagnostics.is_empty(), "{}", report.render());
        // A definition the fragment never reads is equally fine.
        let report = check_pipeline(
            &seed,
            &[GqlCommand::Dataset {
                name: "X".into(),
                tissue: TissueType::Brain,
            }],
        );
        assert!(report.diagnostics.is_empty(), "{}", report.render());
        // Redefinition *within* the fragment is still an error, anchored
        // at the first definition's pipeline position.
        let report = check_pipeline(
            &seed,
            &[
                GqlCommand::Dataset {
                    name: "X".into(),
                    tissue: TissueType::Brain,
                },
                GqlCommand::Dataset {
                    name: "X".into(),
                    tissue: TissueType::Breast,
                },
            ],
        );
        assert_eq!(error_codes(&report), vec!["redefinition"]);
        assert!(report.diagnostics[0].message.contains("line 1"));
        // Whole-script analysis keeps the dead-assignment flush.
        let script = check_script("load-demo 1\ndataset X brain\n");
        assert_eq!(
            codes(&script),
            vec![("dead-assignment", 2, Severity::Warning)]
        );
    }

    #[test]
    fn seeded_session_resolves_live_names() {
        use gea_sage::clean::CleaningConfig;
        use gea_sage::generate::{generate, GeneratorConfig};

        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        let mut session =
            gea_core::session::GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        session
            .create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();

        let cmds = vec![GqlCommand::Xprofiler("Ebrain".into())];
        // Against the live session the reference resolves…
        let live = check_pipeline(&SymbolSeed::from_session(&session), &cmds);
        assert!(live.is_clean(), "{}", live.render());
        assert!(live.diagnostics.is_empty());
        // …against a fresh session it does not.
        let fresh = check_pipeline(&SymbolSeed::default(), &cmds);
        assert_eq!(error_codes(&fresh), vec!["undefined-name"]);
    }
}
