//! Diagnostics: line-numbered, severity-tagged findings with a human
//! rendering (`line N: error[code]: message`) and a machine rendering
//! (one JSON object per line, hand-rolled — no serde in this workspace).

use std::fmt;

/// How bad a finding is. Errors make a script unrunnable (the engine
/// would reject it); warnings flag suspicious-but-executable constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but executable.
    Warning,
    /// The engine would reject this.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding, anchored to a 1-based script line (for the server's
/// `check` verb, the 1-based position in the `;`-separated pipeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based script line (or pipeline position).
    pub line: usize,
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-matchable code, e.g. `world-mismatch`.
    pub code: &'static str,
    /// Human explanation.
    pub message: String,
}

impl Diagnostic {
    /// An error finding.
    pub fn error(line: usize, code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            line,
            severity: Severity::Error,
            code,
            message: message.into(),
        }
    }

    /// A warning finding.
    pub fn warning(line: usize, code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            line,
            severity: Severity::Warning,
            code,
            message: message.into(),
        }
    }

    /// `line N: severity[code]: message`.
    pub fn render(&self) -> String {
        format!(
            "line {}: {}[{}]: {}",
            self.line, self.severity, self.code, self.message
        )
    }

    /// One JSON object: `{"line":N,"severity":"…","code":"…","message":"…"}`.
    pub fn render_machine(&self) -> String {
        format!(
            r#"{{"line":{},"severity":"{}","code":"{}","message":"{}"}}"#,
            self.line,
            self.severity,
            json_escape(self.code),
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The analyzer's output: every finding plus how much it looked at.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// All findings, sorted by line.
    pub diagnostics: Vec<Diagnostic>,
    /// How many commands were analyzed.
    pub commands: usize,
}

impl CheckReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.len() - self.errors()
    }

    /// No errors (warnings allowed): the script is safe to execute.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// One-line verdict, e.g. `checked 7 command(s): 2 error(s), 1 warning(s)`.
    pub fn summary(&self) -> String {
        if self.diagnostics.is_empty() {
            format!("checked {} command(s): clean", self.commands)
        } else {
            format!(
                "checked {} command(s): {} error(s), {} warning(s)",
                self.commands,
                self.errors(),
                self.warnings()
            )
        }
    }

    /// Human rendering: the summary, then one line per finding.
    pub fn render(&self) -> String {
        let mut out = self.summary();
        for d in &self.diagnostics {
            out.push('\n');
            out.push_str(&d.render());
        }
        out
    }

    /// Machine rendering: one JSON object per finding, one per line.
    pub fn render_machine(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&d.render_machine());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_human_and_machine() {
        let d = Diagnostic::error(3, "world-mismatch", "gap needs a SUMY but \"E\" is ENUM");
        assert_eq!(
            d.render(),
            "line 3: error[world-mismatch]: gap needs a SUMY but \"E\" is ENUM"
        );
        assert_eq!(
            d.render_machine(),
            r#"{"line":3,"severity":"error","code":"world-mismatch","message":"gap needs a SUMY but \"E\" is ENUM"}"#
        );
    }

    #[test]
    fn report_counts_and_verdict() {
        let mut r = CheckReport {
            commands: 4,
            ..Default::default()
        };
        assert!(r.is_clean());
        assert_eq!(r.summary(), "checked 4 command(s): clean");
        r.diagnostics
            .push(Diagnostic::warning(1, "dead-assignment", "x"));
        assert!(r.is_clean(), "warnings alone keep a script runnable");
        r.diagnostics
            .push(Diagnostic::error(2, "undefined-name", "y"));
        assert!(!r.is_clean());
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert_eq!(
            r.summary(),
            "checked 4 command(s): 1 error(s), 1 warning(s)"
        );
        assert_eq!(r.render_machine().lines().count(), 2);
    }

    #[test]
    fn machine_rendering_escapes_controls() {
        let d = Diagnostic::warning(1, "c", "tab\there \"quoted\" \\ back\nnewline");
        let m = d.render_machine();
        assert!(m.contains(r#"tab\there"#));
        assert!(m.contains(r#"\"quoted\""#));
        assert!(m.contains(r#"\\ back"#));
        assert!(m.contains(r#"back\nnewline"#));
        // The rendering itself stays one line.
        assert_eq!(m.lines().count(), 1);
    }
}
