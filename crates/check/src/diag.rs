//! Diagnostics: line-numbered, severity-tagged findings with a human
//! rendering (`line N: error[code]: message`) and a machine rendering
//! (one JSON object per line, hand-rolled — no serde in this workspace).

use std::fmt;

/// How bad a finding is. Errors make a script unrunnable (the engine
/// would reject it); warnings flag suspicious-but-executable constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but executable.
    Warning,
    /// The engine would reject this.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A mechanical rewrite of the diagnosed line that `gea-cli --check
/// --fix` can apply. Fixes are token-level so the fixer never has to
/// re-serialize a whole command: the line is re-tokenized, the edit is
/// applied if its guard still matches, and the line is re-rendered with
/// canonical quoting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fix {
    /// Replace every argument token equal to `from` with `to` (the verb
    /// token is never touched). Used for nearest-name suggestions.
    ReplaceName {
        /// The misspelled name.
        from: String,
        /// The suggested name.
        to: String,
    },
    /// Replace the token at `index` (0 = the verb) with `with`, but only
    /// if it still equals `from`. Used for domain clamps.
    ReplaceToken {
        /// Token position on the line.
        index: usize,
        /// Expected current spelling (the guard).
        from: String,
        /// Replacement spelling.
        with: String,
    },
}

/// One finding, anchored to a 1-based script line (for the server's
/// `check` verb, the 1-based position in the `;`-separated pipeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based script line (or pipeline position).
    pub line: usize,
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-matchable code, e.g. `world-mismatch`.
    pub code: &'static str,
    /// Human explanation.
    pub message: String,
    /// Optional actionable hint, e.g. a nearest-name suggestion.
    pub help: Option<String>,
    /// Optional mechanical rewrite `--fix` can apply.
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// An error finding.
    pub fn error(line: usize, code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            line,
            severity: Severity::Error,
            code,
            message: message.into(),
            help: None,
            fix: None,
        }
    }

    /// A warning finding.
    pub fn warning(line: usize, code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            line,
            severity: Severity::Warning,
            code,
            message: message.into(),
            help: None,
            fix: None,
        }
    }

    /// Attach an actionable hint (rendered as an indented `help:` line).
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Attach a mechanical rewrite for `--fix`.
    pub fn with_fix(mut self, fix: Fix) -> Self {
        self.fix = Some(fix);
        self
    }

    /// `line N: severity[code]: message`, plus an indented `help:` line
    /// when a hint is attached.
    pub fn render(&self) -> String {
        let mut out = format!(
            "line {}: {}[{}]: {}",
            self.line, self.severity, self.code, self.message
        );
        if let Some(help) = &self.help {
            out.push_str("\n  help: ");
            out.push_str(help);
        }
        out
    }

    /// One JSON object: `{"line":N,"severity":"…","code":"…","message":"…"}`,
    /// with a `"help"` key when a hint is attached.
    pub fn render_machine(&self) -> String {
        let mut out = format!(
            r#"{{"line":{},"severity":"{}","code":"{}","message":"{}""#,
            self.line,
            self.severity,
            json_escape(self.code),
            json_escape(&self.message)
        );
        if let Some(help) = &self.help {
            out.push_str(&format!(r#","help":"{}""#, json_escape(help)));
        }
        if let Some(fix) = &self.fix {
            let described = match fix {
                Fix::ReplaceName { from, to } => format!("replace {from:?} with {to:?}"),
                Fix::ReplaceToken { index, from, with } => {
                    format!("replace token {index} ({from:?}) with {with:?}")
                }
            };
            out.push_str(&format!(r#","fix":"{}""#, json_escape(&described)));
        }
        out.push('}');
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The analyzer's output: every finding plus how much it looked at.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// All findings, sorted by line.
    pub diagnostics: Vec<Diagnostic>,
    /// How many commands were analyzed.
    pub commands: usize,
}

impl CheckReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.len() - self.errors()
    }

    /// No errors (warnings allowed): the script is safe to execute.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// One-line verdict, e.g. `checked 7 command(s): 2 error(s), 1 warning(s)`.
    pub fn summary(&self) -> String {
        if self.diagnostics.is_empty() {
            format!("checked {} command(s): clean", self.commands)
        } else {
            format!(
                "checked {} command(s): {} error(s), {} warning(s)",
                self.commands,
                self.errors(),
                self.warnings()
            )
        }
    }

    /// Human rendering: the summary, then one line per finding.
    pub fn render(&self) -> String {
        let mut out = self.summary();
        for d in &self.diagnostics {
            out.push('\n');
            out.push_str(&d.render());
        }
        out
    }

    /// Machine rendering: one JSON object per finding, one per line.
    pub fn render_machine(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&d.render_machine());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_human_and_machine() {
        let d = Diagnostic::error(3, "world-mismatch", "gap needs a SUMY but \"E\" is ENUM");
        assert_eq!(
            d.render(),
            "line 3: error[world-mismatch]: gap needs a SUMY but \"E\" is ENUM"
        );
        assert_eq!(
            d.render_machine(),
            r#"{"line":3,"severity":"error","code":"world-mismatch","message":"gap needs a SUMY but \"E\" is ENUM"}"#
        );
    }

    #[test]
    fn report_counts_and_verdict() {
        let mut r = CheckReport {
            commands: 4,
            ..Default::default()
        };
        assert!(r.is_clean());
        assert_eq!(r.summary(), "checked 4 command(s): clean");
        r.diagnostics
            .push(Diagnostic::warning(1, "dead-assignment", "x"));
        assert!(r.is_clean(), "warnings alone keep a script runnable");
        r.diagnostics
            .push(Diagnostic::error(2, "undefined-name", "y"));
        assert!(!r.is_clean());
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert_eq!(
            r.summary(),
            "checked 4 command(s): 1 error(s), 1 warning(s)"
        );
        assert_eq!(r.render_machine().lines().count(), 2);
    }

    #[test]
    fn help_renders_in_both_formats() {
        let d = Diagnostic::error(2, "undefined-name", "purity: no name \"f_9\"")
            .with_help("did you mean \"f_1\"?");
        assert_eq!(
            d.render(),
            "line 2: error[undefined-name]: purity: no name \"f_9\"\n  help: did you mean \"f_1\"?"
        );
        assert_eq!(
            d.render_machine(),
            r#"{"line":2,"severity":"error","code":"undefined-name","message":"purity: no name \"f_9\"","help":"did you mean \"f_1\"?"}"#
        );
        // The JSON stays one line even with a help key attached.
        assert_eq!(d.render_machine().lines().count(), 1);
        // Without a hint the key is absent, keeping old consumers stable.
        assert!(!Diagnostic::error(1, "c", "m")
            .render_machine()
            .contains("help"));
    }

    #[test]
    fn machine_rendering_escapes_controls() {
        let d = Diagnostic::warning(1, "c", "tab\there \"quoted\" \\ back\nnewline");
        let m = d.render_machine();
        assert!(m.contains(r#"tab\there"#));
        assert!(m.contains(r#"\"quoted\""#));
        assert!(m.contains(r#"\\ back"#));
        assert!(m.contains(r#"back\nnewline"#));
        // The rendering itself stays one line.
        assert_eq!(m.lines().count(), 1);
    }
}
