//! `--fix`: mechanically apply the analyzer's suggestions and re-run it
//! to fixpoint.
//!
//! Two tiers, per round:
//!
//! 1. **token fixes** — every error diagnostic carrying a [`Fix`]
//!    (nearest-name replacement, domain clamp) is applied to its line.
//!    Fixes are token-level with applicability guards: the line is
//!    re-tokenized, the edit only fires if the guard still matches, and
//!    only edited lines are re-rendered (untouched lines stay
//!    byte-identical — the property test below holds the fixer to that).
//! 2. **removal** — if a round has errors but no applicable token fix,
//!    every erroring line is commented out as
//!    `# gea-fix: removed (<code>): <original>`, preserving the original
//!    text for the author.
//!
//! Each round strictly reduces the script's error surface, so the loop
//! reaches an analyzer-clean fixpoint; a hard cap of 8 rounds backstops
//! the argument. A script that is already clean is returned verbatim.

use crate::diag::{CheckReport, Fix, Severity};
use crate::gql;

/// What `fix_script` did.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// The fixed script text (byte-identical to the input when it was
    /// already clean).
    pub text: String,
    /// Analyzer rounds run (1 for an already-clean script).
    pub rounds: usize,
    /// Whether any line changed.
    pub changed: bool,
    /// The final analyzer report over `text`.
    pub report: CheckReport,
    /// Human log of the rewrites, in application order.
    pub applied: Vec<String>,
}

/// Rewrite `text` until the analyzer reports no errors (warnings are
/// allowed to remain — they never make a script unrunnable).
pub fn fix_script(text: &str) -> FixOutcome {
    let mut current = text.to_string();
    let mut applied = Vec::new();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let report = crate::check_script(&current);
        if report.is_clean() || rounds > 8 {
            return FixOutcome {
                changed: current != text,
                text: current,
                rounds,
                report,
                applied,
            };
        }
        let mut lines: Vec<String> = current.lines().map(str::to_string).collect();
        let mut touched = false;
        for d in &report.diagnostics {
            if d.severity != Severity::Error {
                continue;
            }
            let Some(fix) = &d.fix else { continue };
            let Some(line) = lines.get_mut(d.line - 1) else {
                continue;
            };
            if let Some(rewritten) = apply_fix(line, fix) {
                applied.push(format!("line {}: {} ({})", d.line, describe(fix), d.code));
                *line = rewritten;
                touched = true;
            }
        }
        if !touched {
            // No token fix applies: remove the erroring lines, keeping
            // their text in a comment so nothing is silently lost.
            for d in &report.diagnostics {
                if d.severity != Severity::Error {
                    continue;
                }
                let Some(line) = lines.get_mut(d.line - 1) else {
                    continue;
                };
                if line.trim_start().starts_with('#') {
                    continue; // already removed for an earlier code
                }
                applied.push(format!("line {}: removed ({})", d.line, d.code));
                *line = format!("# gea-fix: removed ({}): {}", d.code, line);
                touched = true;
            }
        }
        if !touched {
            // Errors with no line to edit (should not happen); bail
            // rather than loop.
            return FixOutcome {
                changed: current != text,
                text: current,
                rounds,
                report,
                applied,
            };
        }
        let mut next = lines.join("\n");
        if text.ends_with('\n') {
            next.push('\n');
        }
        current = next;
    }
}

fn describe(fix: &Fix) -> String {
    match fix {
        Fix::ReplaceName { from, to } => format!("replaced {from:?} with {to:?}"),
        Fix::ReplaceToken { from, with, .. } => format!("clamped {from} to {with}"),
    }
}

/// Apply one fix to one line, returning the rewritten line, or `None`
/// when the guard no longer matches (the line changed since the
/// diagnostic was produced, or the fix targets the verb).
fn apply_fix(line: &str, fix: &Fix) -> Option<String> {
    let mut tokens = gql::tokenize(line).ok()?;
    if tokens.is_empty() {
        return None;
    }
    let mut hit = false;
    match fix {
        Fix::ReplaceName { from, to } => {
            // Never rewrite the verb: a name that happens to equal a verb
            // is still an argument everywhere past position 0.
            for token in tokens.iter_mut().skip(1) {
                if token == from {
                    *token = to.clone();
                    hit = true;
                }
            }
        }
        Fix::ReplaceToken { index, from, with } => {
            if *index == 0 {
                return None;
            }
            if let Some(token) = tokens.get_mut(*index) {
                if token == from {
                    *token = with.clone();
                    hit = true;
                }
            }
        }
    }
    if !hit {
        return None;
    }
    Some(render_tokens(&tokens))
}

/// Re-render a token list with canonical quoting (mirrors the grammar's
/// own canonical spelling: bare tokens stay bare, anything with spaces
/// or quotes is double-quoted with `\`-escapes).
fn render_tokens(tokens: &[String]) -> String {
    fn quote(token: &str) -> String {
        if !token.is_empty() && !token.contains(|c: char| c.is_whitespace() || c == '"') {
            return token.to_string();
        }
        let mut out = String::with_capacity(token.len() + 2);
        out.push('"');
        for c in token.chars() {
            if c == '"' || c == '\\' {
                out.push('\\');
            }
            out.push(c);
        }
        out.push('"');
        out
    }
    tokens
        .iter()
        .map(|t| quote(t))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_scripts_are_byte_identical() {
        // Property: on an analyzer-clean script the fixer is the
        // identity, byte for byte — including odd-but-legal whitespace,
        // comments, quoting, and a missing trailing newline.
        let clean = [
            "load-demo 42\ndataset E brain\nexport E e.csv\n",
            "# comment\n\nload-demo 1\ndataset  E   brain\nexport E e.csv\n",
            "load-demo 1\ndataset E brain\ncomment E \"multi word note\"\nexport E e.csv\n",
            "load-demo 1\ndataset E brain\nexport E e.csv", // no trailing \n
            "load-demo 1\n\
             dataset E brain\n\
             mine E f 50 3 6\n\
             groups f_1\n\
             gap g f_1CancerFasTbl f_1NormalTable\n\
             topgap g 10\n\
             show gap g_10 5\n\
             export g out.csv\n",
        ];
        for script in clean {
            let out = fix_script(script);
            assert!(out.report.is_clean(), "{script:?}: {}", out.report.render());
            assert_eq!(out.text, script, "clean script must not change");
            assert!(!out.changed);
            assert_eq!(out.rounds, 1);
            assert!(out.applied.is_empty());
        }
    }

    #[test]
    fn domain_clamps_reach_fixpoint() {
        let out = fix_script("load-demo 1\ndataset E brain\nmine E f 150 0 0\nexport E e.csv\n");
        assert!(out.report.is_clean(), "{}", out.report.render());
        assert!(out.changed);
        assert!(out.text.contains("mine E f 100 1 1\n"), "{}", out.text);
        // The untouched lines are byte-identical.
        assert!(out.text.starts_with("load-demo 1\ndataset E brain\n"));
        assert!(out.text.ends_with("export E e.csv\n"));
    }

    #[test]
    fn nearest_name_fixes_apply() {
        let out = fix_script("load-demo 1\ndataset Brain brain\nexport Brian b.csv\n");
        assert!(out.report.is_clean(), "{}", out.report.render());
        assert!(out.text.contains("export Brain b.csv\n"), "{}", out.text);
    }

    #[test]
    fn unfixable_error_lines_are_commented_out() {
        let out = fix_script("load-demo 1\ndataset E brain\ngap g nope1 nope2\nexport E e.csv\n");
        assert!(out.report.is_clean(), "{}", out.report.render());
        assert!(
            out.text
                .contains("# gea-fix: removed (undefined-name): gap g nope1 nope2\n"),
            "{}",
            out.text
        );
    }

    #[test]
    fn removal_cascades_to_orphaned_readers() {
        // Removing the unfixable `gap` definition orphans the `topgap`
        // that reads it; the next round removes that too.
        let out = fix_script(
            "load-demo 1\n\
             dataset E brain\n\
             gap g nope1 nope2\n\
             topgap g 5\n\
             export E e.csv\n",
        );
        assert!(out.report.is_clean(), "{}", out.report.render());
        assert!(out
            .text
            .contains("# gea-fix: removed (undefined-name): gap g"));
        assert!(out
            .text
            .contains("# gea-fix: removed (undefined-name): topgap g 5"));
    }

    #[test]
    fn fixing_is_idempotent() {
        let dirty = "load-demo 1\ndataset E brain\nmine E f 150 0 6\nexport E e.csv\n";
        let once = fix_script(dirty);
        let twice = fix_script(&once.text);
        assert_eq!(once.text, twice.text);
        assert!(!twice.changed);
    }

    #[test]
    fn quoted_arguments_survive_rewriting() {
        // A fix on a line with a quoted argument must keep the quoting
        // canonical and re-parseable.
        let out = fix_script(
            "load-demo 1\ndataset Brain brain\ncomment Brian \"two words\"\nexport Brain b.csv\n",
        );
        assert!(out.report.is_clean(), "{}", out.report.render());
        assert!(
            out.text.contains("comment Brain \"two words\"\n"),
            "{}",
            out.text
        );
    }
}
