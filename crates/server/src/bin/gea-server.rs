//! The gea-server binary: serve the GEA algebra over TCP.
//!
//! ```text
//! gea-server [--addr HOST:PORT] [--workers N] [--queue N]
//!            [--lock-timeout-ms MS] [--demo SEED]
//!            [--cache-bytes N] [--session-budget N] [--idle-timeout-ms MS]
//!            [--spill-dir PATH] [--threads N] [--no-opt] [--max-cost UNITS]
//! ```
//!
//! `--demo SEED` pre-opens the session named `default` from a generated
//! demo corpus so clients can start querying without an `open` of their
//! own. `--cache-bytes` sizes the response cache (0 disables it);
//! `--session-budget` caps total approximate session bytes with LRU
//! eviction, and `--idle-timeout-ms` evicts sessions no request has
//! touched in that long. Without `--spill-dir`, evicted sessions answer
//! `ERR EEVICTED` until re-opened; with it, they are persisted to PATH on
//! eviction and restored transparently on their next use. `--threads N`
//! sizes the sharded executor for mine/populate/aggregate inside each
//! session (0, the default, means available parallelism; 1 forces the
//! serial path — results are byte-identical either way). `--no-opt`
//! disables the algebraic optimizer (`gea-opt`): commands execute
//! literally and response-cache keys fall back to the plain canonical
//! spelling instead of the rewrite-normalized one. `--max-cost UNITS`
//! enables the static budget gate: commands whose predicted cost (the
//! `gea-check` abstract cost model over the session's live table sizes)
//! exceeds UNITS answer `ERR EBUDGET` before execution. Stop the server
//! with the `shutdown` protocol command, SIGINT, or SIGTERM — all three
//! drain in-flight requests (and spills) before exiting.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use gea_core::session::GeaSession;
use gea_sage::clean::CleaningConfig;
use gea_sage::generate::{generate, GeneratorConfig};
use gea_server::{Server, ServerConfig, ServerHandle};

/// Set by the async signal handler, polled by the watcher thread — the
/// handler itself must stay async-signal-safe, so all it does is store.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::{Ordering, SIGNALLED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    /// Route SIGINT and SIGTERM into the flag.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// No signal routing off Unix; `shutdown` still works.
    pub fn install() {}
}

/// Install the handlers and spawn a watcher that turns the flag into a
/// graceful [`ServerHandle::shutdown`] — workers finish their in-flight
/// requests (including eviction spills) before the process exits.
fn watch_signals(handle: ServerHandle) {
    sig::install();
    let _ = std::thread::Builder::new()
        .name("gea-signals".to_string())
        .spawn(move || loop {
            if SIGNALLED.load(Ordering::SeqCst) {
                eprintln!("gea-server: termination signal received; draining");
                handle.shutdown();
                return;
            }
            if handle.is_shutting_down() {
                return; // server stopped some other way; watcher done
            }
            std::thread::sleep(Duration::from_millis(100));
        });
}

fn usage() -> ! {
    eprintln!(
        "usage: gea-server [--addr HOST:PORT] [--workers N] [--queue N] \
         [--lock-timeout-ms MS] [--demo SEED] [--cache-bytes N] \
         [--session-budget N] [--idle-timeout-ms MS] [--spill-dir PATH] \
         [--threads N] [--no-opt] [--max-cost UNITS]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServerConfig, Option<u64>) {
    let mut config = ServerConfig::default();
    let mut demo = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => match value("--workers").parse() {
                Ok(n) => config.workers = n,
                Err(e) => {
                    eprintln!("bad --workers: {e}");
                    usage()
                }
            },
            "--queue" => match value("--queue").parse() {
                Ok(n) => config.queue_depth = n,
                Err(e) => {
                    eprintln!("bad --queue: {e}");
                    usage()
                }
            },
            "--lock-timeout-ms" => match value("--lock-timeout-ms").parse() {
                Ok(ms) => config.lock_timeout = Duration::from_millis(ms),
                Err(e) => {
                    eprintln!("bad --lock-timeout-ms: {e}");
                    usage()
                }
            },
            "--cache-bytes" => match value("--cache-bytes").parse() {
                Ok(n) => config.cache_bytes = n,
                Err(e) => {
                    eprintln!("bad --cache-bytes: {e}");
                    usage()
                }
            },
            "--session-budget" => match value("--session-budget").parse() {
                Ok(n) => config.session_budget = Some(n),
                Err(e) => {
                    eprintln!("bad --session-budget: {e}");
                    usage()
                }
            },
            "--idle-timeout-ms" => match value("--idle-timeout-ms").parse() {
                Ok(ms) => config.idle_timeout = Some(Duration::from_millis(ms)),
                Err(e) => {
                    eprintln!("bad --idle-timeout-ms: {e}");
                    usage()
                }
            },
            "--spill-dir" => {
                config.spill_dir = Some(std::path::PathBuf::from(value("--spill-dir")));
            }
            "--threads" => match value("--threads").parse() {
                Ok(n) => config.threads = n,
                Err(e) => {
                    eprintln!("bad --threads: {e}");
                    usage()
                }
            },
            "--no-opt" => config.optimize = false,
            "--max-cost" => match value("--max-cost").parse() {
                Ok(n) => config.max_cost = Some(n),
                Err(e) => {
                    eprintln!("bad --max-cost: {e}");
                    usage()
                }
            },
            "--demo" => match value("--demo").parse() {
                Ok(seed) => demo = Some(seed),
                Err(e) => {
                    eprintln!("bad --demo: {e}");
                    usage()
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    (config, demo)
}

fn main() {
    let (config, demo) = parse_args();
    let threads = config.threads;
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("gea-server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(seed) = demo {
        let (corpus, _) = generate(&GeneratorConfig::demo(seed));
        match GeaSession::open(corpus, &CleaningConfig::default()) {
            Ok(mut session) => {
                session.set_exec_config(gea_core::session::ExecConfig::with_threads(threads));
                let fingerprint = gea_core::persist::corpus_fingerprint(&session).ok();
                server
                    .registry()
                    .open_with_fingerprint("default", session, fingerprint);
                eprintln!("gea-server: opened demo session `default` (seed {seed})");
            }
            Err(e) => {
                eprintln!("gea-server: demo session failed: {e}");
                std::process::exit(1);
            }
        }
    }
    watch_signals(server.handle());
    eprintln!("gea-server: listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("gea-server: {e}");
        std::process::exit(1);
    }
    eprintln!("gea-server: shut down");
}
