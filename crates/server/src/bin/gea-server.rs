//! The gea-server binary: serve the GEA algebra over TCP.
//!
//! ```text
//! gea-server [--addr HOST:PORT] [--workers N] [--queue N]
//!            [--lock-timeout-ms MS] [--demo SEED]
//!            [--cache-bytes N] [--session-budget N] [--idle-timeout-ms MS]
//! ```
//!
//! `--demo SEED` pre-opens the session named `default` from a generated
//! demo corpus so clients can start querying without an `open` of their
//! own. `--cache-bytes` sizes the response cache (0 disables it);
//! `--session-budget` caps total approximate session bytes with LRU
//! eviction, and `--idle-timeout-ms` evicts sessions no request has
//! touched in that long (evicted sessions answer `ERR EEVICTED` until
//! re-opened). Stop the server with the `shutdown` protocol command.

use std::time::Duration;

use gea_core::session::GeaSession;
use gea_sage::clean::CleaningConfig;
use gea_sage::generate::{generate, GeneratorConfig};
use gea_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: gea-server [--addr HOST:PORT] [--workers N] [--queue N] \
         [--lock-timeout-ms MS] [--demo SEED] [--cache-bytes N] \
         [--session-budget N] [--idle-timeout-ms MS]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServerConfig, Option<u64>) {
    let mut config = ServerConfig::default();
    let mut demo = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => match value("--workers").parse() {
                Ok(n) => config.workers = n,
                Err(e) => {
                    eprintln!("bad --workers: {e}");
                    usage()
                }
            },
            "--queue" => match value("--queue").parse() {
                Ok(n) => config.queue_depth = n,
                Err(e) => {
                    eprintln!("bad --queue: {e}");
                    usage()
                }
            },
            "--lock-timeout-ms" => match value("--lock-timeout-ms").parse() {
                Ok(ms) => config.lock_timeout = Duration::from_millis(ms),
                Err(e) => {
                    eprintln!("bad --lock-timeout-ms: {e}");
                    usage()
                }
            },
            "--cache-bytes" => match value("--cache-bytes").parse() {
                Ok(n) => config.cache_bytes = n,
                Err(e) => {
                    eprintln!("bad --cache-bytes: {e}");
                    usage()
                }
            },
            "--session-budget" => match value("--session-budget").parse() {
                Ok(n) => config.session_budget = Some(n),
                Err(e) => {
                    eprintln!("bad --session-budget: {e}");
                    usage()
                }
            },
            "--idle-timeout-ms" => match value("--idle-timeout-ms").parse() {
                Ok(ms) => config.idle_timeout = Some(Duration::from_millis(ms)),
                Err(e) => {
                    eprintln!("bad --idle-timeout-ms: {e}");
                    usage()
                }
            },
            "--demo" => match value("--demo").parse() {
                Ok(seed) => demo = Some(seed),
                Err(e) => {
                    eprintln!("bad --demo: {e}");
                    usage()
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    (config, demo)
}

fn main() {
    let (config, demo) = parse_args();
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("gea-server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(seed) = demo {
        let (corpus, _) = generate(&GeneratorConfig::demo(seed));
        match GeaSession::open(corpus, &CleaningConfig::default()) {
            Ok(session) => {
                server.registry().open("default", session);
                eprintln!("gea-server: opened demo session `default` (seed {seed})");
            }
            Err(e) => {
                eprintln!("gea-server: demo session failed: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("gea-server: listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("gea-server: {e}");
        std::process::exit(1);
    }
    eprintln!("gea-server: shut down");
}
