//! The gea-client binary: a line client for gea-server.
//!
//! ```text
//! gea-client [--addr HOST:PORT] [command...]
//! ```
//!
//! With a command on the argv it sends that single request, prints the
//! payload, and exits non-zero on `ERR`. Without one it reads requests
//! from stdin (one per line, a `gql> ` prompt when stdin is a terminal)
//! and stops at `quit` or the first transport failure; a server `ERR`
//! is printed and the loop continues, mirroring the interactive REPL.

use std::io::{BufRead, IsTerminal, Write};

use gea_server::GeaClient;

fn main() {
    let mut addr = "127.0.0.1:7687".to_string();
    let mut command: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("--addr needs a value");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: gea-client [--addr HOST:PORT] [command...]");
                std::process::exit(2);
            }
            _ => {
                command.push(arg);
                command.extend(args.by_ref());
            }
        }
    }

    let mut client = match GeaClient::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("gea-client: connect {addr}: {e}");
            std::process::exit(1);
        }
    };

    if !command.is_empty() {
        std::process::exit(one_shot(&mut client, &command.join(" ")));
    }

    let interactive = std::io::stdin().is_terminal();
    let stdin = std::io::stdin().lock();
    if interactive {
        print!("gql> ");
        let _ = std::io::stdout().flush();
    }
    for line in stdin.lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("gea-client: stdin: {e}");
                std::process::exit(1);
            }
        };
        match client.request(&line) {
            Ok(Ok(payload)) => {
                if !payload.is_empty() {
                    println!("{payload}");
                }
            }
            Ok(Err((code, message))) => eprintln!("ERR {code} {message}"),
            Err(e) => {
                eprintln!("gea-client: {e}");
                std::process::exit(1);
            }
        }
        if line.trim() == "quit" || line.trim() == "exit" {
            return;
        }
        if interactive {
            print!("gql> ");
            let _ = std::io::stdout().flush();
        }
    }
}

fn one_shot(client: &mut GeaClient, line: &str) -> i32 {
    match client.request(line) {
        Ok(Ok(payload)) => {
            if !payload.is_empty() {
                println!("{payload}");
            }
            0
        }
        Ok(Err((code, message))) => {
            eprintln!("ERR {code} {message}");
            1
        }
        Err(e) => {
            eprintln!("gea-client: {e}");
            1
        }
    }
}
