//! The GQL executor: runs a parsed [`GqlCommand`] against a
//! [`GeaSession`], producing the same human-readable text the thesis GUI
//! panels show.
//!
//! The executor is split along the lock axis: [`execute_read`] takes
//! `&GeaSession` so the server can run it under a shared read lock, while
//! [`execute_write`] takes `&mut GeaSession` for the mutating algebra.
//! [`GqlCommand::is_read`] decides which side a command belongs to.

use std::fmt;
use std::fmt::Write as _;

use gea_cluster::FascicleParams;
use gea_core::relational::{enum_to_relation, gap_to_relation, sumy_to_relation};
use gea_core::search::{library_info_by_id, library_info_by_name, tag_frequency};
use gea_core::session::{GeaError, GeaSession};
use gea_core::topgap::{series_means, TopGapOrder};
use gea_sage::library::LibraryId;
use gea_sage::library::LibraryProperty;

use crate::gql::{GqlCommand, ShowKind};

/// A failed command: a stable machine-readable code plus a human message,
/// rendered on the wire as `ERR <code> <message>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// Stable error code (`ENOTFOUND`, `ECONFLICT`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl EngineError {
    /// Build an error from a code and message.
    pub fn new(code: &'static str, message: impl Into<String>) -> EngineError {
        EngineError {
            code,
            message: message.into(),
        }
    }

    /// The `EEVICTED` error: the named session was evicted by the
    /// registry's policy (idle timeout or memory budget) and must be
    /// re-`open`ed before further commands.
    pub fn evicted(name: &str, reason: impl fmt::Display) -> EngineError {
        EngineError::new(
            "EEVICTED",
            format!("session {name:?} was evicted ({reason}); re-open it"),
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.message)
    }
}

impl std::error::Error for EngineError {}

impl From<GeaError> for EngineError {
    fn from(e: GeaError) -> EngineError {
        let code = match &e {
            GeaError::NotFound { .. } => "ENOTFOUND",
            GeaError::NameTaken(_) => "ECONFLICT",
            GeaError::NotPure { .. } => "EPURITY",
            GeaError::EmptyGroup(_) => "EEMPTY",
            GeaError::Lineage(_) => "ELINEAGE",
            GeaError::QueryNotApplicable => "EQUERY",
        };
        EngineError::new(code, e.to_string())
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> EngineError {
        EngineError::new("EIO", e.to_string())
    }
}

impl From<gea_sage::io::IoError> for EngineError {
    fn from(e: gea_sage::io::IoError) -> EngineError {
        EngineError::new("EIO", e.to_string())
    }
}

impl From<gea_core::relational::ConvertError> for EngineError {
    fn from(e: gea_core::relational::ConvertError) -> EngineError {
        EngineError::new("EIO", e.to_string())
    }
}

impl From<gea_core::persist::PersistError> for EngineError {
    fn from(e: gea_core::persist::PersistError) -> EngineError {
        EngineError::new("EIO", e.to_string())
    }
}

fn not_found(message: String) -> EngineError {
    EngineError::new("ENOTFOUND", message)
}

/// Execute a command, choosing the read or write path by
/// [`GqlCommand::is_read`]. Front-ends with exclusive access (the REPL)
/// use this; the server calls the split entry points directly so reads
/// share a lock.
pub fn execute(session: &mut GeaSession, cmd: &GqlCommand) -> Result<String, EngineError> {
    if cmd.is_read() {
        execute_read(session, cmd)
    } else {
        execute_write(session, cmd)
    }
}

/// Execute a read-only command against a shared session reference.
///
/// # Panics
///
/// Debug-asserts that `cmd.is_read()`; a write command here returns an
/// internal error in release builds.
pub fn execute_read(session: &GeaSession, cmd: &GqlCommand) -> Result<String, EngineError> {
    debug_assert!(cmd.is_read(), "{} is not a read command", cmd.verb());
    let out = match cmd {
        GqlCommand::Tissues => {
            let mut out = String::new();
            for t in session.corpus().tissue_types() {
                let members = session.corpus().libraries_of_tissue(&t);
                let _ = writeln!(out, "{t}: {} libraries", members.len());
            }
            out
        }
        GqlCommand::Fascicles => {
            let mut out = String::new();
            for f in session.fascicle_names() {
                let r = session.fascicle(f).unwrap();
                let _ = writeln!(
                    out,
                    "{f}: {:?} ({} compact tags)",
                    r.members,
                    r.compact_tags.len()
                );
            }
            if out.is_empty() {
                out = "no fascicles mined yet".to_string();
            }
            out
        }
        GqlCommand::Purity(fascicle) => {
            let purity = session.purity_properties(fascicle)?;
            render_purity(fascicle, &purity)
        }
        GqlCommand::Show { kind, name, n } => match kind {
            ShowKind::Gap => {
                let g = session.gap(name)?;
                gap_to_relation(g)?.render(*n)
            }
            ShowKind::Sumy => {
                let t = session.sumy(name)?;
                sumy_to_relation(t)?.render(*n)
            }
        },
        GqlCommand::Plot {
            dataset,
            tag,
            fascicle,
        } => {
            let points = session.tag_plot(dataset, *tag, fascicle)?;
            if points.is_empty() {
                return Err(not_found(format!("tag {tag} not in {dataset}")));
            }
            let mut out = String::new();
            for (series, mean, count) in series_means(&points) {
                let _ = writeln!(out, "{:<24} avg {mean:8.1} (n={count})", series.label());
            }
            for p in points {
                let _ = writeln!(out, "  {:<24} {:8.1}", p.library, p.level);
            }
            out
        }
        GqlCommand::Library(key) => {
            let info = match key.parse::<u32>() {
                Ok(id) => library_info_by_id(session.corpus(), LibraryId(id)),
                Err(_) => library_info_by_name(session.corpus(), key),
            }
            .ok_or_else(|| not_found(format!("no library {key:?}")))?;
            format!(
                "{} (id {})\n  tissue: {}\n  state: {}\n  source: {}\n  total tags: {}\n  unique tags: {}",
                info.meta.name,
                info.id,
                info.meta.tissue,
                info.meta.state,
                info.meta.source,
                info.total_tags,
                info.unique_tags
            )
        }
        GqlCommand::TagFreq { dataset, tag } => {
            let table = session.enum_table(dataset)?;
            let row = tag_frequency(table, *tag, &[])
                .ok_or_else(|| not_found(format!("tag {tag} not in {dataset}")))?;
            let mut out = format!("{}_({}):\n", row.tag, row.tag_no);
            for (lib, v) in row.values {
                let _ = writeln!(out, "  {lib:<24} {v:10.1}");
            }
            out
        }
        GqlCommand::Export { name, path } => {
            let relation = if let Ok(g) = session.gap(name) {
                gap_to_relation(g)?
            } else if let Ok(t) = session.sumy(name) {
                sumy_to_relation(t)?
            } else if let Ok(e) = session.enum_table(name) {
                enum_to_relation(e)?
            } else {
                return Err(not_found(format!("no table named {name:?}")));
            };
            let mut file = std::fs::File::create(path)
                .map_err(|e| EngineError::new("EIO", format!("create {path}: {e}")))?;
            gea_relstore::export_csv(&relation, &mut file)
                .map_err(|e| EngineError::new("EIO", format!("write {path}: {e}")))?;
            format!("exported {} rows to {path}", relation.n_rows())
        }
        GqlCommand::Lineage => session.lineage().render_tree(),
        GqlCommand::Cleaning => {
            let report = session.cleaning_report();
            format!(
                "raw union {} tags -> kept {} ({:.0}% removed); freq-1 fraction {:.0}%",
                report.raw_union_tags,
                report.kept_tags,
                100.0 * report.removed_fraction(),
                100.0 * report.freq1_union_fraction
            )
        }
        GqlCommand::Xprofiler(dataset) => {
            let table = session.enum_table(dataset)?;
            let result = gea_core::xprofiler::compare_cancer_vs_normal(table);
            let hits = result.significant(0.05);
            let mut out = format!(
                "{} tags tested; {} significant at alpha = 0.05 (Bonferroni):\n",
                result.rows.len(),
                hits.len()
            );
            for r in hits.iter().take(10) {
                let _ = writeln!(
                    out,
                    "  {}_({})  z {:+7.2}  log2 ratio {:+6.2}",
                    r.tag, r.tag_no, r.z_score, r.log2_ratio
                );
            }
            out
        }
        GqlCommand::Check(cmds) => {
            // Static analysis against this session's *live* name
            // population. The command itself succeeds even when the
            // pipeline has errors — the diagnostics are the payload; the
            // session is never touched. A clean pipeline's reply also
            // carries the predicted row counts and cost per command,
            // seeded from the session's real table sizes (the built-in
            // coefficients, not host-local bench calibration, so every
            // replica of this session answers byte-identically).
            let seed = gea_check::SymbolSeed::from_session(session);
            let report = gea_check::check_pipeline(&seed, cmds);
            let mut out = report.render();
            if report.is_clean() {
                let cost_seed = gea_check::CostSeed::from_session(session);
                let model = gea_check::CostModel::default_coefficients();
                let cost = gea_check::cost_pipeline(&model, &cost_seed, cmds);
                out.push('\n');
                out.push_str(&cost.render());
            }
            out
        }
        GqlCommand::Save(dir) => {
            gea_core::persist::save_session(session, std::path::Path::new(dir))?;
            format!(
                "saved {} table(s) and full session snapshot to {dir}",
                session.database().len()
            )
        }
        other => {
            debug_assert!(false, "{} reached execute_read", other.verb());
            return Err(EngineError::new(
                "EUNKNOWN",
                format!("{} is not a read command", other.verb()),
            ));
        }
    };
    Ok(out)
}

/// Execute a mutating command. Read commands are delegated to
/// [`execute_read`], so this is a complete single-session entry point.
pub fn execute_write(session: &mut GeaSession, cmd: &GqlCommand) -> Result<String, EngineError> {
    let out = match cmd {
        GqlCommand::Dataset { name, tissue } => {
            session.create_tissue_dataset(name, tissue)?;
            let t = session.enum_table(name)?;
            format!(
                "{name}: {} libraries x {} tags",
                t.n_libraries(),
                t.n_tags()
            )
        }
        GqlCommand::Custom { name, libraries } => {
            let libs: Vec<&str> = libraries.iter().map(|s| s.as_str()).collect();
            session.create_custom_dataset(name, &libs)?;
            format!(
                "{name}: {} libraries",
                session.enum_table(name).unwrap().n_libraries()
            )
        }
        GqlCommand::Select {
            name,
            dataset,
            libraries,
        } => {
            let libs: Vec<&str> = libraries.iter().map(|s| s.as_str()).collect();
            session.select_dataset_libraries(name, dataset, &libs)?;
            render_select_created(session, name, dataset)?
        }
        GqlCommand::Project {
            name,
            dataset,
            tags,
        } => {
            session.project_dataset_tags(name, dataset, tags)?;
            let t = session.enum_table(name)?;
            format!(
                "{name}: {} tags x {} libraries",
                t.n_tags(),
                t.n_libraries()
            )
        }
        GqlCommand::Mine {
            dataset,
            out,
            k_pct,
            min_records,
            batch,
        } => {
            let n_tags = session.enum_table(dataset)?.n_tags();
            // Route through the sharded executor: byte-identical to the
            // serial path, parallel across the session's ExecConfig.
            let names = gea_exec::calculate_fascicles_sharded(
                session,
                dataset,
                out,
                0.10,
                &FascicleParams {
                    min_compact_attrs: n_tags * k_pct / 100,
                    min_records: *min_records,
                    batch_size: *batch,
                },
            )?;
            let mut text = format!("{} fascicle(s):\n", names.len());
            for f in names {
                let r = session.fascicle(&f).unwrap();
                let _ = writeln!(
                    text,
                    "  {f}: {} libraries, {} compact tags",
                    r.members.len(),
                    r.compact_tags.len()
                );
            }
            text
        }
        GqlCommand::MineWith {
            dataset,
            out,
            algo,
            params,
        } => {
            // Pluggable mining backends (`with isa`, `with simplex`, …):
            // look the algorithm up in the gea-mine registry, resolve the
            // key=value parameters against its typed schema, and run the
            // backend's sharded driver. (`with fascicles` never reaches
            // here — the parser desugars it to the bare `Mine` arm above,
            // keeping that path byte-identical to the historic toolkit.)
            let backend = gea_mine::backend(algo).ok_or_else(|| {
                EngineError::new(
                    "EQUERY",
                    format!(
                        "unknown mining backend {algo:?}; available: {}",
                        gea_mine::backend_names()
                    ),
                )
            })?;
            let resolved = gea_mine::resolve_params(backend.params(), params)
                .map_err(|e| EngineError::new("EQUERY", e))?;
            let names =
                gea_exec::mine_with_backend_sharded(session, dataset, out, backend, &resolved)?;
            let mut text = format!("{} cluster(s) via {algo}:\n", names.len());
            for f in names {
                let r = session.fascicle(&f).unwrap();
                let _ = writeln!(
                    text,
                    "  {f}: {} libraries, {} compact tags",
                    r.members.len(),
                    r.compact_tags.len()
                );
            }
            text
        }
        GqlCommand::Groups(fascicle) => {
            let groups =
                gea_exec::form_control_groups_sharded(session, fascicle, LibraryProperty::Cancer)?;
            format!(
                "SUMY tables created:\n  in fascicle:      {}\n  outside fascicle: {}\n  contrast (normal): {}",
                groups.in_fascicle, groups.outside_fascicle, groups.contrast
            )
        }
        GqlCommand::Gap { name, sumy1, sumy2 } => {
            session.create_gap(name, sumy1, sumy2)?;
            render_gap_created(session, name)
        }
        GqlCommand::TopGap { gap, x } => {
            let top = session.calculate_top_gap(gap, *x, TopGapOrder::LargestMagnitude)?;
            render_topgap_created(session, &top)
        }
        GqlCommand::Compare {
            name,
            g1,
            g2,
            op,
            query,
        } => {
            session.compare_gaps(name, g1, g2, *op, *query)?;
            render_compare_created(session, name, *query)
        }
        GqlCommand::Comment { name, text } => {
            session.comment(name, text)?;
            format!("comment recorded on {name}")
        }
        GqlCommand::Delete { name, cascade } => {
            let removed = session.delete(name, *cascade)?;
            if *cascade {
                format!("removed {} table(s): {}", removed.len(), removed.join(", "))
            } else {
                format!("contents of {name} dropped; metadata kept")
            }
        }
        GqlCommand::Populate { name, from: None } => {
            session.regenerate(name)?;
            format!("re-materialized {name} from its lineage")
        }
        GqlCommand::Populate {
            name,
            from: Some((sumy, dataset)),
        } => {
            // The thesis's populate operator, routed through the sharded
            // scan driver (byte-identical to the serial operator).
            gea_exec::populate_session_sharded(session, name, sumy, dataset)?;
            render_populate_created(session, name, sumy, dataset)?
        }
        GqlCommand::Load(dir) => {
            // Restore the saved session *in place* — the `save`/`load`
            // round trip the thesis's DB2 persistence assumes. This is a
            // write: the whole session is replaced, so it runs under the
            // write lock and the generation bump invalidates every cached
            // reply for this session. The exec configuration is runtime
            // tuning, not session state: carry it across the swap.
            let exec = session.exec_config();
            *session = gea_core::persist::load_session(std::path::Path::new(dir))?;
            session.set_exec_config(exec);
            let mut out = format!(
                "restored session from {dir}: {} table(s); operation history:\n",
                session.database().len()
            );
            out.push_str(&session.lineage().render_tree());
            out
        }
        read => return execute_read(session, read),
    };
    Ok(out)
}

// ---------------------------------------------------------------------------
// Shared success-reply rendering
//
// These helpers are the single source of the engine's reply text for the
// commands the optimizer can rewrite or fuse. `optexec` calls the same
// functions after running a fast-path step, so optimized replies are
// byte-identical to literal execution *by construction* (and the rule audit
// re-proves it empirically).
// ---------------------------------------------------------------------------

/// Reply for a just-created GAP table (`gap` command).
pub(crate) fn render_gap_created(session: &GeaSession, name: &str) -> String {
    let g = session.gap(name).unwrap();
    format!(
        "{name}: {} tags, {} non-NULL gaps",
        g.len(),
        g.drop_null_gaps("tmp").len()
    )
}

/// Reply for a just-derived top-gap table (`topgap` command).
pub(crate) fn render_topgap_created(session: &GeaSession, top: &str) -> String {
    let mut out = format!("{top}:\n");
    let mut rows = session.gap(top).unwrap().rows().to_vec();
    rows.sort_by(|a, b| {
        b.gap()
            .unwrap_or(0.0)
            .abs()
            .total_cmp(&a.gap().unwrap_or(0.0).abs())
    });
    for r in rows {
        let _ = writeln!(
            out,
            "  {}_({})  {:+.2}",
            r.tag,
            r.tag_no,
            r.gap().unwrap_or(f64::NAN)
        );
    }
    out
}

/// Reply for a just-created comparison result (`compare` command).
pub(crate) fn render_compare_created(
    session: &GeaSession,
    name: &str,
    query: gea_core::CompareQuery,
) -> String {
    format!(
        "{name}: {} tags ({})",
        session.gap(name).unwrap().len(),
        query.description()
    )
}

/// Reply for a just-created library selection (`select` command).
pub(crate) fn render_select_created(
    session: &GeaSession,
    name: &str,
    dataset: &str,
) -> Result<String, EngineError> {
    let t = session.enum_table(name)?;
    Ok(format!(
        "{name}: {} of {} libraries kept",
        t.n_libraries(),
        session.enum_table(dataset)?.n_libraries()
    ))
}

/// Reply for a just-populated ENUM table (`populate` operator form).
pub(crate) fn render_populate_created(
    session: &GeaSession,
    name: &str,
    sumy: &str,
    dataset: &str,
) -> Result<String, EngineError> {
    let total = session.enum_table(dataset)?.n_libraries();
    let hits = session.enum_table(name)?.n_libraries();
    Ok(format!(
        "{name}: {hits} of {total} libraries in {dataset} satisfy {sumy}"
    ))
}

/// Shared purity rendering: the engine's read path uses
/// [`GeaSession::purity_properties`], the REPL's stateful path uses
/// [`GeaSession::purity_check`]; both print through here.
pub fn render_purity(fascicle: &str, purity: &[LibraryProperty]) -> String {
    if purity.is_empty() {
        format!("fascicle {fascicle} is NOT pure on any property")
    } else {
        let labels: Vec<String> = purity.iter().map(|p| p.to_string()).collect();
        format!("fascicle {fascicle} is pure: {}", labels.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gql::{parse, Request};
    use gea_sage::clean::CleaningConfig;
    use gea_sage::generate::{generate, GeneratorConfig};

    fn demo_session() -> GeaSession {
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        GeaSession::open(corpus, &CleaningConfig::default()).unwrap()
    }

    fn run(session: &mut GeaSession, line: &str) -> Result<String, EngineError> {
        match parse(line).unwrap().unwrap() {
            Request::Gql(cmd) => execute(session, &cmd),
            other => panic!("{line} is not an algebra command: {other:?}"),
        }
    }

    #[test]
    fn read_and_write_paths_cover_the_algebra() {
        let mut s = demo_session();
        assert!(run(&mut s, "tissues").unwrap().contains("brain"));
        let out = run(&mut s, "dataset Eb brain").unwrap();
        assert!(out.contains("libraries"), "{out}");
        assert!(run(&mut s, "cleaning").unwrap().contains("raw union"));
        assert!(run(&mut s, "lineage").unwrap().contains("Eb"));
        assert!(run(&mut s, "fascicles").unwrap().contains("no fascicles"));
        let err = run(&mut s, "gap g missing1 missing2").unwrap_err();
        assert_eq!(err.code, "ENOTFOUND");
        let err = run(&mut s, "dataset Eb brain").unwrap_err();
        assert_eq!(err.code, "ECONFLICT");
    }

    #[test]
    fn select_and_project_derive_datasets() {
        let mut s = demo_session();
        run(&mut s, "dataset Eb brain").unwrap();
        let lib = s.enum_table("Eb").unwrap().library_names()[0].to_string();
        let out = run(&mut s, &format!("select Esub Eb {lib}")).unwrap();
        assert!(out.contains("1 of"), "{out}");
        let err = run(&mut s, "select Enone Eb not-a-library").unwrap_err();
        assert_eq!(err.code, "EEMPTY");
        let m = &s.enum_table("Eb").unwrap().matrix;
        let tag = m.tag_of(m.tag_ids().next().unwrap()).to_string();
        let out = run(&mut s, &format!("project Ep Eb {tag}")).unwrap();
        assert!(out.contains("1 tags"), "{out}");
        assert!(run(&mut s, "lineage").unwrap().contains("Esub"));
    }

    #[test]
    fn purity_read_path_matches_stateful_check() {
        let mut s = demo_session();
        run(&mut s, "dataset Eb brain").unwrap();
        for pct in [60, 55, 50, 45, 40] {
            run(&mut s, &format!("mine Eb f{pct} {pct} 3 6")).unwrap();
            if !s.fascicle_names().is_empty() {
                break;
            }
        }
        if let Some(f) = s.fascicle_names().first().map(|f| f.to_string()) {
            let via_read = run(&mut s, &format!("purity {f}")).unwrap();
            let via_check = render_purity(&f, &s.purity_check(&f).unwrap());
            assert_eq!(via_read, via_check);
        }
    }
}
