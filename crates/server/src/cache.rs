//! Generation-stamped response cache for read-only GQL replies.
//!
//! Replies to cacheable read verbs are stored under the key
//! `(scope, generation, normalized command line)`. Because a session's
//! generation bumps on every write-lock acquisition
//! ([`crate::registry::SessionEntry::generation`]), a cached reply is
//! *structurally* invalidated by any write: the next lookup carries the
//! new generation and simply misses. No invalidation traffic, no session
//! lock on the hit path — a hit is a map probe under the cache's own
//! mutex.
//!
//! The scope component names *whose* replies a slot holds. The default
//! scope, [`CacheScope::Entry`], carries the session's entry id (unique
//! per [`crate::registry::SessionEntry`], never reused), which guarantees
//! a session that is closed, evicted, or replaced under the same name can
//! never serve another incarnation's replies;
//! [`ResponseCache::purge_entry`] additionally reclaims their budget
//! eagerly. [`CacheScope::Corpus`] instead carries a corpus fingerprint,
//! letting *pristine* twin sessions (generation 0, identical corpus —
//! e.g. two `open demo <seed>` sessions with the same seed) share each
//! other's pure-read replies. Corpus-scoped slots are only ever written
//! and read at generation 0, so a session that diverges (any write bumps
//! its generation) silently stops matching them and falls back to its
//! private entry scope.
//!
//! Capacity is a byte budget over command + reply text. Insertions over
//! budget evict least-recently-hit slots first (stale generations are
//! never hit again, so they age out fastest) — but eviction is guarded by
//! a **scan-resistant admission filter** ([`FrequencySketch`], a
//! TinyLFU-style count-min sketch of access frequencies): an insertion
//! that would evict a slot whose command is accessed *more often* than
//! the newcomer is rejected instead. A burst of one-off commands (a
//! client iterating `library 0`, `library 1`, … once each) therefore
//! churns only against itself; the hot replies it would have flushed
//! under plain LRU keep hitting. Frequencies are keyed on
//! `(scope, command)` with the generation deliberately excluded, so a
//! command's popularity survives write invalidations and the recomputed
//! reply re-admits immediately.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Fixed per-slot charge on top of the text payload (key struct, map
/// node, and allocation overhead).
const SLOT_OVERHEAD: usize = 96;

/// Namespace of a cache slot: who may hit it.
#[derive(Debug, PartialEq, Eq, Hash, Clone, Copy)]
pub enum CacheScope {
    /// Private to one session incarnation, keyed by its registry entry id.
    Entry(u64),
    /// Shared across pristine sessions with an identical corpus, keyed by
    /// the corpus fingerprint. Only used at generation 0.
    Corpus(u64),
}

#[derive(PartialEq, Eq, Hash, Clone)]
struct Key {
    scope: CacheScope,
    generation: u64,
    command: String,
}

struct Slot {
    reply: String,
    cost: usize,
    /// Logical LRU timestamp: the cache clock at the last hit/insert.
    /// Unique per slot (the clock ticks on every hit and insert), so it
    /// doubles as the slot's position in the `order` index.
    stamp: u64,
}

/// Smallest counters-per-row width the sketch will use (the historical
/// fixed size: 4 KiB of counters).
const SKETCH_MIN_WIDTH: usize = 1024;
/// Largest width: each row's index draws 16 bits from the 64-bit hash,
/// so a row can address at most 2^16 counters.
const SKETCH_MAX_WIDTH: usize = 65_536;
/// Independent counter rows; an item's estimate is the minimum over its
/// row counters, so hash collisions only ever *overstate* a frequency.
const SKETCH_ROWS: usize = 4;
/// Assumed bytes per cached slot when sizing the sketch from the cache
/// budget: the sketch should track about as many distinct keys as the
/// cache can hold slots, and command + reply text for typical GQL replies
/// lands around a KiB.
const SKETCH_BYTES_PER_SLOT: usize = 1024;

/// A TinyLFU-style count-min sketch over `(scope, command)` access
/// frequencies: 4 rows of `u8` counters, saturating increments, periodic
/// halving. No allocations after construction, no external dependencies.
///
/// The width scales with the cache budget (`--cache-bytes`): a fixed
/// 1024-counter row serves a few-MiB cache fine, but a large budget holds
/// many more distinct keys than the row can separate, and the admission
/// filter degrades into coin flips between colliding hot sets. The aging
/// sample limit scales with the width so bigger sketches keep the same
/// sliding-window behavior, and a counter saturating at `u8::MAX`
/// triggers an immediate aging pass — a pinned counter can no longer
/// rank two hot keys, halving restores the resolution.
struct FrequencySketch {
    counters: Vec<u8>,
    /// Counters per row; a power of two in
    /// [`SKETCH_MIN_WIDTH`, `SKETCH_MAX_WIDTH`].
    width: usize,
    samples: u32,
    /// Recorded accesses between aging passes (10× width).
    sample_limit: u32,
}

impl FrequencySketch {
    /// A sketch sized for a cache of `budget` bytes: one counter per
    /// expected slot, rounded up to a power of two and clamped.
    fn for_budget(budget: usize) -> FrequencySketch {
        let width = (budget / SKETCH_BYTES_PER_SLOT)
            .next_power_of_two()
            .clamp(SKETCH_MIN_WIDTH, SKETCH_MAX_WIDTH);
        FrequencySketch {
            counters: vec![0; SKETCH_ROWS * width],
            width,
            samples: 0,
            sample_limit: 10 * width as u32,
        }
    }

    fn index(&self, row: usize, hash: u64) -> usize {
        row * self.width + ((hash >> (16 * row)) as usize & (self.width - 1))
    }

    /// Count one access.
    fn record(&mut self, hash: u64) {
        self.samples += 1;
        if self.samples >= self.sample_limit {
            self.age();
        }
        // A saturated counter has stopped ranking: two keys pinned at the
        // ceiling compare equal no matter how their popularity differs.
        // Halve everything to restore resolution before counting.
        if (0..SKETCH_ROWS).any(|row| self.counters[self.index(row, hash)] == u8::MAX) {
            self.age();
        }
        for row in 0..SKETCH_ROWS {
            let i = self.index(row, hash);
            self.counters[i] = self.counters[i].saturating_add(1);
        }
    }

    /// Estimated access count (an upper bound; exact absent collisions).
    fn estimate(&self, hash: u64) -> u8 {
        (0..SKETCH_ROWS)
            .map(|row| self.counters[self.index(row, hash)])
            .min()
            .unwrap_or(0)
    }

    fn age(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
        self.samples /= 2;
    }
}

/// FNV-1a over the scope and command. The generation is deliberately
/// excluded — see the module doc.
fn freq_hash(scope: CacheScope, command: &str) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let (tag, id) = match scope {
        CacheScope::Entry(id) => (1u8, id),
        CacheScope::Corpus(id) => (2u8, id),
    };
    h = (h ^ tag as u64).wrapping_mul(PRIME);
    for b in id.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    for &b in command.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    h
}

struct Inner {
    map: HashMap<Key, Slot>,
    /// LRU index: stamp -> key, mirroring `map`. The first entry is the
    /// least recently hit slot, so one eviction is an O(log n) pop
    /// instead of a full scan.
    order: BTreeMap<u64, Key>,
    bytes: usize,
    clock: u64,
    /// Access-frequency sketch feeding the scan-resistant admission
    /// decision on over-budget inserts.
    sketch: FrequencySketch,
}

impl Inner {
    fn new(budget: usize) -> Inner {
        Inner {
            map: HashMap::new(),
            order: BTreeMap::new(),
            bytes: 0,
            clock: 0,
            sketch: FrequencySketch::for_budget(budget),
        }
    }
}

/// The outcome of a cache insertion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The reply was cached; `evicted` older slots made room for it.
    Stored {
        /// How many least-recently-hit slots were evicted to fit it.
        evicted: u64,
    },
    /// The reply was too large relative to the budget and was not cached
    /// (counted in the `cache_rejected` stat by the caller).
    Rejected,
    /// The cache is disabled (zero budget); nothing was stored and nothing
    /// should be counted.
    Disabled,
}

/// Admission control: a single reply may use at most this fraction of the
/// budget (1/`ADMISSION_FRACTION`). Without it, one huge reply churns the
/// entire LRU on insert — evicting every hot slot to store bytes that will
/// likely age out before they are hit again.
const ADMISSION_FRACTION: usize = 4;

/// A byte-budgeted LRU cache of `OK` reply payloads.
pub struct ResponseCache {
    budget: usize,
    inner: Mutex<Inner>,
}

impl ResponseCache {
    /// Create a cache holding at most `budget` bytes of command + reply
    /// text. A budget of 0 disables the cache entirely (every lookup
    /// misses, every insert is a no-op).
    pub fn new(budget: usize) -> ResponseCache {
        ResponseCache {
            budget,
            inner: Mutex::new(Inner::new(budget)),
        }
    }

    /// Whether a nonzero budget was configured.
    pub fn is_enabled(&self) -> bool {
        self.budget > 0
    }

    /// Look up the reply cached for `command` under `scope` at
    /// `generation`. A hit refreshes the slot's LRU stamp. Every lookup —
    /// hit or miss — records an access in the frequency sketch, which is
    /// what lets a popular command out-rank a one-off scan at admission.
    pub fn get(&self, scope: CacheScope, generation: u64, command: &str) -> Option<String> {
        if self.budget == 0 {
            return None;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.sketch.record(freq_hash(scope, command));
        inner.clock += 1;
        let clock = inner.clock;
        let key = Key {
            scope,
            generation,
            command: command.to_string(),
        };
        let slot = inner.map.get_mut(&key)?;
        let stale = slot.stamp;
        slot.stamp = clock;
        let reply = slot.reply.clone();
        inner.order.remove(&stale);
        inner.order.insert(clock, key);
        Some(reply)
    }

    /// Store a reply, evicting least-recently-hit slots until it fits —
    /// unless a would-be victim's command is accessed more often than the
    /// newcomer, in which case the newcomer is rejected instead (scan
    /// resistance; see the module doc). Replies costing more than 1/4 of
    /// the budget are rejected at admission instead of churning the whole
    /// LRU to store them.
    pub fn insert(
        &self,
        scope: CacheScope,
        generation: u64,
        command: String,
        reply: String,
    ) -> Admission {
        if self.budget == 0 {
            return Admission::Disabled;
        }
        let cost = SLOT_OVERHEAD + command.len() + reply.len();
        if cost.saturating_mul(ADMISSION_FRACTION) > self.budget {
            return Admission::Rejected;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let hash = freq_hash(scope, &command);
        inner.sketch.record(hash);
        let newcomer = inner.sketch.estimate(hash);
        let key = Key {
            scope,
            generation,
            command,
        };
        // Credit a slot being replaced under the same key *before* the
        // eviction pass, so a same-key refresh near budget does not evict
        // unrelated slots.
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.cost;
            inner.order.remove(&old.stamp);
        }
        // Choose victims least-recently-hit first, but admit only if the
        // newcomer's access frequency matches or beats every victim's:
        // one slot whose command out-ranks the newcomer vetoes the whole
        // insertion, and nothing is evicted. Ties go to the newcomer, so
        // equally cold traffic still behaves like plain LRU. Note that a
        // *stale-generation twin* of the newcomer (same scope and command,
        // older generation — dead weight, since generations only move
        // forward) shares the newcomer's frequency hash, so it always ties
        // and can always be reclaimed; a hot command's own reinserts sweep
        // out its previous generations.
        let mut victims: Vec<(u64, Key)> = Vec::new();
        let mut freed = 0usize;
        for (&stamp, victim) in inner.order.iter() {
            if inner.bytes - freed + cost <= self.budget {
                break;
            }
            if inner
                .sketch
                .estimate(freq_hash(victim.scope, &victim.command))
                > newcomer
            {
                return Admission::Rejected;
            }
            freed += inner.map[victim].cost;
            victims.push((stamp, victim.clone()));
        }
        let mut evicted = 0;
        for (stamp, victim) in victims {
            if let Some(slot) = inner.map.remove(&victim) {
                inner.bytes -= slot.cost;
                evicted += 1;
            }
            inner.order.remove(&stamp);
        }
        inner.clock += 1;
        let stamp = inner.clock;
        inner.order.insert(stamp, key.clone());
        inner.map.insert(key, Slot { reply, cost, stamp });
        inner.bytes += cost;
        Admission::Stored { evicted }
    }

    /// Drop every *entry-scoped* slot belonging to session `entry`
    /// (closed, evicted, or replaced), returning how many were dropped.
    /// Corpus-scoped slots are deliberately left alone: they belong to
    /// the corpus, not to any one session, and remain valid for future
    /// pristine twins.
    pub fn purge_entry(&self, entry: u64) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let victims: Vec<(u64, Key)> = inner
            .map
            .iter()
            .filter(|(k, _)| k.scope == CacheScope::Entry(entry))
            .map(|(k, slot)| (slot.stamp, k.clone()))
            .collect();
        let n = victims.len();
        for (stamp, key) in victims {
            if let Some(slot) = inner.map.remove(&key) {
                inner.bytes -= slot.cost;
            }
            inner.order.remove(&stamp);
        }
        n
    }

    /// Bytes currently held (command + reply text + per-slot overhead).
    pub fn bytes(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }

    /// Number of cached replies.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache gauges appended to the `stats` reply.
    pub fn render_gauges(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        format!(
            "cache_entries {}\ncache_bytes {}\ncache_budget_bytes {}\n",
            inner.map.len(),
            inner.bytes,
            self.budget
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u64) -> CacheScope {
        CacheScope::Entry(id)
    }

    #[test]
    fn hit_miss_and_generation_invalidation() {
        let cache = ResponseCache::new(4096);
        assert!(cache.is_enabled());
        assert_eq!(cache.get(e(1), 0, "lineage"), None);
        cache.insert(e(1), 0, "lineage".into(), "node 0".into());
        assert_eq!(cache.get(e(1), 0, "lineage"), Some("node 0".to_string()));
        // A bumped generation is a structural miss; the old slot lingers
        // until LRU reclaims it but can never be served again.
        assert_eq!(cache.get(e(1), 1, "lineage"), None);
        // Another session's entry id never collides.
        assert_eq!(cache.get(e(2), 0, "lineage"), None);
        assert_eq!(cache.len(), 1);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn lru_eviction_under_a_tiny_budget() {
        // Budget fits four admission-sized slots exactly; a fifth insert
        // must evict the least recently used.
        let slot = SLOT_OVERHEAD + 1 + 5;
        let cache = ResponseCache::new(4 * slot);
        for key in ["a", "b", "c", "d"] {
            assert_eq!(
                cache.insert(e(1), 0, key.into(), "vvvvv".into()),
                Admission::Stored { evicted: 0 }
            );
        }
        // Touch "a" so "b" is the least recently used, then overflow.
        assert!(cache.get(e(1), 0, "a").is_some());
        assert_eq!(
            cache.insert(e(1), 0, "e".into(), "vvvvv".into()),
            Admission::Stored { evicted: 1 }
        );
        assert!(
            cache.get(e(1), 0, "a").is_some(),
            "recently hit slot survives"
        );
        assert_eq!(cache.get(e(1), 0, "b"), None, "LRU slot evicted");
        assert!(cache.get(e(1), 0, "e").is_some());
    }

    #[test]
    fn oversized_replies_are_rejected_at_admission() {
        // A reply over 1/4 of the budget never enters the cache — and
        // never evicts what is already there.
        let cache = ResponseCache::new(4096);
        assert_eq!(
            cache.insert(e(1), 0, "small".into(), "v".into()),
            Admission::Stored { evicted: 0 }
        );
        assert_eq!(
            cache.insert(e(1), 0, "big".into(), "x".repeat(2000)),
            Admission::Rejected
        );
        assert_eq!(cache.len(), 1, "rejected reply must not be stored");
        assert!(
            cache.get(e(1), 0, "small").is_some(),
            "rejected reply must not evict residents"
        );
        // Exactly at the quarter boundary is still admitted.
        let fitting = 4096 / 4 - SLOT_OVERHEAD - 3;
        assert_eq!(
            cache.insert(e(1), 0, "fit".into(), "z".repeat(fitting)),
            Admission::Stored { evicted: 0 }
        );
    }

    #[test]
    fn oversize_and_disabled_are_no_ops() {
        let cache = ResponseCache::new(64);
        assert_eq!(
            cache.insert(e(1), 0, "big".into(), "x".repeat(1000)),
            Admission::Rejected
        );
        assert!(cache.is_empty());

        let off = ResponseCache::new(0);
        assert!(!off.is_enabled());
        assert_eq!(
            off.insert(e(1), 0, "a".into(), "b".into()),
            Admission::Disabled,
            "a disabled cache must not count rejections"
        );
        assert_eq!(off.get(e(1), 0, "a"), None);
        assert!(off.is_empty());
    }

    #[test]
    fn purge_drops_only_the_named_entry() {
        let cache = ResponseCache::new(4096);
        cache.insert(e(1), 0, "a".into(), "1".into());
        cache.insert(e(1), 3, "b".into(), "2".into());
        cache.insert(e(2), 0, "a".into(), "3".into());
        assert_eq!(cache.purge_entry(1), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(e(2), 0, "a"), Some("3".to_string()));
        assert_eq!(cache.purge_entry(99), 0);
    }

    #[test]
    fn same_key_refresh_near_budget_does_not_evict_neighbors() {
        // Four admission-sized slots fill the budget exactly.
        let payload = "p".repeat(100);
        let slot = SLOT_OVERHEAD + 1 + payload.len();
        let cache = ResponseCache::new(4 * slot);
        for key in ["a", "b", "c", "d"] {
            assert_eq!(
                cache.insert(e(1), 0, key.into(), payload.clone()),
                Admission::Stored { evicted: 0 }
            );
        }
        // Re-inserting "d" replaces its own slot; crediting it first means
        // nothing else needs to go.
        assert_eq!(
            cache.insert(e(1), 0, "d".into(), payload),
            Admission::Stored { evicted: 0 }
        );
        assert!(cache.get(e(1), 0, "a").is_some(), "unrelated slot evicted");
        assert!(cache.get(e(1), 0, "d").is_some());
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let cache = ResponseCache::new(4096);
        cache.insert(e(1), 0, "a".into(), "short".into());
        let before = cache.bytes();
        cache.insert(e(1), 0, "a".into(), "short".into());
        assert_eq!(cache.bytes(), before, "double insert double-counted");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn corpus_scope_is_shared_and_survives_entry_purge() {
        let cache = ResponseCache::new(4096);
        let twin = CacheScope::Corpus(0xfeed);
        // A corpus-scoped slot stored by one session hits for any twin —
        // there is no entry id in the key at all.
        cache.insert(twin, 0, "lineage".into(), "node 0".into());
        assert_eq!(cache.get(twin, 0, "lineage"), Some("node 0".to_string()));
        // It never collides with entry scopes, even on equal raw ids.
        assert_eq!(cache.get(CacheScope::Entry(0xfeed), 0, "lineage"), None);
        // Purging a session's entry slots leaves corpus slots alone.
        cache.insert(e(7), 0, "gap g".into(), "x".into());
        assert_eq!(cache.purge_entry(7), 1);
        assert_eq!(cache.get(twin, 0, "lineage"), Some("node 0".to_string()));
    }

    #[test]
    fn hot_slots_survive_a_cold_scan() {
        // Mirrors the server's miss path per command: a lookup (miss)
        // followed by an insert, so every once-seen scan key carries a
        // frequency of 2 while the primed-and-hit resident carries 4.
        let payload = "v".repeat(20);
        let slot = SLOT_OVERHEAD + 3 + payload.len();
        let cache = ResponseCache::new(4 * slot);

        assert_eq!(cache.get(e(1), 0, "hot"), None);
        cache.insert(e(1), 0, "hot".into(), payload.clone());
        for _ in 0..2 {
            assert!(cache.get(e(1), 0, "hot").is_some());
        }

        // One-pass cold scan, 3x the budget: the first keys fill the free
        // space, the rest would have to evict the hot slot — and lose the
        // frequency contest against it instead.
        let mut rejected = 0;
        for i in 0..12 {
            let key = format!("s{i:02}");
            assert_eq!(cache.get(e(1), 0, &key), None);
            if cache.insert(e(1), 0, key, payload.clone()) == Admission::Rejected {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "over-budget scan was fully admitted");
        assert!(
            cache.get(e(1), 0, "hot").is_some(),
            "hot slot was thrashed by a one-pass scan"
        );
    }

    #[test]
    fn popularity_survives_generation_bumps() {
        // The frequency hash excludes the generation, so a write
        // invalidation does not reset a command's standing: the recomputed
        // reply re-admits immediately (sweeping out its own stale slot)
        // and resists a scan from its first post-write insert.
        let payload = "v".repeat(20);
        let slot = SLOT_OVERHEAD + 3 + payload.len();
        let cache = ResponseCache::new(4 * slot);

        assert_eq!(cache.get(e(1), 0, "hot"), None);
        cache.insert(e(1), 0, "hot".into(), payload.clone());
        for _ in 0..2 {
            assert!(cache.get(e(1), 0, "hot").is_some());
        }
        // Fill the remaining budget with once-seen keys.
        for key in ["c00", "c01", "c02"] {
            assert_eq!(cache.get(e(1), 0, key), None);
            assert_eq!(
                cache.insert(e(1), 0, key.into(), payload.clone()),
                Admission::Stored { evicted: 0 }
            );
        }

        // A write bumps the generation; the re-read misses structurally
        // and the recomputed reply is re-inserted under generation 1. The
        // gen-0 slot is the LRU victim and ties with its own twin, so the
        // insert reclaims it rather than being vetoed by it.
        assert_eq!(cache.get(e(1), 1, "hot"), None);
        assert_eq!(
            cache.insert(e(1), 1, "hot".into(), payload.clone()),
            Admission::Stored { evicted: 1 }
        );
        assert!(cache.get(e(1), 1, "hot").is_some());

        // And it still out-ranks a fresh cold scan.
        let mut rejected = 0;
        for i in 0..8 {
            let key = format!("d{i:02}");
            assert_eq!(cache.get(e(1), 1, &key), None);
            if cache.insert(e(1), 1, key, payload.clone()) == Admission::Rejected {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "post-bump scan was fully admitted");
        assert!(
            cache.get(e(1), 1, "hot").is_some(),
            "generation bump reset the command's scan resistance"
        );
    }

    #[test]
    fn gauges_render() {
        let cache = ResponseCache::new(512);
        cache.insert(e(1), 0, "a".into(), "b".into());
        let g = cache.render_gauges();
        assert!(g.contains("cache_entries 1"), "{g}");
        assert!(g.contains("cache_budget_bytes 512"), "{g}");
    }

    #[test]
    fn sketch_width_scales_with_budget() {
        // Small budgets keep the historical 1024-counter rows; the width
        // then tracks budget / 1 KiB as a power of two, capped by the 16
        // index bits available per row.
        assert_eq!(FrequencySketch::for_budget(0).width, 1024);
        assert_eq!(FrequencySketch::for_budget(512 * 1024).width, 1024);
        assert_eq!(FrequencySketch::for_budget(8 * 1024 * 1024).width, 8192);
        assert_eq!(FrequencySketch::for_budget(3 * 1024 * 1024).width, 4096);
        assert_eq!(FrequencySketch::for_budget(1 << 30).width, 65_536);
        for budget in [0, 4096, 1 << 20, 1 << 26, 1 << 30] {
            let s = FrequencySketch::for_budget(budget);
            assert!(s.width.is_power_of_two());
            assert_eq!(s.sample_limit, 10 * s.width as u32);
            assert_eq!(s.counters.len(), SKETCH_ROWS * s.width);
        }
    }

    #[test]
    fn large_budget_sketch_keeps_hot_sets_separable() {
        // A 64 MiB cache sees far more distinct keys than a 1024-counter
        // row can separate. With the width scaled to the budget, a large
        // one-off scan must not inflate cold keys into the hot keys'
        // frequency range: every hot key must still out-rank every scan
        // key at admission time.
        let mut sketch = FrequencySketch::for_budget(64 * 1024 * 1024);
        assert_eq!(sketch.width, 65_536);
        let hot: Vec<u64> = (0..100)
            .map(|i| freq_hash(CacheScope::Entry(1), &format!("hot{i}")))
            .collect();
        let scan: Vec<u64> = (0..5000)
            .map(|i| freq_hash(CacheScope::Entry(1), &format!("scan{i}")))
            .collect();
        for h in &hot {
            for _ in 0..10 {
                sketch.record(*h);
            }
        }
        for s in &scan {
            sketch.record(*s);
        }
        let min_hot = hot.iter().map(|h| sketch.estimate(*h)).min().unwrap();
        let max_scan = scan.iter().map(|s| sketch.estimate(*s)).max().unwrap();
        assert!(
            min_hot > max_scan,
            "hot set no longer separable: min hot estimate {min_hot} <= max scan estimate {max_scan}"
        );
    }

    #[test]
    fn saturated_counter_triggers_aging() {
        let mut sketch = FrequencySketch::for_budget(0);
        let h = freq_hash(CacheScope::Entry(1), "pinned");
        // Drive one key's counters to the u8 ceiling; the next record on
        // that key must halve the sketch instead of comparing two pinned
        // keys as equals forever.
        for _ in 0..(u8::MAX as usize) {
            sketch.record(h);
        }
        let before = sketch.estimate(h);
        sketch.record(h);
        let after = sketch.estimate(h);
        assert!(
            after < before,
            "no aging pass on saturation: {before} -> {after}"
        );
        assert!(
            after >= u8::MAX / 2,
            "aging should halve, not reset to zero"
        );
    }
}
