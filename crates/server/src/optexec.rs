//! Execution of optimized [`Plan`]s.
//!
//! `gea-opt` plans; this module runs. Every fast-path and fused step ends
//! by calling the *same* reply-rendering helpers the literal engine arms
//! use (`engine::render_*`), so an optimized pipeline's wire output is
//! byte-identical to unoptimized execution by construction — and the rule
//! audit (`tests/opt_audit.rs`) re-proves it empirically over randomized
//! corpora and shard/thread grids.
//!
//! Error semantics follow the two front-end modes:
//!
//! * **batch** (`stop_on_error = true`): execution halts at the first
//!   failed command, like `gea-cli --script`;
//! * **REPL/server** (`stop_on_error = false`): every command runs and
//!   reports independently. A fused step whose first phase fails then
//!   *falls back* to executing its second phase literally — serially, a
//!   failed `gap G …` does not stop the next `topgap G x` from running
//!   against whatever `G` previously named, and the fused step must
//!   preserve exactly that.

use gea_core::session::GeaSession;
use gea_core::topgap::TopGapOrder;
use gea_opt::{Plan, Step};

use crate::engine::{self, EngineError};
use crate::gql::GqlCommand;

/// Index budget for the access-path fast path: range indexes on this many
/// highest-entropy tags, estimated with this many histogram bins (the
/// Table 3.1/3.2 reproduction's operating point).
const ACCESS_PATH_INDEXES: usize = 4;
const ACCESS_PATH_ENTROPY_BINS: usize = 16;

/// Execute a [`Step::PopulateAccessPath`]: consult the `gea-check` cost
/// oracle on the *live* table sizes and route qualification through either
/// the index-probe kernel or the sharded columnar scan (the literal
/// engine's path). All kernels return the same hit list (property-tested
/// in `gea-core`), and reply rendering plus lineage bookkeeping are shared,
/// so the reply is byte-identical either way. The oracle uses the default
/// coefficients only — never `BENCH_*.json` calibration — so every replica
/// of a routed write makes the same choice. When either input name does
/// not resolve, the sizes read as zero and the oracle picks the scan path,
/// which reproduces the literal error discipline byte-for-byte.
fn run_populate_access_path(
    session: &mut GeaSession,
    name: &str,
    sumy: &str,
    dataset: &str,
    rule: &'static str,
) -> Result<String, EngineError> {
    let model = gea_check::CostModel::default_coefficients();
    let libraries = session
        .enum_table(dataset)
        .map(|t| t.n_libraries() as u64)
        .unwrap_or(0);
    let constraints = session
        .sumy(sumy)
        .map(|s| s.rows().len() as u64)
        .unwrap_or(0);
    if model.populate_prefers_index(libraries, constraints) {
        let cfg = session.exec_config();
        let mut noted = None;
        session.populate_from_sumy_traced(name, sumy, dataset, Some(rule), |s, t| {
            let index = gea_core::populate::PopulateIndex::build_top_entropy(
                t,
                ACCESS_PATH_INDEXES,
                ACCESS_PATH_ENTROPY_BINS,
            );
            let (libs, _pstats, exec) = gea_exec::populate_indexed_sharded(s, t, &index, &cfg);
            noted = Some(exec);
            libs
        })?;
        if let Some(stats) = noted {
            session.note_exec(stats.event("populate"));
        }
    } else {
        gea_exec::populate_session_sharded(session, name, sumy, dataset)?;
    }
    engine::render_populate_created(session, name, sumy, dataset)
}

/// Per-command outcomes, tagged with the source-pipeline index.
pub type StepOutputs = Vec<(usize, Result<String, EngineError>)>;

/// Execute a single-command rewritten step — the server's write-path entry
/// point (the wire protocol carries one command per request, so fused
/// steps never reach here).
pub fn run_rewritten(session: &mut GeaSession, step: &Step) -> Result<String, EngineError> {
    match step {
        Step::Exec { cmd, .. } => engine::execute(session, cmd),
        Step::CompareSelf {
            name,
            gap,
            op,
            query,
            rule,
            ..
        } => {
            session.compare_gaps_self_rewritten(name, gap, *op, *query, rule)?;
            Ok(engine::render_compare_created(session, name, *query))
        }
        Step::PopulateAccessPath {
            name,
            sumy,
            dataset,
            rule,
            ..
        } => run_populate_access_path(session, name, sumy, dataset, rule),
        fused => {
            debug_assert!(false, "fused step in single-command context: {fused:?}");
            Err(EngineError::new(
                "EUNKNOWN",
                "fused plan step in single-command context",
            ))
        }
    }
}

/// Execute one plan step, appending `(source index, outcome)` pairs to
/// `out` in command order. Returns `false` when execution must halt
/// (`stop_on_error` and a command failed).
fn run_step(
    session: &mut GeaSession,
    step: &Step,
    stop_on_error: bool,
    out: &mut StepOutputs,
) -> bool {
    match step {
        Step::Exec { index, cmd } => {
            let r = engine::execute(session, cmd);
            let failed = r.is_err();
            out.push((*index, r));
            !(stop_on_error && failed)
        }
        Step::CompareSelf {
            index,
            name,
            gap,
            op,
            query,
            rule,
        } => {
            let r = session
                .compare_gaps_self_rewritten(name, gap, *op, *query, rule)
                .map(|()| engine::render_compare_created(session, name, *query))
                .map_err(EngineError::from);
            let failed = r.is_err();
            out.push((*index, r));
            !(stop_on_error && failed)
        }
        Step::PopulateAccessPath {
            index,
            name,
            sumy,
            dataset,
            rule,
        } => {
            let r = run_populate_access_path(session, name, sumy, dataset, rule);
            let failed = r.is_err();
            out.push((*index, r));
            !(stop_on_error && failed)
        }
        Step::FusedGapTopGap {
            gap_index,
            top_index,
            name,
            sumy1,
            sumy2,
            x,
            rule,
        } => {
            match session.create_gap_with_top(
                name,
                sumy1,
                sumy2,
                *x,
                TopGapOrder::LargestMagnitude,
                rule,
            ) {
                Err(e) => {
                    out.push((*gap_index, Err(e.into())));
                    if stop_on_error {
                        return false;
                    }
                    // REPL fallback: the paired topgap still runs, against
                    // whatever `name` previously meant (if anything).
                    let cmd = GqlCommand::TopGap {
                        gap: name.clone(),
                        x: *x,
                    };
                    out.push((*top_index, engine::execute(session, &cmd)));
                    true
                }
                Ok(top_outcome) => {
                    out.push((*gap_index, Ok(engine::render_gap_created(session, name))));
                    match top_outcome {
                        Err(e) => {
                            out.push((*top_index, Err(e.into())));
                            !stop_on_error
                        }
                        Ok(top) => {
                            out.push((
                                *top_index,
                                Ok(engine::render_topgap_created(session, &top)),
                            ));
                            true
                        }
                    }
                }
            }
        }
        Step::FusedPopulateSelect {
            populate_index,
            select_index,
            name,
            sumy,
            dataset,
            select_name,
            libraries,
            rule,
        } => {
            let populated = gea_exec::populate_session_sharded(session, name, sumy, dataset)
                .map_err(EngineError::from)
                .and_then(|_| engine::render_populate_created(session, name, sumy, dataset));
            match populated {
                Err(e) => {
                    out.push((*populate_index, Err(e)));
                    if stop_on_error {
                        return false;
                    }
                    // REPL fallback: the selection still runs against the
                    // pre-existing meaning of `name` (if any).
                    let cmd = GqlCommand::Select {
                        name: select_name.clone(),
                        dataset: name.clone(),
                        libraries: libraries.clone(),
                    };
                    out.push((*select_index, engine::execute(session, &cmd)));
                    true
                }
                Ok(reply) => {
                    out.push((*populate_index, Ok(reply)));
                    let libs: Vec<&str> = libraries.iter().map(|s| s.as_str()).collect();
                    let r = session
                        .select_dataset_libraries_traced(select_name, name, &libs, Some(rule))
                        .map_err(EngineError::from)
                        .and_then(|()| engine::render_select_created(session, select_name, name));
                    let failed = r.is_err();
                    out.push((*select_index, r));
                    !(stop_on_error && failed)
                }
            }
        }
    }
}

/// Execute a whole plan. Outputs are in source-command order; with
/// `stop_on_error` the vector ends at the first failed command.
pub fn run_plan(session: &mut GeaSession, plan: &Plan, stop_on_error: bool) -> StepOutputs {
    let mut out = StepOutputs::new();
    for step in &plan.steps {
        if !run_step(session, step, stop_on_error, &mut out) {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gql::{parse, Request};
    use gea_sage::clean::CleaningConfig;
    use gea_sage::generate::{generate, GeneratorConfig};

    fn demo_session() -> GeaSession {
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        GeaSession::open(corpus, &CleaningConfig::default()).unwrap()
    }

    fn cmds(lines: &[&str]) -> Vec<GqlCommand> {
        lines
            .iter()
            .map(|l| match parse(l).unwrap().unwrap() {
                Request::Gql(c) => c,
                other => panic!("{l}: {other:?}"),
            })
            .collect()
    }

    /// Serial reference: execute literally, one command at a time.
    fn run_serial(
        session: &mut GeaSession,
        pipeline: &[GqlCommand],
        stop_on_error: bool,
    ) -> StepOutputs {
        let mut out = StepOutputs::new();
        for (i, cmd) in pipeline.iter().enumerate() {
            let r = engine::execute(session, cmd);
            let failed = r.is_err();
            out.push((i, r));
            if stop_on_error && failed {
                break;
            }
        }
        out
    }

    fn brain_prelude() -> Vec<&'static str> {
        vec![
            "dataset Eb brain",
            "mine Eb f 50 3 6",
            "groups f_1",
            "gap ga f_1CancerFasTbl f_1NormalTable",
            "gap gb f_1CancerFasTbl f_1CanNotInFasTbl",
        ]
    }

    fn assert_equivalent(pipeline: &[&str], stop_on_error: bool) {
        let mut plain = demo_session();
        let mut opt = demo_session();
        let src = cmds(pipeline);
        let want = run_serial(&mut plain, &src, stop_on_error);
        let plan = gea_opt::optimize(&src);
        let got = run_plan(&mut opt, &plan, stop_on_error);
        assert_eq!(want, got, "pipeline {pipeline:?}");
        // World state follows suit.
        assert_eq!(
            engine::execute(&mut plain, &cmds(&["lineage"])[0]).unwrap(),
            engine::execute(&mut opt, &cmds(&["lineage"])[0]).unwrap()
        );
    }

    #[test]
    fn optimized_self_compares_match_serial_execution() {
        let mut pipeline = brain_prelude();
        pipeline.extend([
            "compare cu ga ga union 2",
            "compare ci ga ga intersect 5",
            "compare cd ga ga difference 4",
            "compare cq ga ga union 7",
            "show gap cu 5",
            "show gap cd 5",
        ]);
        assert_equivalent(&pipeline, true);
    }

    #[test]
    fn fused_steps_match_serial_execution() {
        let mut pipeline = brain_prelude();
        pipeline.extend([
            "gap gc f_1CancerFasTbl f_1NormalTable",
            "topgap gc 5",
            "show gap gc_5 10",
        ]);
        assert_equivalent(&pipeline, true);
    }

    #[test]
    fn fused_phase_errors_keep_serial_semantics_in_both_modes() {
        // Phase 1 fails (name conflict): batch stops; REPL falls back to
        // running the topgap against the pre-existing gap.
        let mut pipeline = brain_prelude();
        pipeline.extend(["gap ga f_1CancerFasTbl f_1NormalTable", "topgap ga 3"]);
        assert_equivalent(&pipeline.clone(), true);
        assert_equivalent(&pipeline, false);

        // Phase 2 fails (top name taken): phase 1's table must survive.
        let mut pipeline = brain_prelude();
        pipeline.extend([
            "gap gd_3 f_1CancerFasTbl f_1NormalTable",
            "gap gd f_1CancerFasTbl f_1NormalTable",
            "topgap gd 3",
            "show gap gd 5",
        ]);
        assert_equivalent(&pipeline.clone(), false);
    }

    #[test]
    fn rewritten_single_command_runs_on_the_server_entry_point() {
        let mut plain = demo_session();
        let mut opt = demo_session();
        for line in brain_prelude() {
            let src = cmds(&[line]);
            engine::execute(&mut plain, &src[0]).unwrap();
            engine::execute(&mut opt, &src[0]).unwrap();
        }

        // Self-difference succeeds (single `Gap` column, empty rows) — the
        // happy path must render byte-identically.
        let src = cmds(&["compare cd ga ga difference 4"]);
        let want = engine::execute(&mut plain, &src[0]);
        let (step, rewrite) = gea_opt::rewrite_command(0, &src[0]).unwrap();
        assert_eq!(rewrite.rule, gea_opt::RULE_SELF_MINUS);
        let got = run_rewritten(&mut opt, &step);
        assert_eq!(want, got);
        want.unwrap();

        // Self-union errors even serially: qualified columns `ga.Gap` appear
        // twice and materialization rejects duplicates (EEMPTY). The fast
        // path must preserve that error byte-for-byte, not "fix" it.
        let src = cmds(&["compare cu ga ga union 2"]);
        let want = engine::execute(&mut plain, &src[0]);
        let (step, rewrite) = gea_opt::rewrite_command(0, &src[0]).unwrap();
        assert_eq!(rewrite.rule, gea_opt::RULE_SELF_UNION);
        let got = run_rewritten(&mut opt, &step);
        assert_eq!(want, got);
        assert_eq!(want.unwrap_err().code, "EEMPTY");
    }
}
