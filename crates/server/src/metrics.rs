//! Server metrics: request counts, per-command latency histograms, and
//! connection gauges, exposed by the `stats` command.
//!
//! Counters are lock-free atomics on the hot path; the per-command table
//! is a small mutexed map updated once per request. Latencies go into
//! log2-microsecond buckets (bucket *i* covers `[2^i, 2^(i+1))` µs), which
//! spans 1 µs to over a minute in [`N_BUCKETS`] buckets and gives
//! percentile estimates without storing samples.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of log2 latency buckets (last bucket absorbs the overflow).
pub const N_BUCKETS: usize = 27;

/// Latency statistics for one command verb.
#[derive(Debug, Clone)]
pub struct CmdStat {
    /// Requests observed.
    pub count: u64,
    /// Requests that returned `ERR`.
    pub errors: u64,
    /// Sum of latencies in microseconds.
    pub total_us: u64,
    /// Largest latency in microseconds.
    pub max_us: u64,
    /// log2-µs histogram.
    pub buckets: [u64; N_BUCKETS],
}

impl CmdStat {
    fn new() -> CmdStat {
        CmdStat {
            count: 0,
            errors: 0,
            total_us: 0,
            max_us: 0,
            buckets: [0; N_BUCKETS],
        }
    }

    fn record(&mut self, us: u64, ok: bool) {
        self.count += 1;
        if !ok {
            self.errors += 1;
        }
        self.total_us += us;
        self.max_us = self.max_us.max(us);
        let bucket = (63 - (us.max(1)).leading_zeros() as usize).min(N_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Upper edge (µs) of the bucket holding quantile `q` — a conservative
    /// percentile estimate from the histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        self.max_us
    }
}

/// Wall/busy accounting for one parallel operator, aggregated per op.
#[derive(Debug, Clone, Default)]
pub struct ExecOpStat {
    /// Parallel executions observed.
    pub count: u64,
    /// Summed shard count across executions.
    pub shards: u64,
    /// Summed wall-clock time of the parallel sections, microseconds.
    pub wall_us: u64,
    /// Summed per-worker busy (CPU-proxy) time, microseconds.
    pub cpu_us: u64,
}

/// The server's shared metrics sink.
pub struct Metrics {
    started: Instant,
    connections_active: AtomicU64,
    connections_total: AtomicU64,
    requests_total: AtomicU64,
    errors_total: AtomicU64,
    rejected_total: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_rejected: AtomicU64,
    budget_rejected: AtomicU64,
    opt_rewrites: AtomicU64,
    opt_key_unified: AtomicU64,
    sessions_evicted: AtomicU64,
    sessions_spilled: AtomicU64,
    sessions_restored: AtomicU64,
    spill_errors: AtomicU64,
    sessions_prefetched: AtomicU64,
    exec_parallel_ops: AtomicU64,
    exec_shards: AtomicU64,
    per_cmd: Mutex<BTreeMap<&'static str, CmdStat>>,
    per_exec: Mutex<BTreeMap<&'static str, ExecOpStat>>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Create a zeroed sink; uptime starts now.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            connections_active: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            cache_rejected: AtomicU64::new(0),
            budget_rejected: AtomicU64::new(0),
            opt_rewrites: AtomicU64::new(0),
            opt_key_unified: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            sessions_spilled: AtomicU64::new(0),
            sessions_restored: AtomicU64::new(0),
            spill_errors: AtomicU64::new(0),
            sessions_prefetched: AtomicU64::new(0),
            exec_parallel_ops: AtomicU64::new(0),
            exec_shards: AtomicU64::new(0),
            per_cmd: Mutex::new(BTreeMap::new()),
            per_exec: Mutex::new(BTreeMap::new()),
        }
    }

    /// A connection was accepted and handed to a worker.
    pub fn connection_opened(&self) {
        self.connections_active.fetch_add(1, Ordering::Relaxed);
        self.connections_total.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection finished.
    pub fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection was turned away because the worker queue was full.
    pub fn connection_rejected(&self) {
        self.rejected_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request's verb, latency, and outcome.
    pub fn record(&self, verb: &'static str, elapsed: Duration, ok: bool) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors_total.fetch_add(1, Ordering::Relaxed);
        }
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let mut map = self.per_cmd.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(verb).or_insert_with(CmdStat::new).record(us, ok);
    }

    /// A cacheable read was served from the response cache.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A cacheable read was not in the response cache and executed.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` cached replies were evicted to make room for an insertion.
    pub fn cache_evictions_add(&self, n: u64) {
        self.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// A reply was refused at cache admission for being oversized.
    pub fn cache_rejected(&self) {
        self.cache_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A command was rejected by the `--max-cost` budget gate before
    /// execution (`EBUDGET`).
    pub fn budget_rejected(&self) {
        self.budget_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// The optimizer rewrote a command onto a fast-path step.
    pub fn opt_rewrite(&self) {
        self.opt_rewrites.fetch_add(1, Ordering::Relaxed);
    }

    /// A cacheable command's canonical cache key differed from its literal
    /// spelling — algebraically-equal commands unified onto one slot.
    pub fn opt_key_unified(&self) {
        self.opt_key_unified.fetch_add(1, Ordering::Relaxed);
    }

    /// Optimizer rewrites applied so far.
    pub fn opt_rewrites(&self) -> u64 {
        self.opt_rewrites.load(Ordering::Relaxed)
    }

    /// `n` sessions were evicted by the registry's policy.
    pub fn sessions_evicted_add(&self, n: u64) {
        self.sessions_evicted.fetch_add(n, Ordering::Relaxed);
    }

    /// A session was persisted to the spill directory before eviction.
    pub fn session_spilled(&self) {
        self.sessions_spilled.fetch_add(1, Ordering::Relaxed);
    }

    /// A spilled session was transparently restored on its next use.
    pub fn session_restored(&self) {
        self.sessions_restored.fetch_add(1, Ordering::Relaxed);
    }

    /// A spill or restore attempt failed (I/O error or corrupt snapshot).
    pub fn spill_error(&self) {
        self.spill_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A spilled session's restore was kicked onto a background thread.
    pub fn session_prefetched(&self) {
        self.sessions_prefetched.fetch_add(1, Ordering::Relaxed);
    }

    /// A sharded operator ran: `op` names it (`mine`, `populate`,
    /// `aggregate`), `shards` is the fan-out, and `wall_us`/`cpu_us` are the
    /// parallel section's wall-clock and summed per-worker busy time.
    pub fn exec_op(&self, op: &'static str, shards: u64, wall_us: u64, cpu_us: u64) {
        self.exec_parallel_ops.fetch_add(1, Ordering::Relaxed);
        self.exec_shards.fetch_add(shards, Ordering::Relaxed);
        let mut map = self.per_exec.lock().unwrap_or_else(|e| e.into_inner());
        let stat = map.entry(op).or_default();
        stat.count += 1;
        stat.shards += shards;
        stat.wall_us += wall_us;
        stat.cpu_us += cpu_us;
    }

    /// Background restores kicked off so far.
    pub fn sessions_prefetched(&self) -> u64 {
        self.sessions_prefetched.load(Ordering::Relaxed)
    }

    /// Response-cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Response-cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Total requests observed so far.
    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Render the `stats` reply: gauges first, then one line per verb with
    /// count, errors, mean/p50/p95/max latency, and the raw histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "uptime_seconds {}", self.started.elapsed().as_secs());
        let _ = writeln!(
            out,
            "connections_active {}",
            self.connections_active.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "connections_total {}",
            self.connections_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "connections_rejected {}",
            self.rejected_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "requests_total {}", self.requests_total());
        let _ = writeln!(
            out,
            "errors_total {}",
            self.errors_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "cache_hits {}", self.cache_hits());
        let _ = writeln!(out, "cache_misses {}", self.cache_misses());
        let _ = writeln!(
            out,
            "cache_evictions {}",
            self.cache_evictions.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "cache_rejected {}",
            self.cache_rejected.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "budget_rejected {}",
            self.budget_rejected.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "opt_rewrites {}", self.opt_rewrites());
        let _ = writeln!(
            out,
            "opt_key_unified {}",
            self.opt_key_unified.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "sessions_evicted {}",
            self.sessions_evicted.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "sessions_spilled {}",
            self.sessions_spilled.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "sessions_restored {}",
            self.sessions_restored.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "spill_errors {}",
            self.spill_errors.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "sessions_prefetched {}",
            self.sessions_prefetched.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "exec_parallel_ops {}",
            self.exec_parallel_ops.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "exec_shards {}",
            self.exec_shards.load(Ordering::Relaxed)
        );
        {
            let execs = self.per_exec.lock().unwrap_or_else(|e| e.into_inner());
            for (op, stat) in execs.iter() {
                let _ = writeln!(
                    out,
                    "exec {op} count {} shards {} wall_us {} cpu_us {}",
                    stat.count, stat.shards, stat.wall_us, stat.cpu_us
                );
            }
        }
        let map = self.per_cmd.lock().unwrap_or_else(|e| e.into_inner());
        for (verb, stat) in map.iter() {
            let mean = stat.total_us.checked_div(stat.count).unwrap_or(0);
            let last = stat
                .buckets
                .iter()
                .rposition(|&b| b > 0)
                .map_or(0, |i| i + 1);
            let hist: Vec<String> = stat.buckets[..last].iter().map(|b| b.to_string()).collect();
            let _ = writeln!(
                out,
                "cmd {verb} count {} errors {} mean_us {mean} p50_us {} p95_us {} max_us {} hist_log2us [{}]",
                stat.count,
                stat.errors,
                stat.quantile_us(0.50),
                stat.quantile_us(0.95),
                stat.max_us,
                hist.join(" ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_and_histograms() {
        let m = Metrics::new();
        m.connection_opened();
        m.record("gap", Duration::from_micros(3), true);
        m.record("gap", Duration::from_micros(900), true);
        m.record("gap", Duration::from_micros(70), false);
        m.record("mine", Duration::from_millis(12), true);
        m.connection_closed();

        assert_eq!(m.requests_total(), 4);
        let text = m.render();
        assert!(text.contains("requests_total 4"), "{text}");
        assert!(text.contains("errors_total 1"), "{text}");
        assert!(text.contains("connections_active 0"), "{text}");
        assert!(text.contains("connections_total 1"), "{text}");
        assert!(text.contains("cmd gap count 3 errors 1"), "{text}");
        assert!(text.contains("cache_hits 0"), "{text}");
        assert!(text.contains("cmd mine count 1"), "{text}");
        assert!(text.contains("hist_log2us ["), "{text}");

        let map = m.per_cmd.lock().unwrap();
        let gap = &map["gap"];
        // 3 µs -> bucket 1, 70 µs -> bucket 6, 900 µs -> bucket 9.
        assert_eq!(gap.buckets[1], 1);
        assert_eq!(gap.buckets[6], 1);
        assert_eq!(gap.buckets[9], 1);
        assert_eq!(gap.quantile_us(0.5), 1 << 7);
        assert!(gap.quantile_us(1.0) >= 900);
    }

    #[test]
    fn quantiles_on_empty_stat_are_zero() {
        let s = CmdStat::new();
        assert_eq!(s.quantile_us(0.5), 0);
    }

    #[test]
    fn cache_and_eviction_counters_render() {
        let m = Metrics::new();
        m.cache_hit();
        m.cache_hit();
        m.cache_miss();
        m.cache_evictions_add(3);
        m.cache_rejected();
        m.sessions_evicted_add(1);
        m.session_spilled();
        m.session_spilled();
        m.session_restored();
        m.spill_error();
        assert_eq!(m.cache_hits(), 2);
        assert_eq!(m.cache_misses(), 1);
        let text = m.render();
        assert!(text.contains("cache_hits 2"), "{text}");
        assert!(text.contains("cache_misses 1"), "{text}");
        assert!(text.contains("cache_evictions 3"), "{text}");
        assert!(text.contains("cache_rejected 1"), "{text}");
        assert!(text.contains("sessions_evicted 1"), "{text}");
        assert!(text.contains("sessions_spilled 2"), "{text}");
        assert!(text.contains("sessions_restored 1"), "{text}");
        assert!(text.contains("spill_errors 1"), "{text}");
    }

    #[test]
    fn optimizer_counters_render() {
        let m = Metrics::new();
        m.opt_rewrite();
        m.opt_rewrite();
        m.opt_key_unified();
        m.budget_rejected();
        assert_eq!(m.opt_rewrites(), 2);
        let text = m.render();
        assert!(text.contains("opt_rewrites 2"), "{text}");
        assert!(text.contains("opt_key_unified 1"), "{text}");
        assert!(text.contains("budget_rejected 1"), "{text}");
    }

    #[test]
    fn prefetch_and_exec_counters_render() {
        let m = Metrics::new();
        m.session_prefetched();
        m.exec_op("populate", 4, 120, 400);
        m.exec_op("populate", 4, 80, 300);
        m.exec_op("mine", 2, 50, 90);
        assert_eq!(m.sessions_prefetched(), 1);
        let text = m.render();
        assert!(text.contains("sessions_prefetched 1"), "{text}");
        assert!(text.contains("exec_parallel_ops 3"), "{text}");
        assert!(text.contains("exec_shards 10"), "{text}");
        assert!(
            text.contains("exec populate count 2 shards 8 wall_us 200 cpu_us 700"),
            "{text}"
        );
        assert!(
            text.contains("exec mine count 1 shards 2 wall_us 50 cpu_us 90"),
            "{text}"
        );
    }
}
