//! The shard-scoped backend verbs (`x*`) a `gea-router` scatters to.
//!
//! These verbs are *not* part of the user-facing GQL grammar — they are
//! the distributed execution plane, intercepted before `gql::parse`:
//!
//! * `xpart <i> <k> :: <command>` — compute shard *i* of *k*'s partial
//!   result for a scatterable write (`mine`, `mine … with isa`,
//!   `populate … from`, `groups`) under a **read** lock, replying with a
//!   hex-armored opaque blob. Nothing is installed, so a failure here
//!   mutates no state anywhere.
//! * `xstage <hex>` / `xreset` — append bytes to (or clear) the
//!   connection's staging buffer. Request lines are capped, so large
//!   payloads arrive in chunks.
//! * `xapply <k> :: <command>` — interpret the staged bytes as the `k`
//!   length-framed per-shard partials in shard order, merge them with
//!   the exact in-process shard merge (`gea_exec::merge_shards`), and
//!   install the result through the very session methods the engine's
//!   own write path uses — the reply text, lineage, and all derived
//!   state are byte-identical to a single-process execution.
//! * `xsnapshot <session>` / `xadopt <session> <fingerprint>` /
//!   `xgen <session>` — the rebalance plane: a session's spill-format
//!   snapshot is read out under generation observation, shipped, and
//!   adopted elsewhere under a fingerprint check, with `xgen` letting
//!   the router refuse on generation drift exactly like spill does.

use std::collections::VecDeque;
use std::fmt::Write as _;

use gea_cluster::FascicleParams;
use gea_core::mine::Miner;
use gea_core::persist;
use gea_core::session::{ExecConfig, GeaSession};
use gea_core::sumy::{SumyRow, SumyTable};
use gea_mine::isa::IsaParams;
use gea_sage::library::LibraryProperty;

use crate::engine::{self, EngineError};
use crate::gql::{self, GqlCommand, Request};
use crate::server::{enforce_budget, live_entry, Shared};
use crate::xcodec;

fn eparse(msg: impl Into<String>) -> EngineError {
    EngineError::new("EPARSE", msg.into())
}

/// Intercept an `x*` request line. Returns `None` when the line is not a
/// backend verb (including `xprofiler`, which is ordinary GQL) so the
/// normal parse path handles it.
pub(crate) fn handle(
    line: &str,
    staged: &mut Vec<u8>,
    current: &str,
    shared: &Shared,
) -> Option<(&'static str, Result<String, EngineError>)> {
    let trimmed = line.trim();
    let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (trimmed, ""),
    };
    match verb {
        "xstage" => Some(("xstage", xstage(rest, staged))),
        "xreset" => {
            staged.clear();
            Some(("xreset", Ok("staging cleared".to_string())))
        }
        "xpart" => Some(("xpart", xpart(rest, current, shared))),
        "xapply" => Some(("xapply", xapply(rest, staged, current, shared))),
        "xsnapshot" => Some(("xsnapshot", xsnapshot(rest, shared))),
        "xadopt" => Some(("xadopt", xadopt(rest, staged, shared))),
        "xgen" => Some(("xgen", xgen(rest, shared))),
        _ => None,
    }
}

fn xstage(rest: &str, staged: &mut Vec<u8>) -> Result<String, EngineError> {
    if rest.is_empty() {
        return Err(eparse("usage: xstage <hex>"));
    }
    let bytes = xcodec::hex_decode(rest).map_err(eparse)?;
    staged.extend_from_slice(&bytes);
    Ok(format!("staged {} bytes", staged.len()))
}

/// Parse the `<command>` tail of `xpart`/`xapply` into a GQL command.
fn parse_command(text: &str) -> Result<GqlCommand, EngineError> {
    match gql::parse(text) {
        Ok(Some(Request::Gql(cmd))) => Ok(cmd),
        Ok(_) => Err(eparse(format!("{text:?} is not an algebra command"))),
        Err(e) => Err(eparse(e.0)),
    }
}

fn xpart(rest: &str, current: &str, shared: &Shared) -> Result<String, EngineError> {
    let (head, text) = rest
        .split_once(" :: ")
        .ok_or_else(|| eparse("usage: xpart <i> <k> :: <command>"))?;
    let mut it = head.split_whitespace();
    let (shard, shards) = match (it.next(), it.next(), it.next()) {
        (Some(i), Some(k), None) => (
            i.parse::<usize>().map_err(|_| eparse("bad shard index"))?,
            k.parse::<usize>().map_err(|_| eparse("bad shard count"))?,
        ),
        _ => return Err(eparse("usage: xpart <i> <k> :: <command>")),
    };
    if shards == 0 || shard >= shards {
        return Err(eparse(format!("shard {shard} of {shards} is out of range")));
    }
    let cmd = parse_command(text)?;
    let entry = live_entry(shared, current)?;
    let session = entry.read_with_deadline(shared.config.lock_timeout)?;
    let blob = compute_part(&session, &cmd, shard, shards)?;
    drop(session);
    Ok(xcodec::hex_encode(&blob))
}

/// Compute one shard's partial for a scatterable command. Read-only: the
/// partial kernels in `gea_exec::parts` are exactly the per-shard jobs of
/// the in-process sharded drivers.
fn compute_part(
    session: &GeaSession,
    cmd: &GqlCommand,
    shard: usize,
    shards: usize,
) -> Result<Vec<u8>, EngineError> {
    match cmd {
        GqlCommand::Mine {
            dataset,
            out,
            k_pct,
            min_records,
            batch,
        } => {
            let table = session.enum_table(dataset)?.clone();
            let tol = gea_core::mine::generate_metadata(&table, 0.10);
            let params = FascicleParams {
                min_compact_attrs: table.n_tags() * k_pct / 100,
                min_records: *min_records,
                batch_size: *batch,
            };
            let clusters = gea_exec::mine_clusters_part(
                &table,
                out,
                &Miner::Fascicles(params),
                Some(&tol),
                shard,
                shards,
            );
            Ok(xcodec::encode_clusters(&clusters))
        }
        GqlCommand::MineWith {
            dataset,
            out,
            algo,
            params,
        } if algo == "isa" => {
            let (backend, resolved) = resolve_backend(algo, params)?;
            let _ = backend;
            let table = session.enum_table(dataset)?.clone();
            let modules = gea_exec::isa_modules_part(
                &table,
                &IsaParams::from_resolved(&resolved),
                shard,
                shards,
            );
            Ok(xcodec::encode_modules(&modules))
        }
        GqlCommand::Populate {
            name: _,
            from: Some((sumy, dataset)),
        } => {
            let sumy_table = session.sumy(sumy)?;
            let table = session.enum_table(dataset)?;
            let hits = gea_exec::populate_hits_part(sumy_table, table, shard, shards);
            Ok(xcodec::encode_libs(&hits))
        }
        GqlCommand::Groups(fascicle) => {
            let inputs = session.control_group_inputs(fascicle, LibraryProperty::Cancer)?;
            let rows = [
                gea_exec::aggregate_rows_part(
                    &inputs.in_members.matrix,
                    &inputs.compact_ids,
                    shard,
                    shards,
                ),
                gea_exec::aggregate_rows_part(
                    &inputs.outside.matrix,
                    &inputs.compact_ids,
                    shard,
                    shards,
                ),
                gea_exec::aggregate_rows_part(
                    &inputs.contrast.matrix,
                    &inputs.compact_ids,
                    shard,
                    shards,
                ),
            ];
            Ok(xcodec::encode_rows3(&rows))
        }
        other => Err(EngineError::new(
            "EQUERY",
            format!("{} is not a scatterable command", other.verb()),
        )),
    }
}

fn resolve_backend(
    algo: &str,
    params: &[(String, gea_mine::ParamValue)],
) -> Result<(&'static dyn gea_mine::MineBackend, gea_mine::ResolvedParams), EngineError> {
    let backend = gea_mine::backend(algo).ok_or_else(|| {
        EngineError::new(
            "EQUERY",
            format!(
                "unknown mining backend {algo:?}; available: {}",
                gea_mine::backend_names()
            ),
        )
    })?;
    let resolved = gea_mine::resolve_params(backend.params(), params)
        .map_err(|e| EngineError::new("EQUERY", e))?;
    Ok((backend, resolved))
}

fn xapply(
    rest: &str,
    staged: &mut Vec<u8>,
    current: &str,
    shared: &Shared,
) -> Result<String, EngineError> {
    let (head, text) = rest
        .split_once(" :: ")
        .ok_or_else(|| eparse("usage: xapply <k> :: <command>"))?;
    let shards: usize = head.trim().parse().map_err(|_| eparse("bad shard count"))?;
    let cmd = parse_command(text)?;
    let bytes = std::mem::take(staged);
    let blobs = xcodec::unframe(&bytes).map_err(eparse)?;
    if blobs.len() != shards {
        return Err(eparse(format!(
            "expected {shards} staged partial(s), found {}",
            blobs.len()
        )));
    }
    let entry = live_entry(shared, current)?;
    let mut session = entry.write_with_deadline(shared.config.lock_timeout)?;
    let result = apply_merged(&mut session, &cmd, blobs);
    drop(session);
    enforce_budget(shared);
    result
}

/// Merge the per-shard partials in shard order and install the result via
/// the same session methods the engine's write path calls — reply text
/// and lineage identical by construction.
fn apply_merged(
    session: &mut GeaSession,
    cmd: &GqlCommand,
    blobs: Vec<Vec<u8>>,
) -> Result<String, EngineError> {
    match cmd {
        GqlCommand::Mine {
            dataset,
            out: _,
            k_pct,
            min_records,
            batch,
        } => {
            let parts = blobs
                .iter()
                .map(|b| xcodec::decode_clusters(b))
                .collect::<Result<Vec<_>, _>>()
                .map_err(eparse)?;
            let clusters = gea_exec::merge_shards(parts);
            let table = session.enum_table(dataset)?.clone();
            let params = FascicleParams {
                min_compact_attrs: table.n_tags() * k_pct / 100,
                min_records: *min_records,
                batch_size: *batch,
            };
            let names =
                session.install_mined_fascicles(dataset, 0.10, &params, &table, clusters)?;
            Ok(render_mined(session, &names, None))
        }
        GqlCommand::MineWith {
            dataset,
            out,
            algo,
            params,
        } if algo == "isa" => {
            let (backend, resolved) = resolve_backend(algo, params)?;
            let parts = blobs
                .iter()
                .map(|b| xcodec::decode_modules(b))
                .collect::<Result<Vec<_>, _>>()
                .map_err(eparse)?;
            let modules = gea_exec::merge_shards(parts);
            let table = session.enum_table(dataset)?.clone();
            let clusters = gea_exec::isa_clusters_from_modules(&table, out, modules);
            let mut lineage_params = vec![("tissue_dataset".to_string(), dataset.to_string())];
            lineage_params.extend(resolved.to_strings());
            let names = session.install_mined_clusters(
                dataset,
                "ISA",
                lineage_params,
                backend.name(),
                resolved.to_strings(),
                &table,
                clusters,
            )?;
            Ok(render_mined(session, &names, Some(algo)))
        }
        GqlCommand::Populate {
            name,
            from: Some((sumy, dataset)),
        } => {
            let parts = blobs
                .iter()
                .map(|b| xcodec::decode_libs(b))
                .collect::<Result<Vec<_>, _>>()
                .map_err(eparse)?;
            let merged = gea_exec::merge_shards(parts);
            session.populate_from_sumy_with(name, sumy, dataset, |_, _| merged)?;
            engine::render_populate_created(session, name, sumy, dataset)
        }
        GqlCommand::Groups(fascicle) => {
            let mut triple: [Vec<Vec<SumyRow>>; 3] = Default::default();
            for blob in &blobs {
                let [a, b, c] = xcodec::decode_rows3(blob).map_err(eparse)?;
                triple[0].push(a);
                triple[1].push(b);
                triple[2].push(c);
            }
            // The serial aggregator is called in-fascicle, outside,
            // contrast — the exact order the partials were encoded in.
            let mut merged: VecDeque<Vec<SumyRow>> =
                triple.into_iter().map(gea_exec::merge_shards).collect();
            let groups = session.form_control_groups_with(
                fascicle,
                LibraryProperty::Cancer,
                |name, _, _| {
                    SumyTable::new(name, merged.pop_front().expect("three aggregator calls"))
                },
            )?;
            Ok(format!(
                "SUMY tables created:\n  in fascicle:      {}\n  outside fascicle: {}\n  contrast (normal): {}",
                groups.in_fascicle, groups.outside_fascicle, groups.contrast
            ))
        }
        other => Err(EngineError::new(
            "EQUERY",
            format!("{} is not a scatterable command", other.verb()),
        )),
    }
}

/// The engine's mined-table reply, reproduced byte for byte.
fn render_mined(session: &GeaSession, names: &[String], algo: Option<&str>) -> String {
    let mut text = match algo {
        None => format!("{} fascicle(s):\n", names.len()),
        Some(a) => format!("{} cluster(s) via {a}:\n", names.len()),
    };
    for f in names {
        let r = session.fascicle(f).unwrap();
        let _ = writeln!(
            text,
            "  {f}: {} libraries, {} compact tags",
            r.members.len(),
            r.compact_tags.len()
        );
    }
    text
}

fn xsnapshot(rest: &str, shared: &Shared) -> Result<String, EngineError> {
    let name = single_token(rest, "usage: xsnapshot <session>")?;
    let entry = live_entry(shared, name)?;
    let session = entry.read_with_deadline(shared.config.lock_timeout)?;
    // Writers are excluded while the read guard is held, so the snapshot
    // is consistent with exactly this generation — the router's drift
    // check (`xgen` after shipping) mirrors the spill path's refusal.
    let generation = entry.generation();
    let (bytes, fingerprint) = persist::snapshot_to_bytes(&session)?;
    drop(session);
    Ok(format!(
        "{generation} {fingerprint}\n{}",
        xcodec::hex_encode(&bytes)
    ))
}

fn xadopt(rest: &str, staged: &mut Vec<u8>, shared: &Shared) -> Result<String, EngineError> {
    let mut it = rest.split_whitespace();
    let (name, fingerprint) = match (it.next(), it.next(), it.next()) {
        (Some(n), Some(fp), None) => (
            n,
            fp.parse::<u64>()
                .map_err(|_| eparse("bad snapshot fingerprint"))?,
        ),
        _ => return Err(eparse("usage: xadopt <session> <fingerprint>")),
    };
    let bytes = std::mem::take(staged);
    let mut session = persist::session_from_snapshot_bytes(&bytes, Some(fingerprint))?;
    session.set_exec_config(ExecConfig::with_threads(shared.config.threads));
    // A fresh adoption supersedes any spilled state under the name,
    // exactly like `open` does.
    if let Some(record) = shared.registry.take_spill(name) {
        persist::remove_spill(&record.path);
    }
    // No corpus fingerprint: an adopted replica carries derived state, so
    // its cached replies must stay private to the entry rather than share
    // the pristine corpus-wide namespace.
    if let Some(replaced) = shared.registry.open_with_fingerprint(name, session, None) {
        shared.cache.purge_entry(replaced.id());
    }
    enforce_budget(shared);
    Ok(format!("adopted session {name}"))
}

fn xgen(rest: &str, shared: &Shared) -> Result<String, EngineError> {
    let name = single_token(rest, "usage: xgen <session>")?;
    let entry = live_entry(shared, name)?;
    Ok(entry.generation().to_string())
}

fn single_token<'a>(rest: &'a str, usage: &str) -> Result<&'a str, EngineError> {
    let mut it = rest.split_whitespace();
    match (it.next(), it.next()) {
        (Some(tok), None) => Ok(tok),
        _ => Err(eparse(usage)),
    }
}
