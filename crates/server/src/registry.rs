//! Named shared sessions behind `Arc<RwLock<…>>`.
//!
//! The registry is the server's unit of sharing: several connections can
//! `use` the same named session, readers (`gap`, `topgap`, `show`, …)
//! proceed concurrently under the read lock, and mutators (`mine`,
//! `dataset`, `delete`, …) serialize behind the write lock. Locks are
//! acquired with a deadline so a long-running writer turns into a clean
//! `ERR ETIMEOUT` for waiting clients instead of an unbounded stall.

use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use std::time::{Duration, Instant};

use gea_core::session::GeaSession;

use crate::engine::EngineError;

/// A shared handle to one session.
pub type SharedSession = Arc<RwLock<GeaSession>>;

/// The named-session registry.
#[derive(Default)]
pub struct SessionRegistry {
    sessions: RwLock<HashMap<String, SharedSession>>,
}

impl SessionRegistry {
    /// Create an empty registry.
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    /// Install a session under `name`, replacing any previous one (the
    /// thesis GUI's "new session" semantics). Returns `true` if a session
    /// was replaced. Connections still attached to a replaced session keep
    /// their `Arc` and finish against the old state.
    pub fn open(&self, name: &str, session: GeaSession) -> bool {
        self.sessions
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), Arc::new(RwLock::new(session)))
            .is_some()
    }

    /// Look up a session by name.
    pub fn get(&self, name: &str) -> Option<SharedSession> {
        self.sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Drop a session. Returns `false` if no such session existed.
    pub fn close(&self, name: &str) -> bool {
        self.sessions
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name)
            .is_some()
    }

    /// Sorted session names with the number of connections sharing each
    /// (the registry's own reference excluded).
    pub fn list(&self) -> Vec<(String, usize)> {
        let map = self.sessions.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, usize)> = map
            .iter()
            .map(|(name, arc)| (name.clone(), Arc::strong_count(arc) - 1))
            .collect();
        out.sort();
        out
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

const LOCK_POLL: Duration = Duration::from_millis(2);

fn timeout_err(what: &str, timeout: Duration) -> EngineError {
    EngineError::new(
        "ETIMEOUT",
        format!(
            "could not acquire {what} lock within {} ms",
            timeout.as_millis()
        ),
    )
}

/// Acquire a read lock, polling until `timeout` elapses. A poisoned lock
/// (a panicking writer) is recovered: the algebra leaves the session
/// consistent between commands, so the state is still usable.
pub fn read_with_deadline(
    session: &RwLock<GeaSession>,
    timeout: Duration,
) -> Result<RwLockReadGuard<'_, GeaSession>, EngineError> {
    let deadline = Instant::now() + timeout;
    loop {
        match session.try_read() {
            Ok(guard) => return Ok(guard),
            Err(TryLockError::Poisoned(p)) => return Ok(p.into_inner()),
            Err(TryLockError::WouldBlock) => {
                if Instant::now() >= deadline {
                    return Err(timeout_err("read", timeout));
                }
                std::thread::sleep(LOCK_POLL);
            }
        }
    }
}

/// Acquire a write lock, polling until `timeout` elapses.
pub fn write_with_deadline(
    session: &RwLock<GeaSession>,
    timeout: Duration,
) -> Result<RwLockWriteGuard<'_, GeaSession>, EngineError> {
    let deadline = Instant::now() + timeout;
    loop {
        match session.try_write() {
            Ok(guard) => return Ok(guard),
            Err(TryLockError::Poisoned(p)) => return Ok(p.into_inner()),
            Err(TryLockError::WouldBlock) => {
                if Instant::now() >= deadline {
                    return Err(timeout_err("write", timeout));
                }
                std::thread::sleep(LOCK_POLL);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_sage::clean::CleaningConfig;
    use gea_sage::generate::{generate, GeneratorConfig};

    fn demo_session() -> GeaSession {
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        GeaSession::open(corpus, &CleaningConfig::default()).unwrap()
    }

    #[test]
    fn open_use_close_lifecycle() {
        let reg = SessionRegistry::new();
        assert!(reg.is_empty());
        assert!(!reg.open("a", demo_session()));
        assert!(reg.open("a", demo_session()), "second open replaces");
        assert_eq!(reg.len(), 1);
        let held = reg.get("a").expect("session a");
        assert_eq!(reg.list(), vec![("a".to_string(), 1)]);
        drop(held);
        assert_eq!(reg.list(), vec![("a".to_string(), 0)]);
        assert!(reg.get("b").is_none());
        assert!(reg.close("a"));
        assert!(!reg.close("a"));
    }

    #[test]
    fn read_lock_times_out_behind_a_writer() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        let shared = reg.get("a").unwrap();
        let guard = shared.write().unwrap();
        let err = match read_with_deadline(&shared, Duration::from_millis(10)) {
            Err(e) => e,
            Ok(_) => panic!("read lock acquired behind a writer"),
        };
        assert_eq!(err.code, "ETIMEOUT");
        drop(guard);
        assert!(read_with_deadline(&shared, Duration::from_millis(10)).is_ok());
        // Readers share.
        let r1 = read_with_deadline(&shared, Duration::from_millis(10)).unwrap();
        let r2 = read_with_deadline(&shared, Duration::from_millis(10)).unwrap();
        drop((r1, r2));
    }
}
