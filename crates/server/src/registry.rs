//! Named shared sessions behind generation-stamped entries.
//!
//! The registry is the server's unit of sharing: several connections can
//! `use` the same named session, readers (`gap`, `topgap`, `show`, …)
//! proceed concurrently, and mutators (`mine`, `dataset`, `delete`, …)
//! serialize behind an exclusive lock. Each entry carries a monotonically
//! increasing **generation**, bumped on every write-lock acquisition — the
//! invalidation signal for the response cache ([`crate::cache`]): a reply
//! computed under generation *g* is valid exactly as long as the entry's
//! generation is still *g*.
//!
//! Lock acquisition takes a deadline. Waiters park on condvar gates (no
//! polling): every guard release wakes exactly the class of waiters that
//! could now be admitted, and a waiter whose deadline passes first turns
//! into a clean `ERR ETIMEOUT` instead of an unbounded stall. The gate is
//! writer-preferring — new readers also wait behind a queued writer, so a
//! steady stream of overlapping reads cannot starve a mutator to its
//! deadline — and the handoff is deterministic: queued writers are
//! admitted in FIFO arrival order (a ticket queue, so a later writer can
//! never overtake an earlier one no matter how the scheduler wakes
//! threads), and a release wakes the writer queue before any parked
//! reader herd; readers flow again only once the queue drains.
//!
//! The registry also enforces an [`EvictionPolicy`]: per-session idle
//! timestamps and approximate memory accounting (via
//! [`gea_core::mem::ApproxMem`], refreshed on every write release) feed an
//! LRU eviction pass against a byte budget plus an idle-timeout sweep.
//! Evicted names leave a tombstone. A plain tombstone makes the next
//! request answer `EEVICTED` (re-open the session) rather than the
//! `ENOSESSION` a typo gets; a **spill** tombstone ([`SpillRecord`])
//! additionally remembers where the server persisted the session's full
//! state, so the next request can restore it transparently instead. The
//! spill commit protocol is two-phase: the server snapshots the session to
//! disk under a read guard, then calls [`SessionRegistry::evict_to_spill`],
//! which commits only if the entry is still the same one, unlocked, and at
//! the generation the snapshot saw — otherwise the stale snapshot is
//! abandoned and the session stays live.
//!
//! LOCK ORDER: registry map mutex -> entry gate mutex -> entry session RwLock; never two entries at once; atomics, cache, and metrics are lock-free and safe under any guard.
//!
//! The line above is canonical. `scripts/lint-invariants.sh` requires every
//! other lock-order comment in the server and router sources to quote it
//! verbatim, so the ordering documented at an acquisition site can never
//! drift from what this module actually implements. The map mutex is held
//! only long enough to clone the entry `Arc` (never across a gate wait),
//! and eviction re-takes the map *after* dropping the entry guard — the
//! two-phase spill commit exists precisely to make that safe.

use std::collections::{HashMap, VecDeque};
use std::ops::{Deref, DerefMut};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use gea_core::mem::ApproxMem;
use gea_core::session::GeaSession;

use crate::engine::EngineError;

/// Why a session left the registry without an explicit `close`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// No request touched the session within the idle timeout.
    IdleTimeout,
    /// The registry was over its memory budget and this was the least
    /// recently used session.
    OverBudget,
}

impl std::fmt::Display for EvictReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictReason::IdleTimeout => f.write_str("idle timeout exceeded"),
            EvictReason::OverBudget => f.write_str("session memory budget exceeded"),
        }
    }
}

/// Where an evicted session's state was persisted, recorded in the
/// tombstone so the next request against the name can restore it.
#[derive(Debug, Clone)]
pub struct SpillRecord {
    /// Why the policy chose this session.
    pub reason: EvictReason,
    /// Spill directory holding the session snapshot.
    pub path: PathBuf,
    /// Fingerprint of the snapshot body, verified on restore.
    pub fingerprint: u64,
}

/// What a name that is no longer live left behind.
#[derive(Debug, Clone)]
enum Tombstone {
    /// Evicted without persistence; the state is gone.
    Evicted(EvictReason),
    /// Evicted after a successful spill; the state is on disk.
    Spilled(SpillRecord),
}

/// The registry's eviction knobs. Both default to off.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvictionPolicy {
    /// Total approximate bytes the registry may hold across sessions;
    /// exceeding it evicts least-recently-used sessions until back under.
    pub session_budget: Option<u64>,
    /// Sessions idle longer than this are evicted by the sweep.
    pub idle_timeout: Option<Duration>,
}

impl EvictionPolicy {
    /// Whether the policy can ever evict anything.
    pub fn is_active(&self) -> bool {
        self.session_budget.is_some() || self.idle_timeout.is_some()
    }
}

/// Admission bookkeeping for one entry's lock: who is inside the
/// reader/writer critical sections. The inner `RwLock` is only ever
/// acquired by admitted threads, so it never blocks.
///
/// Admission is writer-preferring: new readers also hold off while any
/// writer is *queued*, so continuous overlapping read traffic cannot keep
/// `readers` above zero forever and starve a writer to its deadline.
/// Among writers the handoff is FIFO: each parked writer takes a ticket,
/// and only the queue's front ticket is admissible — so which writer wins
/// a release is decided by arrival order, not by which thread the
/// scheduler happens to wake first.
///
/// Writer preference is itself bounded: a continuous chain of queued
/// writers would otherwise park readers until their deadline. After
/// [`Gate::admit_every`] consecutive writer→writer handoffs made with
/// readers waiting, the release admits the *waiting reader cohort* (a
/// snapshot of `waiting_readers`, so late-arriving readers cannot extend
/// the break indefinitely) before the next queued writer runs.
struct Gate {
    readers: u32,
    writer: bool,
    /// Parked writers' tickets in arrival order; only the front is
    /// admissible. A writer that times out removes its own ticket.
    writer_queue: VecDeque<u64>,
    /// Ticket source for `writer_queue`.
    next_ticket: u64,
    /// Readers currently parked on `reader_turn`.
    waiting_readers: u32,
    /// Consecutive writer→writer handoffs made while readers were
    /// waiting; reset whenever a reader is admitted.
    writer_handoffs: u32,
    /// Remaining admissions in the current anti-starvation break: while
    /// nonzero, readers may enter despite queued writers (each admission
    /// or reader timeout consumes one), and queued writers hold off.
    reader_break: u32,
    /// The starvation bound K: the reader cohort is admitted after every
    /// K writer handoffs made over waiting readers.
    admit_every: u32,
}

/// Default starvation bound for [`Gate::admit_every`].
const DEFAULT_READER_ADMIT_EVERY: u32 = 4;

impl Default for Gate {
    fn default() -> Gate {
        Gate {
            readers: 0,
            writer: false,
            writer_queue: VecDeque::new(),
            next_ticket: 0,
            waiting_readers: 0,
            writer_handoffs: 0,
            reader_break: 0,
            admit_every: DEFAULT_READER_ADMIT_EVERY,
        }
    }
}

static NEXT_ENTRY_ID: AtomicU64 = AtomicU64::new(1);

/// One registered session: the data, its lock gate, and the stamps the
/// cache and the eviction policy read without locking the session.
pub struct SessionEntry {
    /// Unique per entry, never reused — cache keys carry it so a replaced
    /// or re-opened session under the same name can never serve another
    /// entry's replies.
    id: u64,
    gate: Mutex<Gate>,
    /// Parked writers wait here; signalled whenever the queue's front
    /// writer may have become admissible.
    writer_turn: Condvar,
    /// Parked readers wait here; signalled only once no writer is inside
    /// *and* the writer queue has drained — the deterministic handoff
    /// order is queued writers first, reader herds after.
    reader_turn: Condvar,
    data: RwLock<GeaSession>,
    /// Bumped on every write-lock acquisition.
    generation: AtomicU64,
    /// Refreshed on open and on every write release.
    approx_bytes: AtomicU64,
    last_used: Mutex<Instant>,
    /// Fingerprint of the corpus the session was opened over, when known.
    /// Lets the response cache share pure-read replies between pristine
    /// (generation-0) sessions opened over an identical corpus. `None`
    /// (restored or adopted sessions) simply opts the entry out of
    /// sharing; correctness never depends on it being set.
    corpus_fingerprint: Option<u64>,
}

/// A shared handle to one session entry.
pub type SharedSession = Arc<SessionEntry>;

impl SessionEntry {
    fn new(session: GeaSession) -> SessionEntry {
        SessionEntry::with_fingerprint(session, None)
    }

    fn with_fingerprint(session: GeaSession, corpus_fingerprint: Option<u64>) -> SessionEntry {
        let bytes = session.approx_bytes() as u64;
        SessionEntry {
            id: NEXT_ENTRY_ID.fetch_add(1, Ordering::Relaxed),
            gate: Mutex::new(Gate::default()),
            writer_turn: Condvar::new(),
            reader_turn: Condvar::new(),
            data: RwLock::new(session),
            generation: AtomicU64::new(0),
            approx_bytes: AtomicU64::new(bytes),
            last_used: Mutex::new(Instant::now()),
            corpus_fingerprint,
        }
    }

    /// The entry's unique id (a cache-key component).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Fingerprint of the corpus this session was opened over, if the
    /// opener computed one (see the field doc for what `None` means).
    pub fn corpus_fingerprint(&self) -> Option<u64> {
        self.corpus_fingerprint
    }

    /// Current generation: the number of write-lock acquisitions so far.
    /// Stable while any read guard is held (writers are excluded), so a
    /// reply computed under a read guard is correctly stamped by reading
    /// this after acquisition.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Approximate session footprint, as of the last write release.
    pub fn approx_bytes(&self) -> u64 {
        self.approx_bytes.load(Ordering::Relaxed)
    }

    /// How long since a request last acquired this entry's lock.
    pub fn idle_for(&self) -> Duration {
        self.last_used
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .elapsed()
    }

    /// Set the reader-starvation bound K for this entry: the waiting
    /// reader cohort is admitted after every K consecutive writer
    /// handoffs made over parked readers (default 4; clamped to at
    /// least 1).
    pub fn set_reader_admit_every(&self, k: u32) {
        self.gate
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .admit_every = k.max(1);
    }

    /// Whether a request currently holds the lock (either side).
    pub fn is_busy(&self) -> bool {
        let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.readers > 0 || gate.writer
    }

    /// Record request activity now (the idle sweep's input). Called on
    /// every lock acquisition, and by the server's cache-hit path — which
    /// serves replies without ever taking the session lock, so hits must
    /// refresh the stamp explicitly or the sweeper would evict a session
    /// that is actively queried from cache.
    pub(crate) fn touch(&self) {
        *self.last_used.lock().unwrap_or_else(|e| e.into_inner()) = Instant::now();
    }

    /// Acquire a shared read guard, parking on the gate's condvar until
    /// admitted or `timeout` elapses (`ETIMEOUT`). Readers yield to queued
    /// writers (see [`Gate`]). A poisoned inner lock (a panicking writer)
    /// is recovered: the algebra leaves the session consistent between
    /// commands, so the state is still usable.
    pub fn read_with_deadline(
        &self,
        timeout: Duration,
    ) -> Result<SessionReadGuard<'_>, EngineError> {
        let deadline = Instant::now() + timeout;
        let mut gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        let mut parked = false;
        while gate.writer || (!gate.writer_queue.is_empty() && gate.reader_break == 0) {
            let Some(left) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                if parked {
                    gate.waiting_readers = gate.waiting_readers.saturating_sub(1);
                    // A break slot reserved for this reader must not
                    // outlive it, or queued writers would stall on a
                    // break nobody is left to consume.
                    gate.reader_break = gate.reader_break.saturating_sub(1);
                }
                return Err(timeout_err("read", timeout));
            };
            if !parked {
                parked = true;
                gate.waiting_readers += 1;
            }
            gate = self
                .reader_turn
                .wait_timeout(gate, left)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        if parked {
            gate.waiting_readers = gate.waiting_readers.saturating_sub(1);
        }
        if gate.reader_break > 0 {
            gate.reader_break -= 1;
        }
        // A reader got through: any writer-handoff chain is broken.
        gate.writer_handoffs = 0;
        gate.readers += 1;
        let break_over = gate.reader_break == 0;
        drop(gate);
        if !break_over {
            // More cohort members may still be parked; keep waking them.
            self.reader_turn.notify_all();
        }
        self.touch();
        // Admitted: no writer is inside, so the inner lock cannot block.
        let inner = self.data.read().unwrap_or_else(|e| e.into_inner());
        Ok(SessionReadGuard {
            inner: Some(inner),
            entry: self,
        })
    }

    /// Acquire the exclusive write guard, parking until admitted or
    /// `timeout` elapses. Writers are admitted strictly in arrival order
    /// (the gate's ticket queue). Bumps the generation **at acquisition**,
    /// so any cached reply stamped with an earlier generation is invalid
    /// from this point on, before the writer mutates anything.
    pub fn write_with_deadline(
        &self,
        timeout: Duration,
    ) -> Result<SessionWriteGuard<'_>, EngineError> {
        let deadline = Instant::now() + timeout;
        let mut gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        let ticket = gate.next_ticket;
        gate.next_ticket += 1;
        gate.writer_queue.push_back(ticket);
        while gate.writer
            || gate.readers > 0
            || gate.reader_break > 0
            || gate.writer_queue.front() != Some(&ticket)
        {
            let Some(left) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                let was_front = gate.writer_queue.front() == Some(&ticket);
                gate.writer_queue.retain(|&t| t != ticket);
                let drained = gate.writer_queue.is_empty();
                drop(gate);
                if drained {
                    // Readers held off by this queued writer may be
                    // admissible again.
                    self.reader_turn.notify_all();
                } else if was_front {
                    // The queue has a new front writer; let it re-check.
                    self.writer_turn.notify_all();
                }
                return Err(timeout_err("write", timeout));
            };
            gate = self
                .writer_turn
                .wait_timeout(gate, left)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        let front = gate.writer_queue.pop_front();
        debug_assert_eq!(front, Some(ticket));
        gate.writer = true;
        drop(gate);
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.touch();
        let inner = self.data.write().unwrap_or_else(|e| e.into_inner());
        Ok(SessionWriteGuard {
            inner: Some(inner),
            entry: self,
        })
    }
}

fn timeout_err(what: &str, timeout: Duration) -> EngineError {
    EngineError::new(
        "ETIMEOUT",
        format!(
            "could not acquire {what} lock within {} ms",
            timeout.as_millis()
        ),
    )
}

/// A shared read guard; releasing it wakes gate waiters.
pub struct SessionReadGuard<'a> {
    inner: Option<RwLockReadGuard<'a, GeaSession>>,
    entry: &'a SessionEntry,
}

impl Deref for SessionReadGuard<'_> {
    type Target = GeaSession;

    fn deref(&self) -> &GeaSession {
        self.inner.as_ref().expect("guard live")
    }
}

impl Drop for SessionReadGuard<'_> {
    fn drop(&mut self) {
        drop(self.inner.take());
        let mut gate = self.entry.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.readers = gate.readers.saturating_sub(1);
        // Only a drained read side can admit anyone, and then only the
        // queue's front writer: readers never wait on other readers.
        let wake_writers = gate.readers == 0 && !gate.writer_queue.is_empty();
        drop(gate);
        if wake_writers {
            self.entry.writer_turn.notify_all();
        }
    }
}

/// The exclusive write guard; releasing it refreshes the entry's
/// approximate size and wakes gate waiters.
pub struct SessionWriteGuard<'a> {
    inner: Option<RwLockWriteGuard<'a, GeaSession>>,
    entry: &'a SessionEntry,
}

impl Deref for SessionWriteGuard<'_> {
    type Target = GeaSession;

    fn deref(&self) -> &GeaSession {
        self.inner.as_ref().expect("guard live")
    }
}

impl DerefMut for SessionWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut GeaSession {
        self.inner.as_mut().expect("guard live")
    }
}

impl Drop for SessionWriteGuard<'_> {
    fn drop(&mut self) {
        if let Some(guard) = self.inner.take() {
            let bytes = guard.approx_bytes() as u64;
            drop(guard);
            self.entry.approx_bytes.store(bytes, Ordering::Relaxed);
        }
        let mut gate = self.entry.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.writer = false;
        // Deterministic handoff: the writer queue is served before any
        // parked reader herd — but only up to the starvation bound. After
        // `admit_every` consecutive writer→writer handoffs made over
        // waiting readers, the waiting cohort is admitted first.
        let writers_waiting = !gate.writer_queue.is_empty();
        if writers_waiting && gate.waiting_readers > 0 {
            gate.writer_handoffs += 1;
            if gate.writer_handoffs >= gate.admit_every.max(1) {
                gate.writer_handoffs = 0;
                gate.reader_break = gate.waiting_readers;
                drop(gate);
                self.entry.reader_turn.notify_all();
                return;
            }
        } else {
            gate.writer_handoffs = 0;
        }
        drop(gate);
        if writers_waiting {
            self.entry.writer_turn.notify_all();
        } else {
            self.entry.reader_turn.notify_all();
        }
    }
}

/// One row of [`SessionRegistry::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// Registry name.
    pub name: String,
    /// Connections currently sharing the entry (the registry's own
    /// reference excluded).
    pub attached: usize,
    /// Current generation.
    pub generation: u64,
    /// Approximate footprint in bytes.
    pub approx_bytes: u64,
}

/// The result of a registry lookup.
pub enum Lookup {
    /// The session is live.
    Found(SharedSession),
    /// The session was evicted without persistence; re-open it.
    Evicted(EvictReason),
    /// The session was spilled to disk; restore it from the record.
    Spilled(SpillRecord),
    /// No such session was ever opened (or it was closed explicitly).
    Missing,
}

/// The outcome of [`SessionRegistry::adopt_restored`].
pub enum Adopt {
    /// The restored session was installed under a fresh entry.
    Installed(SharedSession),
    /// Another request restored (or re-opened) the name first; use that
    /// entry and discard the duplicate restoration.
    Existing(SharedSession),
    /// The spill tombstone is gone or superseded (the name was closed or
    /// replaced while the restore ran); the restoration must be dropped.
    Stale,
}

#[derive(Default)]
struct Inner {
    live: HashMap<String, SharedSession>,
    evicted: HashMap<String, Tombstone>,
}

/// The named-session registry.
#[derive(Default)]
pub struct SessionRegistry {
    inner: RwLock<Inner>,
}

impl SessionRegistry {
    /// Create an empty registry.
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    /// Install a session under `name`, replacing any previous one (the
    /// thesis GUI's "new session" semantics) and clearing any eviction
    /// tombstone. Returns the replaced entry, if any, so the caller can
    /// purge its cached replies. Connections still attached to a replaced
    /// session keep their `Arc` and finish against the old state.
    pub fn open(&self, name: &str, session: GeaSession) -> Option<SharedSession> {
        self.open_with_fingerprint(name, session, None)
    }

    /// [`SessionRegistry::open`], additionally stamping the entry with the
    /// corpus fingerprint so pristine twins can share cached replies.
    pub fn open_with_fingerprint(
        &self,
        name: &str,
        session: GeaSession,
        corpus_fingerprint: Option<u64>,
    ) -> Option<SharedSession> {
        let entry = Arc::new(SessionEntry::with_fingerprint(session, corpus_fingerprint));
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        inner.evicted.remove(name);
        inner.live.insert(name.to_string(), entry)
    }

    /// Look up a live session by name (eviction-blind; prefer
    /// [`SessionRegistry::lookup`] on request paths).
    pub fn get(&self, name: &str) -> Option<SharedSession> {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .live
            .get(name)
            .cloned()
    }

    /// Look up a session, distinguishing "evicted" and "spilled" from
    /// "never opened".
    pub fn lookup(&self, name: &str) -> Lookup {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        if let Some(arc) = inner.live.get(name) {
            return Lookup::Found(Arc::clone(arc));
        }
        match inner.evicted.get(name) {
            Some(Tombstone::Evicted(reason)) => Lookup::Evicted(*reason),
            Some(Tombstone::Spilled(record)) => Lookup::Spilled(record.clone()),
            None => Lookup::Missing,
        }
    }

    /// Drop a session, returning its entry (for cache purging). Clears an
    /// eviction tombstone even when no live session exists, so an evicted
    /// name can be `close`d without error.
    pub fn close_entry(&self, name: &str) -> Option<SharedSession> {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        inner.evicted.remove(name);
        inner.live.remove(name)
    }

    /// Drop a session. Returns `false` if no such session existed.
    pub fn close(&self, name: &str) -> bool {
        self.close_entry(name).is_some()
    }

    /// Sorted session rows: name, attachment count, generation, size.
    pub fn list(&self) -> Vec<SessionInfo> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<SessionInfo> = inner
            .live
            .iter()
            .map(|(name, arc)| SessionInfo {
                name: name.clone(),
                attached: Arc::strong_count(arc) - 1,
                generation: arc.generation(),
                approx_bytes: arc.approx_bytes(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .live
            .len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total approximate bytes across live sessions.
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .live
            .values()
            .map(|e| e.approx_bytes())
            .sum()
    }

    /// Run one eviction pass: the idle sweep, then the budget pass.
    /// Returns the evicted entries (name, entry, reason) so the caller
    /// can purge cached replies and count evictions.
    pub fn sweep(&self, policy: &EvictionPolicy) -> Vec<(String, SharedSession, EvictReason)> {
        let mut out = Vec::new();
        if let Some(idle) = policy.idle_timeout {
            out.extend(
                self.sweep_idle(idle)
                    .into_iter()
                    .map(|(n, e)| (n, e, EvictReason::IdleTimeout)),
            );
        }
        if let Some(budget) = policy.session_budget {
            out.extend(
                self.enforce_budget(budget)
                    .into_iter()
                    .map(|(n, e)| (n, e, EvictReason::OverBudget)),
            );
        }
        out
    }

    /// Evict every session idle longer than `timeout`. Sessions whose
    /// lock is currently held are skipped (a long mine is not idle).
    pub fn sweep_idle(&self, timeout: Duration) -> Vec<(String, SharedSession)> {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let victims: Vec<String> = inner
            .live
            .iter()
            .filter(|(_, e)| !e.is_busy() && e.idle_for() > timeout)
            .map(|(n, _)| n.clone())
            .collect();
        victims
            .into_iter()
            .filter_map(|name| {
                let entry = inner.live.remove(&name)?;
                inner
                    .evicted
                    .insert(name.clone(), Tombstone::Evicted(EvictReason::IdleTimeout));
                Some((name, entry))
            })
            .collect()
    }

    /// Evict least-recently-used sessions until the total approximate
    /// footprint is within `budget` (or nothing evictable remains).
    /// Busy sessions are skipped.
    pub fn enforce_budget(&self, budget: u64) -> Vec<(String, SharedSession)> {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        loop {
            let total: u64 = inner.live.values().map(|e| e.approx_bytes()).sum();
            if total <= budget {
                break;
            }
            // Oldest last_used among the non-busy entries.
            let Some(victim) = inner
                .live
                .iter()
                .filter(|(_, e)| !e.is_busy())
                .max_by_key(|(_, e)| e.idle_for())
                .map(|(n, _)| n.clone())
            else {
                break;
            };
            let entry = inner.live.remove(&victim).expect("victim is live");
            inner
                .evicted
                .insert(victim.clone(), Tombstone::Evicted(EvictReason::OverBudget));
            out.push((victim, entry));
        }
        out
    }

    /// A read-only eviction pass: which sessions the policy would evict
    /// right now, and why. The idle sweep's victims come first, then the
    /// budget pass's in LRU order (busy sessions skipped, victims already
    /// chosen by the idle pass not double-counted). Nothing is removed —
    /// the spill path snapshots each candidate to disk first and then
    /// commits individually via [`SessionRegistry::evict_to_spill`].
    pub fn eviction_candidates(
        &self,
        policy: &EvictionPolicy,
    ) -> Vec<(String, SharedSession, EvictReason)> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, SharedSession, EvictReason)> = Vec::new();
        if let Some(idle) = policy.idle_timeout {
            for (name, entry) in inner.live.iter() {
                if !entry.is_busy() && entry.idle_for() > idle {
                    out.push((name.clone(), Arc::clone(entry), EvictReason::IdleTimeout));
                }
            }
        }
        if let Some(budget) = policy.session_budget {
            let mut total: u64 = inner.live.values().map(|e| e.approx_bytes()).sum();
            for (_, entry, _) in &out {
                total = total.saturating_sub(entry.approx_bytes());
            }
            let mut rest: Vec<(Duration, &String, &SharedSession)> = inner
                .live
                .iter()
                .filter(|(name, entry)| {
                    !entry.is_busy() && !out.iter().any(|(chosen, _, _)| chosen == *name)
                })
                .map(|(name, entry)| (entry.idle_for(), name, entry))
                .collect();
            rest.sort_by_key(|r| std::cmp::Reverse(r.0)); // most idle first
            for (_, name, entry) in rest {
                if total <= budget {
                    break;
                }
                total = total.saturating_sub(entry.approx_bytes());
                out.push((name.clone(), Arc::clone(entry), EvictReason::OverBudget));
            }
        }
        out
    }

    /// Commit a spill: atomically replace the live entry with a spill
    /// tombstone, but only if `name` still maps to this exact entry, the
    /// entry is unlocked, and its generation still equals
    /// `expected_generation` (the generation the on-disk snapshot was
    /// taken under). Returns `false` — snapshot stale, session stays
    /// live — otherwise.
    pub fn evict_to_spill(
        &self,
        name: &str,
        entry: &SharedSession,
        expected_generation: u64,
        record: SpillRecord,
    ) -> bool {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let same = inner.live.get(name).is_some_and(|e| e.id() == entry.id());
        if !same || entry.is_busy() || entry.generation() != expected_generation {
            return false;
        }
        inner.live.remove(name);
        inner
            .evicted
            .insert(name.to_string(), Tombstone::Spilled(record));
        true
    }

    /// Evict one entry without persistence (the fallback when its spill
    /// failed), with the same still-same-entry and not-busy checks as
    /// [`SessionRegistry::evict_to_spill`].
    pub fn evict(&self, name: &str, entry: &SharedSession, reason: EvictReason) -> bool {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let same = inner.live.get(name).is_some_and(|e| e.id() == entry.id());
        if !same || entry.is_busy() {
            return false;
        }
        inner.live.remove(name);
        inner
            .evicted
            .insert(name.to_string(), Tombstone::Evicted(reason));
        true
    }

    /// Install a session restored from a spill under a **fresh** entry
    /// (new id, generation 0 — stale cached replies for the old entry can
    /// never match). Succeeds only while the name still carries the spill
    /// tombstone for `expected_path`; races are reported, not clobbered:
    /// a concurrent restore or re-open wins and the caller's copy is
    /// dropped.
    pub fn adopt_restored(&self, name: &str, session: GeaSession, expected_path: &Path) -> Adopt {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if let Some(arc) = inner.live.get(name) {
            return Adopt::Existing(Arc::clone(arc));
        }
        match inner.evicted.get(name) {
            Some(Tombstone::Spilled(record)) if record.path == expected_path => {
                inner.evicted.remove(name);
                let entry = Arc::new(SessionEntry::new(session));
                inner.live.insert(name.to_string(), Arc::clone(&entry));
                Adopt::Installed(entry)
            }
            _ => Adopt::Stale,
        }
    }

    /// Demote a spill tombstone to a plain eviction tombstone after its
    /// snapshot proved unreadable, so later requests answer `EEVICTED`
    /// instead of retrying the broken restore forever. No-op unless the
    /// name still carries the spill tombstone for `path`.
    pub fn downgrade_spill(&self, name: &str, path: &Path) {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if let Some(Tombstone::Spilled(record)) = inner.evicted.get(name) {
            if record.path == path {
                let reason = record.reason;
                inner
                    .evicted
                    .insert(name.to_string(), Tombstone::Evicted(reason));
            }
        }
    }

    /// Remove and return a spill tombstone's record, if `name` has one.
    /// The `open` and `close` paths use this to delete the now-dead spill
    /// directory from disk.
    pub fn take_spill(&self, name: &str) -> Option<SpillRecord> {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        match inner.evicted.get(name) {
            Some(Tombstone::Spilled(_)) => match inner.evicted.remove(name) {
                Some(Tombstone::Spilled(record)) => Some(record),
                _ => unreachable!("tombstone changed under the write lock"),
            },
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_sage::clean::CleaningConfig;
    use gea_sage::generate::{generate, GeneratorConfig};

    fn demo_session() -> GeaSession {
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        GeaSession::open(corpus, &CleaningConfig::default()).unwrap()
    }

    #[test]
    fn open_use_close_lifecycle() {
        let reg = SessionRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.open("a", demo_session()).is_none());
        let replaced = reg.open("a", demo_session());
        assert!(replaced.is_some(), "second open replaces");
        let first_id = replaced.unwrap().id();
        assert_ne!(
            reg.get("a").unwrap().id(),
            first_id,
            "entry ids are never reused"
        );
        assert_eq!(reg.len(), 1);
        let held = reg.get("a").expect("session a");
        let listed = reg.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "a");
        assert_eq!(listed[0].attached, 1);
        assert_eq!(listed[0].generation, 0);
        assert!(listed[0].approx_bytes > 0, "sized on open");
        drop(held);
        assert_eq!(reg.list()[0].attached, 0);
        assert!(reg.get("b").is_none());
        assert!(reg.close("a"));
        assert!(!reg.close("a"));
    }

    #[test]
    fn read_lock_times_out_behind_a_writer() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        let shared = reg.get("a").unwrap();
        let guard = shared.write_with_deadline(Duration::from_secs(1)).unwrap();
        let err = match shared.read_with_deadline(Duration::from_millis(10)) {
            Err(e) => e,
            Ok(_) => panic!("read lock acquired behind a writer"),
        };
        assert_eq!(err.code, "ETIMEOUT");
        drop(guard);
        assert!(shared.read_with_deadline(Duration::from_millis(10)).is_ok());
        // Readers share.
        let r1 = shared
            .read_with_deadline(Duration::from_millis(10))
            .unwrap();
        let r2 = shared
            .read_with_deadline(Duration::from_millis(10))
            .unwrap();
        drop((r1, r2));
    }

    #[test]
    fn contended_read_timeout_is_within_tolerance() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        let shared = reg.get("a").unwrap();
        let guard = shared.write_with_deadline(Duration::from_secs(5)).unwrap();
        let deadline = Duration::from_millis(60);
        let started = Instant::now();
        let err = match shared.read_with_deadline(deadline) {
            Err(e) => e,
            Ok(_) => panic!("read lock acquired behind a writer"),
        };
        let elapsed = started.elapsed();
        assert_eq!(err.code, "ETIMEOUT");
        // The condvar wait returns promptly at the deadline: not early,
        // and without polling slack (generous upper bound for CI noise).
        assert!(elapsed >= deadline, "returned early: {elapsed:?}");
        assert!(
            elapsed < deadline + Duration::from_millis(500),
            "deadline overshot: {elapsed:?}"
        );
        drop(guard);
    }

    #[test]
    fn parked_reader_wakes_on_write_release() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        let shared = reg.get("a").unwrap();
        let guard = shared.write_with_deadline(Duration::from_secs(1)).unwrap();
        let contender = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            contender
                .read_with_deadline(Duration::from_secs(10))
                .map(|_| ())
        });
        std::thread::sleep(Duration::from_millis(50));
        drop(guard);
        t.join()
            .expect("reader thread")
            .expect("reader admitted after write release");
    }

    #[test]
    fn queued_writer_holds_off_new_readers() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        let shared = reg.get("a").unwrap();
        let first_reader = shared.read_with_deadline(Duration::from_secs(1)).unwrap();
        let writer_entry = Arc::clone(&shared);
        let writer = std::thread::spawn(move || {
            writer_entry
                .write_with_deadline(Duration::from_secs(10))
                .map(|_| ())
        });
        // Let the writer park behind the held read guard.
        std::thread::sleep(Duration::from_millis(50));
        // A new reader waits behind the queued writer instead of extending
        // the read phase (which would starve the writer).
        let err = match shared.read_with_deadline(Duration::from_millis(50)) {
            Err(e) => e,
            Ok(_) => panic!("reader admitted past a queued writer"),
        };
        assert_eq!(err.code, "ETIMEOUT");
        drop(first_reader);
        writer
            .join()
            .expect("writer thread")
            .expect("writer admitted once readers drain");
        // With no writer queued, readers flow again.
        assert!(shared
            .read_with_deadline(Duration::from_millis(100))
            .is_ok());
    }

    #[test]
    fn writer_handoff_is_fifo_and_beats_reader_herds() {
        // Regression test for the old single-condvar gate: releasing a
        // guard woke *every* waiter, and whichever parked writer the
        // scheduler ran first won the lock — so under load writers were
        // admitted in scheduler order, not arrival order. Provoke that
        // race repeatedly: with the ticket queue the admission order is
        // deterministic (earlier writer first, reader herd strictly
        // after the queue drains) on every round.
        for round in 0..10 {
            let reg = SessionRegistry::new();
            reg.open("a", demo_session());
            let shared = reg.get("a").unwrap();
            let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
            let held = shared.read_with_deadline(Duration::from_secs(1)).unwrap();

            let mut threads = Vec::new();
            for writer in ["w1", "w2"] {
                let entry = Arc::clone(&shared);
                let order = Arc::clone(&order);
                threads.push(std::thread::spawn(move || {
                    let g = entry.write_with_deadline(Duration::from_secs(10)).unwrap();
                    order.lock().unwrap().push(writer.to_string());
                    std::thread::sleep(Duration::from_millis(2));
                    drop(g);
                }));
                // Park w1 before w2 takes its ticket, so arrival order is
                // the one the queue must preserve.
                std::thread::sleep(Duration::from_millis(30));
            }
            // A herd of readers arrives while both writers are queued.
            for r in 0..6 {
                let entry = Arc::clone(&shared);
                let order = Arc::clone(&order);
                threads.push(std::thread::spawn(move || {
                    let g = entry.read_with_deadline(Duration::from_secs(10)).unwrap();
                    order.lock().unwrap().push(format!("r{r}"));
                    drop(g);
                }));
            }
            std::thread::sleep(Duration::from_millis(30));
            drop(held);
            for t in threads {
                t.join().expect("waiter thread");
            }
            let order = order.lock().unwrap();
            assert_eq!(order.len(), 8);
            assert_eq!(
                &order[..2],
                ["w1", "w2"],
                "round {round}: writers admitted out of arrival order: {order:?}"
            );
            assert!(
                order[2..].iter().all(|o| o.starts_with('r')),
                "round {round}: a reader was admitted before the writer queue drained: {order:?}"
            );
        }
    }

    #[test]
    fn reader_cohort_is_admitted_after_k_writer_handoffs() {
        // The starvation bound on writer preference: with K = 2, a chain
        // of six queued writers must not run to completion over parked
        // readers — after two writer→writer handoffs the waiting reader
        // cohort is admitted, then the chain resumes.
        for round in 0..10 {
            let reg = SessionRegistry::new();
            reg.open("a", demo_session());
            let shared = reg.get("a").unwrap();
            shared.set_reader_admit_every(2);
            let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
            let held = shared.write_with_deadline(Duration::from_secs(1)).unwrap();

            let mut threads = Vec::new();
            for w in 1..=6 {
                let entry = Arc::clone(&shared);
                let order = Arc::clone(&order);
                threads.push(std::thread::spawn(move || {
                    let g = entry.write_with_deadline(Duration::from_secs(10)).unwrap();
                    order.lock().unwrap().push(format!("w{w}"));
                    std::thread::sleep(Duration::from_millis(2));
                    drop(g);
                }));
                std::thread::sleep(Duration::from_millis(20));
            }
            for r in 0..2 {
                let entry = Arc::clone(&shared);
                let order = Arc::clone(&order);
                threads.push(std::thread::spawn(move || {
                    let g = entry.read_with_deadline(Duration::from_secs(10)).unwrap();
                    order.lock().unwrap().push(format!("r{r}"));
                    drop(g);
                }));
            }
            // Let both readers park behind the queued writers.
            std::thread::sleep(Duration::from_millis(30));
            drop(held);
            for t in threads {
                t.join().expect("waiter thread");
            }
            let order = order.lock().unwrap();
            assert_eq!(order.len(), 8, "round {round}: {order:?}");
            // The held guard's release over parked readers is handoff #1,
            // w1's release is handoff #2 — so the cohort runs after w1.
            assert_eq!(order[0], "w1", "round {round}: {order:?}");
            assert!(
                order[1].starts_with('r') && order[2].starts_with('r'),
                "round {round}: reader cohort not admitted after 2 handoffs: {order:?}"
            );
            assert_eq!(
                &order[3..],
                ["w2", "w3", "w4", "w5", "w6"],
                "round {round}: writer chain did not resume in order: {order:?}"
            );
        }
    }

    #[test]
    fn timed_out_writer_readmits_readers() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        let shared = reg.get("a").unwrap();
        let held = shared.read_with_deadline(Duration::from_secs(1)).unwrap();
        let writer_entry = Arc::clone(&shared);
        let res = std::thread::spawn(move || {
            writer_entry
                .write_with_deadline(Duration::from_millis(50))
                .map(|_| ())
        })
        .join()
        .expect("writer thread");
        assert_eq!(res.unwrap_err().code, "ETIMEOUT");
        // The timed-out writer no longer counts as queued: a new reader is
        // admitted even while the first guard is still held.
        let r = shared
            .read_with_deadline(Duration::from_millis(100))
            .expect("reader admitted after writer gave up");
        drop((r, held));
    }

    #[test]
    fn generation_bumps_on_every_write_acquisition() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        let shared = reg.get("a").unwrap();
        assert_eq!(shared.generation(), 0);
        for expect in 1..=3 {
            let g = shared.write_with_deadline(Duration::from_secs(1)).unwrap();
            assert_eq!(shared.generation(), expect, "bumped at acquisition");
            drop(g);
            assert_eq!(shared.generation(), expect);
        }
        // Reads never bump.
        let r = shared.read_with_deadline(Duration::from_secs(1)).unwrap();
        drop(r);
        assert_eq!(shared.generation(), 3);
    }

    #[test]
    fn write_release_refreshes_size_estimate() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        let shared = reg.get("a").unwrap();
        let before = shared.approx_bytes();
        assert!(before > 0);
        {
            let mut g = shared.write_with_deadline(Duration::from_secs(1)).unwrap();
            g.create_tissue_dataset("Eb", &gea_sage::TissueType::Brain)
                .unwrap();
        }
        assert!(
            shared.approx_bytes() > before,
            "size not refreshed on write release"
        );
    }

    #[test]
    fn idle_sweep_evicts_and_leaves_a_tombstone() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            reg.sweep_idle(Duration::from_secs(60)).is_empty(),
            "fresh session survives a long timeout"
        );
        let evicted = reg.sweep_idle(Duration::from_millis(10));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, "a");
        assert!(reg.is_empty());
        assert!(matches!(
            reg.lookup("a"),
            Lookup::Evicted(EvictReason::IdleTimeout)
        ));
        assert!(matches!(reg.lookup("never-opened"), Lookup::Missing));
        // Re-opening clears the tombstone.
        reg.open("a", demo_session());
        assert!(matches!(reg.lookup("a"), Lookup::Found(_)));
    }

    #[test]
    fn idle_sweep_skips_busy_sessions() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        let shared = reg.get("a").unwrap();
        let guard = shared.write_with_deadline(Duration::from_secs(1)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            reg.sweep_idle(Duration::from_millis(1)).is_empty(),
            "a session holding its lock is not idle"
        );
        drop(guard);
    }

    #[test]
    fn budget_evicts_in_lru_order() {
        let reg = SessionRegistry::new();
        reg.open("old", demo_session());
        reg.open("mid", demo_session());
        reg.open("new", demo_session());
        // Touch in age order: `old` is least recently used, `new` most.
        for name in ["old", "mid", "new"] {
            std::thread::sleep(Duration::from_millis(15));
            drop(
                reg.get(name)
                    .unwrap()
                    .read_with_deadline(Duration::from_secs(1))
                    .unwrap(),
            );
        }
        let per_session = reg.total_bytes() / 3;
        // Budget for roughly one session: the two least recently used go.
        let evicted = reg.enforce_budget(per_session + per_session / 2);
        let names: Vec<&str> = evicted.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["old", "mid"], "LRU order violated");
        assert_eq!(reg.len(), 1);
        assert!(reg.get("new").is_some());
        assert!(matches!(
            reg.lookup("old"),
            Lookup::Evicted(EvictReason::OverBudget)
        ));
        // A generous budget evicts nothing further.
        assert!(reg.enforce_budget(u64::MAX).is_empty());
        // Closing an evicted name clears the tombstone without error.
        reg.close("mid");
        assert!(matches!(reg.lookup("mid"), Lookup::Missing));
    }

    fn spill_record(path: &str) -> SpillRecord {
        SpillRecord {
            reason: EvictReason::IdleTimeout,
            path: PathBuf::from(path),
            fingerprint: 7,
        }
    }

    #[test]
    fn spill_commit_verifies_entry_generation_and_busyness() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        let shared = reg.get("a").unwrap();
        let generation = shared.generation();

        // A write between snapshot and commit bumps the generation: the
        // stale snapshot must not commit and the session stays live.
        drop(shared.write_with_deadline(Duration::from_secs(1)).unwrap());
        assert!(!reg.evict_to_spill("a", &shared, generation, spill_record("/tmp/x")));
        assert!(matches!(reg.lookup("a"), Lookup::Found(_)));

        // A busy entry is never committed either.
        let generation = shared.generation();
        let guard = shared.read_with_deadline(Duration::from_secs(1)).unwrap();
        assert!(!reg.evict_to_spill("a", &shared, generation, spill_record("/tmp/x")));
        drop(guard);

        // Quiescent at the snapshot generation: the commit lands and the
        // lookup now reports the spill record.
        assert!(reg.evict_to_spill("a", &shared, generation, spill_record("/tmp/x")));
        match reg.lookup("a") {
            Lookup::Spilled(record) => {
                assert_eq!(record.path, Path::new("/tmp/x"));
                assert_eq!(record.fingerprint, 7);
            }
            _ => panic!("expected a spill tombstone"),
        }
        // Committing again against the gone entry is refused.
        assert!(!reg.evict_to_spill("a", &shared, generation, spill_record("/tmp/x")));
    }

    #[test]
    fn adopt_restored_races_and_downgrade() {
        let reg = SessionRegistry::new();
        reg.open("a", demo_session());
        let shared = reg.get("a").unwrap();
        let old_id = shared.id();
        assert!(reg.evict_to_spill("a", &shared, 0, spill_record("/tmp/a")));

        // Wrong path (a newer spill superseded the one we restored) is
        // stale; the tombstone is untouched.
        assert!(matches!(
            reg.adopt_restored("a", demo_session(), Path::new("/tmp/other")),
            Adopt::Stale
        ));
        // Matching path installs a *fresh* entry: new id, generation 0.
        let installed = match reg.adopt_restored("a", demo_session(), Path::new("/tmp/a")) {
            Adopt::Installed(arc) => arc,
            _ => panic!("expected install"),
        };
        assert_ne!(installed.id(), old_id, "restored entry ids are fresh");
        assert_eq!(installed.generation(), 0);
        // A second (racing) restore finds the live entry instead.
        match reg.adopt_restored("a", demo_session(), Path::new("/tmp/a")) {
            Adopt::Existing(arc) => assert_eq!(arc.id(), installed.id()),
            _ => panic!("expected the existing entry"),
        }

        // Downgrade demotes a spill tombstone to a plain eviction.
        reg.open("b", demo_session());
        let b = reg.get("b").unwrap();
        assert!(reg.evict_to_spill("b", &b, 0, spill_record("/tmp/b")));
        reg.downgrade_spill("b", Path::new("/elsewhere")); // wrong path: no-op
        assert!(matches!(reg.lookup("b"), Lookup::Spilled(_)));
        reg.downgrade_spill("b", Path::new("/tmp/b"));
        assert!(matches!(
            reg.lookup("b"),
            Lookup::Evicted(EvictReason::IdleTimeout)
        ));
        assert!(matches!(
            reg.adopt_restored("b", demo_session(), Path::new("/tmp/b")),
            Adopt::Stale
        ));

        // take_spill removes the record exactly once.
        reg.open("c", demo_session());
        let c = reg.get("c").unwrap();
        assert!(reg.evict_to_spill("c", &c, 0, spill_record("/tmp/c")));
        let rec = reg.take_spill("c").expect("spill record");
        assert_eq!(rec.path, Path::new("/tmp/c"));
        assert!(reg.take_spill("c").is_none());
        assert!(matches!(reg.lookup("c"), Lookup::Missing));
    }

    #[test]
    fn eviction_candidates_is_read_only_and_lru_ordered() {
        let reg = SessionRegistry::new();
        reg.open("old", demo_session());
        reg.open("new", demo_session());
        for name in ["old", "new"] {
            std::thread::sleep(Duration::from_millis(15));
            drop(
                reg.get(name)
                    .unwrap()
                    .read_with_deadline(Duration::from_secs(1))
                    .unwrap(),
            );
        }
        let per_session = reg.total_bytes() / 2;
        let policy = EvictionPolicy {
            session_budget: Some(per_session + per_session / 2),
            idle_timeout: None,
        };
        let candidates = reg.eviction_candidates(&policy);
        assert_eq!(candidates.len(), 1, "one eviction brings us under budget");
        assert_eq!(candidates[0].0, "old", "LRU first");
        assert_eq!(candidates[0].2, EvictReason::OverBudget);
        assert_eq!(reg.len(), 2, "candidates pass removes nothing");

        // An idle timeout marks both, and the budget pass does not then
        // double-count them.
        std::thread::sleep(Duration::from_millis(5));
        let policy = EvictionPolicy {
            session_budget: Some(per_session + per_session / 2),
            idle_timeout: Some(Duration::from_millis(1)),
        };
        let candidates = reg.eviction_candidates(&policy);
        assert_eq!(candidates.len(), 2);
        assert!(candidates
            .iter()
            .all(|(_, _, r)| *r == EvictReason::IdleTimeout));
    }
}
