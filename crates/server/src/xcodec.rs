//! Binary codecs for the scatter/gather (`x*`) backend verbs.
//!
//! A router scattering a macro operation across backends needs each
//! backend's *partial result* shipped back over the line protocol and
//! re-fed to the applying backend. Partials are encoded here as compact
//! little-endian binary (strings as length-prefixed UTF-8, `f64` via
//! `to_bits` so every float round-trips bit-exactly), hex-armored onto
//! the single-line wire. The router treats the blobs as opaque: its only
//! codec work is [`frame`]/[`unframe`] — concatenating per-shard blobs
//! in shard order with `u32` length prefixes — plus the hex armor.
//!
//! Bit-exact `f64` transport matters: the whole distributed design rests
//! on byte-identical replies, and a decimal round-trip of a standard
//! deviation would be the one place the bits could drift.

use std::collections::BTreeMap;

use gea_core::mine::MinedCluster;
use gea_core::sumy::{SumyRow, SumyTable};
use gea_core::Interval;
use gea_mine::isa::IsaModule;
use gea_sage::library::LibraryId;
use gea_sage::tag::{Tag, TagId};

/// A decode failure: the blob did not match the expected shape.
pub type CodecError = String;

/// Hex-armor bytes for single-line transport.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decode hex armor produced by [`hex_encode`].
pub fn hex_decode(s: &str) -> Result<Vec<u8>, CodecError> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex blob".to_string());
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = hex_nibble(pair[0])?;
        let lo = hex_nibble(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn hex_nibble(b: u8) -> Result<u8, CodecError> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        other => Err(format!("bad hex byte {other:#04x}")),
    }
}

/// Concatenate blobs in shard order, each prefixed with its `u32` length.
/// The frame order **is** the merge order: `xapply` decodes the blobs in
/// sequence and hands them to `gea_exec::merge_shards` unchanged.
pub fn frame(blobs: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = blobs.iter().map(|b| 4 + b.len()).sum();
    let mut out = Vec::with_capacity(total);
    for blob in blobs {
        put_u32(&mut out, blob.len() as u32);
        out.extend_from_slice(blob);
    }
    out
}

/// Split a [`frame`]d byte stream back into its blobs, in order.
pub fn unframe(bytes: &[u8]) -> Result<Vec<Vec<u8>>, CodecError> {
    let mut cur = Cur::new(bytes);
    let mut out = Vec::new();
    while !cur.done() {
        let len = cur.u32()? as usize;
        out.push(cur.take(len)?.to_vec());
    }
    Ok(out)
}

// --- primitive writers -----------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// --- primitive reader ------------------------------------------------------

struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Cur<'a> {
        Cur { bytes, pos: 0 }
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.bytes.len() - self.pos < n {
            return Err("truncated blob".to_string());
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.done() {
            Ok(())
        } else {
            Err("trailing bytes after blob".to_string())
        }
    }
}

// --- SUMY rows -------------------------------------------------------------

fn put_row(out: &mut Vec<u8>, row: &SumyRow) {
    put_u32(out, row.tag.code());
    put_u32(out, row.tag_no);
    put_f64(out, row.range.lo());
    put_f64(out, row.range.hi());
    put_f64(out, row.average);
    put_f64(out, row.std_dev);
    put_u32(out, row.extras.len() as u32);
    for (k, v) in &row.extras {
        put_str(out, k);
        put_f64(out, *v);
    }
}

fn read_row(cur: &mut Cur) -> Result<SumyRow, CodecError> {
    let tag = Tag::from_code(cur.u32()?).ok_or("tag code out of range")?;
    let tag_no = cur.u32()?;
    let lo = cur.f64()?;
    let hi = cur.f64()?;
    let range = Interval::new(lo, hi).map_err(|e| format!("bad interval: {e}"))?;
    let average = cur.f64()?;
    let std_dev = cur.f64()?;
    let n_extras = cur.u32()? as usize;
    let mut extras = BTreeMap::new();
    for _ in 0..n_extras {
        let k = cur.string()?;
        let v = cur.f64()?;
        extras.insert(k, v);
    }
    Ok(SumyRow {
        tag,
        tag_no,
        range,
        average,
        std_dev,
        extras,
    })
}

fn put_rows(out: &mut Vec<u8>, rows: &[SumyRow]) {
    put_u32(out, rows.len() as u32);
    for row in rows {
        put_row(out, row);
    }
}

fn read_rows(cur: &mut Cur) -> Result<Vec<SumyRow>, CodecError> {
    let n = cur.u32()? as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(read_row(cur)?);
    }
    Ok(rows)
}

/// Encode the three per-shard row vectors of a scattered `groups`
/// aggregation (in-fascicle, outside, contrast — in the exact order the
/// serial aggregator is called).
pub fn encode_rows3(rows: &[Vec<SumyRow>; 3]) -> Vec<u8> {
    let mut out = Vec::new();
    for part in rows {
        put_rows(&mut out, part);
    }
    out
}

/// Decode a blob produced by [`encode_rows3`].
pub fn decode_rows3(bytes: &[u8]) -> Result<[Vec<SumyRow>; 3], CodecError> {
    let mut cur = Cur::new(bytes);
    let a = read_rows(&mut cur)?;
    let b = read_rows(&mut cur)?;
    let c = read_rows(&mut cur)?;
    cur.finish()?;
    Ok([a, b, c])
}

// --- mined clusters --------------------------------------------------------

/// Encode a shard's materialized clusters (`mine` scatter partial).
pub fn encode_clusters(clusters: &[MinedCluster]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, clusters.len() as u32);
    for c in clusters {
        put_str(&mut out, &c.name);
        put_u32(&mut out, c.libraries.len() as u32);
        for l in &c.libraries {
            put_u32(&mut out, l.0);
        }
        put_u32(&mut out, c.compact_tags.len() as u32);
        for t in &c.compact_tags {
            put_u32(&mut out, t.0);
        }
        put_str(&mut out, &c.sumy.name);
        put_rows(&mut out, c.sumy.rows());
    }
    out
}

/// Decode a blob produced by [`encode_clusters`].
pub fn decode_clusters(bytes: &[u8]) -> Result<Vec<MinedCluster>, CodecError> {
    let mut cur = Cur::new(bytes);
    let n = cur.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = cur.string()?;
        let n_libs = cur.u32()? as usize;
        let mut libraries = Vec::with_capacity(n_libs);
        for _ in 0..n_libs {
            libraries.push(LibraryId(cur.u32()?));
        }
        let n_tags = cur.u32()? as usize;
        let mut compact_tags = Vec::with_capacity(n_tags);
        for _ in 0..n_tags {
            compact_tags.push(TagId(cur.u32()?));
        }
        let sumy_name = cur.string()?;
        let rows = read_rows(&mut cur)?;
        out.push(MinedCluster {
            name,
            libraries,
            compact_tags,
            sumy: SumyTable::new(&sumy_name, rows),
        });
    }
    cur.finish()?;
    Ok(out)
}

// --- ISA modules -----------------------------------------------------------

/// Encode a shard's converged-seed results (`mine … with isa` partial).
/// `None` seeds are kept in place: the gather-side dedupe consumes the
/// full seed-order list, exactly like the in-process driver.
pub fn encode_modules(modules: &[Option<IsaModule>]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, modules.len() as u32);
    for m in modules {
        match m {
            None => out.push(0),
            Some(m) => {
                out.push(1);
                put_u32(&mut out, m.libs.len() as u32);
                for &l in &m.libs {
                    put_u64(&mut out, l as u64);
                }
                put_u32(&mut out, m.tags.len() as u32);
                for &t in &m.tags {
                    put_u64(&mut out, t as u64);
                }
                out.push(m.converged as u8);
            }
        }
    }
    out
}

/// Decode a blob produced by [`encode_modules`].
pub fn decode_modules(bytes: &[u8]) -> Result<Vec<Option<IsaModule>>, CodecError> {
    let mut cur = Cur::new(bytes);
    let n = cur.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let flag = cur.take(1)?[0];
        if flag == 0 {
            out.push(None);
            continue;
        }
        let n_libs = cur.u32()? as usize;
        let mut libs = Vec::with_capacity(n_libs);
        for _ in 0..n_libs {
            libs.push(cur.u64()? as usize);
        }
        let n_tags = cur.u32()? as usize;
        let mut tags = Vec::with_capacity(n_tags);
        for _ in 0..n_tags {
            tags.push(cur.u64()? as usize);
        }
        let converged = cur.take(1)?[0] != 0;
        out.push(Some(IsaModule {
            libs,
            tags,
            converged,
        }));
    }
    cur.finish()?;
    Ok(out)
}

// --- populate hits ---------------------------------------------------------

/// Encode a shard's qualifying libraries (`populate` scatter partial).
pub fn encode_libs(libs: &[LibraryId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + libs.len() * 4);
    put_u32(&mut out, libs.len() as u32);
    for l in libs {
        put_u32(&mut out, l.0);
    }
    out
}

/// Decode a blob produced by [`encode_libs`].
pub fn decode_libs(bytes: &[u8]) -> Result<Vec<LibraryId>, CodecError> {
    let mut cur = Cur::new(bytes);
    let n = cur.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(LibraryId(cur.u32()?));
    }
    cur.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(tag_no: u32) -> SumyRow {
        let mut extras = BTreeMap::new();
        extras.insert("median".to_string(), 1.5);
        SumyRow {
            tag: Tag::from_code(tag_no).unwrap(),
            tag_no,
            range: Interval::new(-1.25, 7.5).unwrap(),
            average: 0.1 + f64::EPSILON,
            std_dev: 2.0f64.sqrt(),
            extras,
        }
    }

    #[test]
    fn hex_roundtrip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert!(hex_decode("0g").is_err());
        assert!(hex_decode("abc").is_err());
    }

    #[test]
    fn frame_roundtrip() {
        let blobs = vec![vec![1u8, 2, 3], Vec::new(), vec![9u8; 100]];
        assert_eq!(unframe(&frame(&blobs)).unwrap(), blobs);
        assert!(unframe(&[1, 2, 3]).is_err());
    }

    #[test]
    fn clusters_roundtrip_bit_exact() {
        let clusters = vec![MinedCluster {
            name: "brain_1".to_string(),
            libraries: vec![LibraryId(0), LibraryId(7)],
            compact_tags: vec![TagId(3), TagId(12)],
            sumy: SumyTable::new("brain_1", vec![row(3), row(12)]),
        }];
        let decoded = decode_clusters(&encode_clusters(&clusters)).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].name, clusters[0].name);
        assert_eq!(decoded[0].libraries, clusters[0].libraries);
        assert_eq!(decoded[0].compact_tags, clusters[0].compact_tags);
        assert_eq!(decoded[0].sumy, clusters[0].sumy);
        // std_dev must round-trip to the exact same bits.
        assert_eq!(
            decoded[0].sumy.rows()[0].std_dev.to_bits(),
            clusters[0].sumy.rows()[0].std_dev.to_bits()
        );
    }

    #[test]
    fn modules_and_libs_and_rows3_roundtrip() {
        let modules = vec![
            None,
            Some(IsaModule {
                libs: vec![1, 5, 9],
                tags: vec![0, 2],
                converged: true,
            }),
        ];
        let back = decode_modules(&encode_modules(&modules)).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back[0].is_none());
        let m = back[1].as_ref().unwrap();
        assert_eq!(
            (m.libs.clone(), m.tags.clone(), m.converged),
            (vec![1, 5, 9], vec![0, 2], true)
        );

        let libs = vec![LibraryId(3), LibraryId(11)];
        assert_eq!(decode_libs(&encode_libs(&libs)).unwrap(), libs);

        let rows3 = [vec![row(1)], Vec::new(), vec![row(2), row(4)]];
        let back3 = decode_rows3(&encode_rows3(&rows3)).unwrap();
        assert_eq!(back3, rows3);
        assert!(decode_rows3(&encode_libs(&libs)).is_err());
    }
}
