//! Wire framing for the GQL protocol.
//!
//! Replies are text. A success is `OK <k>` followed by exactly `k` payload
//! lines; a failure is the single line `ERR <CODE> <message>`. The count
//! prefix lets a client read a multi-line table without sentinels or
//! length-prefixed binary framing, and keeps the protocol readable over
//! `nc`.

use std::io::{self, BufRead, Write};

/// A decoded reply: `Ok(payload)` from an `OK` frame (payload lines
/// re-joined with `\n`), `Err((code, message))` from an `ERR` frame.
pub type Reply = Result<String, (String, String)>;

/// Write a success frame. The payload is split into lines; a trailing
/// newline does not produce an empty trailing payload line.
pub fn write_ok(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let lines: Vec<&str> = if payload.is_empty() {
        Vec::new()
    } else {
        payload.lines().collect()
    };
    writeln!(w, "OK {}", lines.len())?;
    for line in lines {
        writeln!(w, "{line}")?;
    }
    w.flush()
}

/// Write an error frame. Newlines in the message are flattened so the
/// frame stays a single line.
pub fn write_err(w: &mut impl Write, code: &str, message: &str) -> io::Result<()> {
    let flat = message.replace(['\n', '\r'], " ");
    writeln!(w, "ERR {code} {flat}")?;
    w.flush()
}

/// Read one reply frame from a buffered reader. Returns `None` on a clean
/// EOF before the status line.
pub fn read_reply(r: &mut impl BufRead) -> io::Result<Option<Reply>> {
    let mut status = String::new();
    if r.read_line(&mut status)? == 0 {
        return Ok(None);
    }
    let status = status.trim_end_matches(['\n', '\r']);
    if let Some(rest) = status.strip_prefix("OK ") {
        let k: usize = rest.parse().map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad OK count {rest:?}"))
        })?;
        let mut payload = String::new();
        for i in 0..k {
            let mut line = String::new();
            if r.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("reply truncated at payload line {i} of {k}"),
                ));
            }
            if i > 0 {
                payload.push('\n');
            }
            payload.push_str(line.trim_end_matches(['\n', '\r']));
        }
        Ok(Some(Ok(payload)))
    } else if let Some(rest) = status.strip_prefix("ERR ") {
        let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
        Ok(Some(Err((code.to_string(), message.to_string()))))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad status line {status:?}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip(frame: &[u8]) -> Reply {
        read_reply(&mut BufReader::new(frame)).unwrap().unwrap()
    }

    #[test]
    fn ok_frames_roundtrip() {
        let mut buf = Vec::new();
        write_ok(&mut buf, "one\ntwo\n").unwrap();
        assert_eq!(String::from_utf8_lossy(&buf), "OK 2\none\ntwo\n");
        assert_eq!(roundtrip(&buf), Ok("one\ntwo".to_string()));

        let mut empty = Vec::new();
        write_ok(&mut empty, "").unwrap();
        assert_eq!(String::from_utf8_lossy(&empty), "OK 0\n");
        assert_eq!(roundtrip(&empty), Ok(String::new()));
    }

    #[test]
    fn err_frames_stay_single_line() {
        let mut buf = Vec::new();
        write_err(&mut buf, "EPARSE", "bad\nmulti\nline").unwrap();
        assert_eq!(String::from_utf8_lossy(&buf).matches('\n').count(), 1);
        assert_eq!(
            roundtrip(&buf),
            Err(("EPARSE".to_string(), "bad multi line".to_string()))
        );
    }

    #[test]
    fn eof_and_garbage_are_distinguished() {
        assert!(read_reply(&mut BufReader::new(&b""[..])).unwrap().is_none());
        assert!(read_reply(&mut BufReader::new(&b"BOGUS\n"[..])).is_err());
        assert!(read_reply(&mut BufReader::new(&b"OK 3\nonly-one\n"[..])).is_err());
    }
}
