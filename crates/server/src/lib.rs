//! # gea-server — serving the GEA algebra to concurrent clients
//!
//! The thesis ships GEA as a single-user Swing GUI; this crate turns the
//! same [`GeaSession`](gea_core::session::GeaSession) algebra into a shared
//! network service, the way Simcluster and THEA serve enumeration-data
//! analysis to many analysts at once. It contains four layers, each usable
//! on its own:
//!
//! * [`gql`] — the **GEA Query Language**: a line-oriented textual grammar
//!   covering the session algebra (`dataset`, `mine`, `populate`, `gap`,
//!   `topgap`, `compare`, `select`/`project`, `lineage`, `delete`,
//!   `save`/`load`, `check`, …). One parser serves every front-end: the
//!   `gea-cli` REPL, scripts, and the wire protocol. The grammar (and the
//!   static analyzer behind the `check` verb) lives in the `gea-check`
//!   crate and is re-exported here for compatibility.
//! * [`engine`] — the **executor**: runs a parsed command against a
//!   session, split into a read path (`&GeaSession`, shareable under a read
//!   lock) and a write path (`&mut GeaSession`).
//! * [`server`] — the **runtime**: a `std::net` TCP listener, a bounded
//!   worker-thread pool, a [`registry`] of named generation-stamped
//!   sessions (readers share, writers exclude and bump the generation),
//!   condvar-parked per-request lock deadlines, a [`cache`] of read
//!   replies keyed on `(session, generation, command)`, a session
//!   eviction policy (idle timeout + LRU byte budget, surfacing
//!   `EEVICTED`), graceful shutdown, and [`metrics`] exposed by the
//!   `stats` command.
//! * [`client`] — a blocking **client library** (used by the `gea-client`
//!   binary and the integration tests).
//!
//! ## Wire protocol
//!
//! Requests are single lines. Every reply starts with a one-line status:
//!
//! ```text
//! -> open brain demo 42
//! <- OK 1
//! <- session open: 62256 -> 19683 tags after cleaning, 21 libraries
//! -> gap g1 missing1 missing2
//! <- ERR ENOTFOUND no SUMY table named "missing1"
//! ```
//!
//! `OK <k>` is followed by exactly `k` payload lines; `ERR <CODE> <msg>` is
//! always a single line, and the connection stays usable afterwards.

pub mod cache;
pub mod client;
pub mod engine;
pub use gea_check::gql;
pub use gea_check::{Effect, EffectTable, Scatter, VerbEffect};
pub mod metrics;
pub mod optexec;
pub mod registry;
pub mod server;
pub mod wire;
pub mod xcodec;
mod xverb;

pub use cache::{Admission, ResponseCache};
pub use client::GeaClient;
pub use engine::EngineError;
pub use gql::{GqlCommand, Request, SessionCtl};
pub use registry::{Adopt, EvictReason, EvictionPolicy, SessionRegistry, SpillRecord};
pub use server::{Server, ServerConfig, ServerHandle};
