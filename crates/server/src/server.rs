//! The server runtime: a `std::net` TCP listener feeding a bounded pool
//! of worker threads, each owning one client connection at a time.
//!
//! Every accepted connection is pushed onto a bounded queue; when the
//! queue and all workers are busy the connection is refused with a
//! one-line `ERR EBUSY` instead of queueing unboundedly. Commands run
//! against [`SessionRegistry`] sessions under read or write locks chosen
//! by [`GqlCommand::is_read`], with a per-request lock deadline so writers
//! stuck behind a long mine surface as `ERR ETIMEOUT`. Shutdown is
//! cooperative: the `shutdown` command (or [`ServerHandle::shutdown`])
//! raises a flag and wakes the acceptor; workers finish their current
//! request, then drain.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use gea_core::session::GeaSession;
use gea_sage::clean::CleaningConfig;
use gea_sage::generate::{generate, GeneratorConfig};

use crate::engine::{self, EngineError};
use crate::gql::{self, GqlCommand, Request, SessionCtl};
use crate::metrics::Metrics;
use crate::registry::{read_with_deadline, write_with_deadline, SessionRegistry};
use crate::wire;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:7687`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads — the concurrent-connection ceiling.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before new
    /// ones are refused with `EBUSY`.
    pub queue_depth: usize,
    /// Per-request lock-acquisition deadline.
    pub lock_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7687".to_string(),
            workers: 4,
            queue_depth: 16,
            lock_timeout: Duration::from_secs(30),
        }
    }
}

/// A handle for stopping a running server from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Request shutdown and wake the acceptor.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); a throwaway connection wakes it
        // so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    registry: Arc<SessionRegistry>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listener. No thread is spawned until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            config,
            registry: Arc::new(SessionRegistry::new()),
            metrics: Arc::new(Metrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// The session registry, for pre-opening sessions before serving.
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// A shutdown handle to stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.local_addr(),
        }
    }

    /// Serve until shutdown is requested. Blocks the calling thread; the
    /// worker pool is joined before returning.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            config,
            registry,
            metrics,
            shutdown,
        } = self;
        let workers = config.workers.max(1);
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            mpsc::sync_channel(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            pool.push(
                std::thread::Builder::new()
                    .name(format!("gea-worker-{i}"))
                    .spawn(move || loop {
                        let stream = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        let Ok(stream) = stream else { break };
                        metrics.connection_opened();
                        let _ = serve_connection(stream, &registry, &metrics, &config, &shutdown);
                        metrics.connection_closed();
                    })?,
            );
        }

        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    metrics.connection_rejected();
                    let _ =
                        wire::write_err(&mut stream, "EBUSY", "server saturated; try again later");
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// What the connection loop does after answering a request.
enum After {
    Continue,
    CloseConnection,
    StopServer,
}

/// How often a worker blocked on an idle connection re-checks the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(250);

/// Requests longer than this are malformed; the connection is dropped
/// rather than buffering without bound.
const MAX_LINE: usize = 64 * 1024;

fn serve_connection(
    mut stream: TcpStream,
    registry: &SessionRegistry,
    metrics: &Metrics,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    // Reads poll so an idle connection notices shutdown; lines are
    // reassembled here instead of BufReader because a timed-out read_line
    // could lose a partial line.
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Each connection is attached to one named session; `use` switches it.
    let mut current = "default".to_string();
    loop {
        let line = loop {
            if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = pending.drain(..=pos).collect();
                break String::from_utf8_lossy(&raw).into_owned();
            }
            if pending.len() > MAX_LINE {
                wire::write_err(&mut writer, "EPARSE", "request line too long")?;
                return Ok(());
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return Ok(()); // client hung up
                }
                Ok(n) => pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(()); // server draining; sever idle connection
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        let started = Instant::now();
        let req = match gql::parse(&line) {
            Ok(None) => continue,
            Ok(Some(req)) => req,
            Err(e) => {
                metrics.record("parse", started.elapsed(), false);
                wire::write_err(&mut writer, "EPARSE", &e.0)?;
                continue;
            }
        };
        let verb = req.verb();
        let (result, after) = answer(&req, &mut current, registry, metrics, config);
        metrics.record(verb, started.elapsed(), result.is_ok());
        match result {
            Ok(payload) => wire::write_ok(&mut writer, &payload)?,
            Err(e) => wire::write_err(&mut writer, e.code, &e.message)?,
        }
        match after {
            After::Continue => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(()); // draining: current request done, close
                }
            }
            After::CloseConnection => return Ok(()),
            After::StopServer => {
                shutdown.store(true, Ordering::SeqCst);
                // Wake the acceptor (it may be blocked in accept()).
                if let Ok(addr) = writer.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
        }
    }
}

/// Execute one request against the registry. Pure with respect to the
/// connection: all I/O stays in [`serve_connection`].
fn answer(
    req: &Request,
    current: &mut String,
    registry: &SessionRegistry,
    metrics: &Metrics,
    config: &ServerConfig,
) -> (Result<String, EngineError>, After) {
    let mut after = After::Continue;
    let result = match req {
        Request::Help => Ok(gql::HELP.to_string()),
        Request::Ping => Ok("pong".to_string()),
        Request::Stats => Ok(metrics.render()),
        Request::Quit => {
            after = After::CloseConnection;
            Ok("bye".to_string())
        }
        Request::Shutdown => {
            after = After::StopServer;
            Ok("shutting down".to_string())
        }
        Request::GenCorpus { seed, dir } => gen_corpus(*seed, dir),
        Request::Session(ctl) => session_ctl(ctl, current, registry),
        Request::Gql(cmd) => run_gql(cmd, current, registry, config),
    };
    (result, after)
}

fn gen_corpus(seed: u64, dir: &str) -> Result<String, EngineError> {
    let (corpus, _) = generate(&GeneratorConfig::demo(seed));
    gea_sage::io::write_corpus_dir(&corpus, std::path::Path::new(dir))?;
    Ok(format!("wrote {} libraries to {dir}", corpus.len()))
}

fn session_ctl(
    ctl: &SessionCtl,
    current: &mut String,
    registry: &SessionRegistry,
) -> Result<String, EngineError> {
    match ctl {
        SessionCtl::OpenDemo { name, seed } => {
            // Corpus generation and cleaning run outside any lock; only the
            // final registry insert synchronizes.
            let (corpus, _) = generate(&GeneratorConfig::demo(*seed));
            let session = GeaSession::open(corpus, &CleaningConfig::default())?;
            Ok(install(registry, current, name, session, None))
        }
        SessionCtl::OpenDir { name, dir } => {
            let corpus = gea_sage::io::read_corpus_dir(std::path::Path::new(dir))?;
            let session = GeaSession::open(corpus, &CleaningConfig::default())?;
            Ok(install(registry, current, name, session, Some(dir)))
        }
        SessionCtl::Use(name) => {
            if registry.get(name).is_none() {
                return Err(no_session(name));
            }
            *current = name.clone();
            Ok(format!("using session {name}"))
        }
        SessionCtl::List => {
            let sessions = registry.list();
            if sessions.is_empty() {
                return Ok("no sessions open".to_string());
            }
            Ok(sessions
                .iter()
                .map(|(name, refs)| format!("{name}: {refs} attached request(s)"))
                .collect::<Vec<_>>()
                .join("\n"))
        }
        SessionCtl::Close(name) => {
            if !registry.close(name) {
                return Err(no_session(name));
            }
            Ok(format!("closed session {name}"))
        }
    }
}

fn install(
    registry: &SessionRegistry,
    current: &mut String,
    name: &str,
    session: GeaSession,
    dir: Option<&str>,
) -> String {
    let report = session.cleaning_report().clone();
    let libs = session.base().n_libraries();
    registry.open(name, session);
    *current = name.to_string();
    let what = match dir {
        Some(dir) => format!("loaded {dir}"),
        None => "session open".to_string(),
    };
    format!(
        "{what}: {} -> {} tags after cleaning, {} libraries [session {name}]",
        report.raw_union_tags, report.kept_tags, libs
    )
}

fn no_session(name: &str) -> EngineError {
    EngineError::new(
        "ENOSESSION",
        format!("no session named {name:?}; run `open {name} demo <seed>` or `sessions`"),
    )
}

fn run_gql(
    cmd: &GqlCommand,
    current: &str,
    registry: &SessionRegistry,
    config: &ServerConfig,
) -> Result<String, EngineError> {
    let shared = registry.get(current).ok_or_else(|| no_session(current))?;
    if cmd.is_read() {
        let session = read_with_deadline(&shared, config.lock_timeout)?;
        engine::execute_read(&session, cmd)
    } else {
        let mut session = write_with_deadline(&shared, config.lock_timeout)?;
        engine::execute_write(&mut session, cmd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::GeaClient;

    fn spawn_server(
        config: ServerConfig,
    ) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("serve"));
        (addr, handle, join)
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 4,
            lock_timeout: Duration::from_secs(5),
        }
    }

    #[test]
    fn ping_errors_and_shutdown() {
        let (addr, handle, join) = spawn_server(test_config());
        let mut client = GeaClient::connect(addr).expect("connect");
        assert_eq!(client.request("ping").unwrap(), Ok("pong".to_string()));
        // Malformed commands answer ERR without dropping the connection.
        let err = client.request("mine").unwrap().unwrap_err();
        assert_eq!(err.0, "EPARSE");
        let err = client.request("tissues").unwrap().unwrap_err();
        assert_eq!(err.0, "ENOSESSION");
        // Still alive.
        assert!(client.request("help").unwrap().unwrap().contains("GQL"));
        let stats = client.request("stats").unwrap().unwrap();
        assert!(stats.contains("requests_total"), "{stats}");
        assert_eq!(
            client.request("shutdown").unwrap(),
            Ok("shutting down".to_string())
        );
        join.join().unwrap();
        assert!(handle.is_shutting_down());
    }

    #[test]
    fn handle_shutdown_stops_an_idle_server() {
        let (_, handle, join) = spawn_server(test_config());
        handle.shutdown();
        join.join().unwrap();
    }
}
