//! The server runtime: a `std::net` TCP listener feeding a bounded pool
//! of worker threads, each owning one client connection at a time.
//!
//! Every accepted connection is pushed onto a bounded queue; when the
//! queue and all workers are busy the connection is refused with a
//! one-line `ERR EBUSY` instead of queueing unboundedly. Commands run
//! against [`SessionRegistry`] sessions under read or write locks chosen
//! by [`GqlCommand::is_read`], with a per-request lock deadline so writers
//! stuck behind a long mine surface as `ERR ETIMEOUT`. Shutdown is
//! cooperative: the `shutdown` command (or [`ServerHandle::shutdown`])
//! raises a flag and wakes the acceptor; workers finish their current
//! request, then drain.
//!
//! Two policies layer on top of the request loop:
//!
//! * a [`ResponseCache`]: cacheable read replies are stored under
//!   `(session entry, generation, normalized command)` and served on a
//!   repeat without touching the session lock — any write bumps the
//!   generation, so stale replies structurally miss;
//! * an [`EvictionPolicy`]: a background sweeper (plus an eager check
//!   after every write) evicts sessions idle past a timeout or, in LRU
//!   order, whatever pushes the registry over its byte budget. Without a
//!   spill directory, evicted sessions answer `ERR EEVICTED` until
//!   re-opened. With `spill_dir` configured, eviction becomes a
//!   transparent slow path instead: the victim's full state is persisted
//!   (snapshot + fingerprint) before it is dropped, and the next request
//!   against the name restores it from disk under a fresh registry entry
//!   — the client never sees `EEVICTED` unless the spill file itself is
//!   unreadable.
//!
//! Every lock this module takes follows the registry's discipline
//! (canonical copy in [`crate::registry`], kept in sync by
//! `scripts/lint-invariants.sh`):
//!
//! LOCK ORDER: registry map mutex -> entry gate mutex -> entry session RwLock; never two entries at once; atomics, cache, and metrics are lock-free and safe under any guard.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use gea_core::persist;
use gea_core::session::{ExecConfig, GeaSession};
use gea_sage::clean::CleaningConfig;
use gea_sage::generate::{generate, GeneratorConfig};

use crate::cache::{Admission, CacheScope, ResponseCache};
use crate::engine::{self, EngineError};
use crate::gql::{self, GqlCommand, Request, SessionCtl};
use crate::metrics::Metrics;
use crate::optexec;
use crate::registry::{
    Adopt, EvictReason, EvictionPolicy, Lookup, SessionEntry, SessionRegistry, SharedSession,
    SpillRecord,
};
use crate::wire;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:7687`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads — the concurrent-connection ceiling.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before new
    /// ones are refused with `EBUSY`.
    pub queue_depth: usize,
    /// Per-request lock-acquisition deadline.
    pub lock_timeout: Duration,
    /// Response-cache budget in bytes of cached command + reply text;
    /// 0 disables the cache.
    pub cache_bytes: usize,
    /// Total approximate session bytes the registry may hold before
    /// least-recently-used sessions are evicted. `None` disables the
    /// budget.
    pub session_budget: Option<u64>,
    /// Sessions idle longer than this are evicted by the background
    /// sweeper. `None` disables the sweep.
    pub idle_timeout: Option<Duration>,
    /// Directory where evicted sessions are spilled for transparent
    /// restore on next use. `None` keeps the drop-and-`EEVICTED`
    /// behavior.
    pub spill_dir: Option<PathBuf>,
    /// Worker threads for sharded mine/populate/aggregate inside each
    /// session (`gea-exec`); 0 means available parallelism.
    pub threads: usize,
    /// Run the algebraic optimizer (`gea-opt`): fast-path rewrites on the
    /// write path and canonical (algebra-unified) response-cache keys.
    /// `false` executes and caches every command literally.
    pub optimize: bool,
    /// Static cost budget in `gea-check` abstract units: commands whose
    /// predicted cost exceeds it are rejected with `EBUDGET` before
    /// execution. `None` disables the gate.
    pub max_cost: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7687".to_string(),
            workers: 4,
            queue_depth: 16,
            lock_timeout: Duration::from_secs(30),
            cache_bytes: 8 * 1024 * 1024,
            session_budget: None,
            idle_timeout: None,
            spill_dir: None,
            threads: 0,
            optimize: true,
            max_cost: None,
        }
    }
}

impl ServerConfig {
    /// The registry eviction policy implied by this configuration.
    pub fn eviction_policy(&self) -> EvictionPolicy {
        EvictionPolicy {
            session_budget: self.session_budget,
            idle_timeout: self.idle_timeout,
        }
    }
}

/// A handle for stopping a running server from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Request shutdown and wake the acceptor.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); a throwaway connection wakes it
        // so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Everything a worker needs to answer requests; shared across the pool,
/// the eviction sweeper, and the backend-verb handler (`crate::xverb`).
pub(crate) struct Shared {
    pub(crate) registry: Arc<SessionRegistry>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) cache: ResponseCache,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: Arc<AtomicBool>,
}

impl Shared {
    /// Account evicted sessions: bump the metric and purge their cached
    /// replies.
    fn note_evicted(&self, evicted: &[(String, SharedSession, EvictReason)]) {
        if evicted.is_empty() {
            return;
        }
        self.metrics.sessions_evicted_add(evicted.len() as u64);
        for (_, entry, _) in evicted {
            self.cache.purge_entry(entry.id());
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    registry: Arc<SessionRegistry>,
    shutdown: Arc<AtomicBool>,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener. No thread is spawned until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let registry = Arc::new(SessionRegistry::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            registry: Arc::clone(&registry),
            metrics: Arc::new(Metrics::new()),
            cache: ResponseCache::new(config.cache_bytes),
            config,
            shutdown: Arc::clone(&shutdown),
        });
        Ok(Server {
            listener,
            registry,
            shutdown,
            shared,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// The session registry, for pre-opening sessions before serving.
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// A shutdown handle to stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.local_addr(),
        }
    }

    /// Serve until shutdown is requested. Blocks the calling thread; the
    /// worker pool (and the eviction sweeper, if any) is joined before
    /// returning.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            registry: _,
            shutdown,
            shared,
        } = self;
        let workers = shared.config.workers.max(1);
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            mpsc::sync_channel(shared.config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("gea-worker-{i}"))
                    .spawn(move || loop {
                        let stream = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        let Ok(stream) = stream else { break };
                        shared.metrics.connection_opened();
                        let _ = serve_connection(stream, &shared);
                        shared.metrics.connection_closed();
                    })?,
            );
        }
        if shared.config.eviction_policy().is_active() {
            let shared = Arc::clone(&shared);
            pool.push(
                std::thread::Builder::new()
                    .name("gea-sweeper".to_string())
                    .spawn(move || sweeper(&shared))?,
            );
        }

        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    shared.metrics.connection_rejected();
                    let _ =
                        wire::write_err(&mut stream, "EBUSY", "server saturated; try again later");
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        shutdown.store(true, Ordering::SeqCst);
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// How often the eviction sweeper wakes to check the shutdown flag and
/// run the policy.
const SWEEP_INTERVAL: Duration = Duration::from_millis(100);

fn sweeper(shared: &Shared) {
    let policy = shared.config.eviction_policy();
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(SWEEP_INTERVAL);
        evict_pass(shared, &policy);
    }
}

/// How long a spill waits for the victim's read lock before skipping it
/// this pass. A session the policy chose is quiescent; anything actively
/// locked is no longer a good victim anyway.
const SPILL_LOCK_TIMEOUT: Duration = Duration::from_millis(250);

/// Run one eviction pass under `policy`. Without a spill directory this
/// is the registry's destructive sweep; with one, each candidate is
/// persisted first and only then committed out of the registry.
fn evict_pass(shared: &Shared, policy: &EvictionPolicy) {
    if !policy.is_active() {
        return;
    }
    match &shared.config.spill_dir {
        None => {
            let evicted = shared.registry.sweep(policy);
            shared.note_evicted(&evicted);
        }
        Some(dir) => {
            for (name, entry, reason) in shared.registry.eviction_candidates(policy) {
                spill_one(shared, &name, &entry, reason, dir);
            }
        }
    }
}

/// Spill one eviction candidate: snapshot its state to disk under a read
/// guard (writers excluded, so the snapshot is consistent), then commit
/// the eviction only if the entry is still unlocked and at the snapshot's
/// generation — a request that raced in invalidates the snapshot, which
/// is abandoned and the session stays live. An unwritable spill falls
/// back to a plain (lossy) eviction so the memory budget still holds.
fn spill_one(
    shared: &Shared,
    name: &str,
    entry: &SharedSession,
    reason: EvictReason,
    dir: &std::path::Path,
) {
    let Ok(guard) = entry.read_with_deadline(SPILL_LOCK_TIMEOUT) else {
        return; // busy: no longer a victim, try again next pass
    };
    let generation = entry.generation();
    let spilled = persist::spill_session(&guard, dir, name);
    drop(guard);
    match spilled {
        Ok(spill) => {
            let record = SpillRecord {
                reason,
                path: spill.path,
                fingerprint: spill.fingerprint,
            };
            let path = record.path.clone();
            if shared
                .registry
                .evict_to_spill(name, entry, generation, record)
            {
                shared.metrics.session_spilled();
                shared.metrics.sessions_evicted_add(1);
                shared.cache.purge_entry(entry.id());
            } else {
                // A request slipped in between snapshot and commit: the
                // snapshot is stale; drop it and leave the session live.
                persist::remove_spill(&path);
            }
        }
        Err(_) => {
            shared.metrics.spill_error();
            if shared.registry.evict(name, entry, reason) {
                shared.metrics.sessions_evicted_add(1);
                shared.cache.purge_entry(entry.id());
            }
        }
    }
}

/// Restore a spilled session on first use: load and fingerprint-verify
/// the snapshot (outside any lock), then install it under a fresh entry.
/// Racing restores converge on whichever entry landed first. A snapshot
/// that fails verification demotes the tombstone to a plain eviction so
/// the name answers `EEVICTED` from then on instead of retrying.
fn restore_spilled(
    shared: &Shared,
    name: &str,
    record: &SpillRecord,
) -> Result<SharedSession, EngineError> {
    restore_spilled_inner(
        &shared.registry,
        &shared.metrics,
        shared.config.threads,
        name,
        record,
    )
}

/// The restore body, free of `Shared` so a detached prefetch thread (which
/// owns only `Arc` clones of the registry and metrics) can run it too.
fn restore_spilled_inner(
    registry: &SessionRegistry,
    metrics: &Metrics,
    threads: usize,
    name: &str,
    record: &SpillRecord,
) -> Result<SharedSession, EngineError> {
    match persist::load_session_verified(&record.path, record.fingerprint) {
        Ok(mut session) => {
            session.set_exec_config(ExecConfig::with_threads(threads));
            match registry.adopt_restored(name, session, &record.path) {
                Adopt::Installed(entry) => {
                    metrics.session_restored();
                    persist::remove_spill(&record.path);
                    Ok(entry)
                }
                Adopt::Existing(entry) => Ok(entry),
                Adopt::Stale => Err(no_session(name)),
            }
        }
        Err(_) => {
            // A concurrent restore may have adopted the session and deleted
            // the snapshot out from under this load. That is a success, not
            // a broken spill: converge on the live entry.
            if let Lookup::Found(entry) = registry.lookup(name) {
                return Ok(entry);
            }
            metrics.spill_error();
            registry.downgrade_spill(name, &record.path);
            Err(EngineError::new(
                "EEVICTED",
                format!(
                    "session {name:?} was evicted ({}) and its spill file is unreadable; re-open it",
                    record.reason
                ),
            ))
        }
    }
}

/// Kick a spilled session's restore onto a detached background thread so
/// `use` returns immediately; the first data request either finds the
/// restored entry already live or falls back to the inline restore path
/// (the two converge via [`SessionRegistry::adopt_restored`]). If the
/// thread cannot be spawned, restore inline instead.
fn prefetch_spilled(shared: &Shared, name: &str, record: &SpillRecord) -> Result<(), EngineError> {
    let registry = Arc::clone(&shared.registry);
    let metrics = Arc::clone(&shared.metrics);
    let threads = shared.config.threads;
    let name_owned = name.to_string();
    let record_owned = record.clone();
    let spawned = std::thread::Builder::new()
        .name("gea-prefetch".to_string())
        .spawn(move || {
            let _ = restore_spilled_inner(&registry, &metrics, threads, &name_owned, &record_owned);
        });
    match spawned {
        Ok(_) => {
            shared.metrics.session_prefetched();
            Ok(())
        }
        Err(_) => restore_spilled(shared, name, record).map(|_| ()),
    }
}

/// What the connection loop does after answering a request.
enum After {
    Continue,
    CloseConnection,
    StopServer,
}

/// How often a worker blocked on an idle connection re-checks the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(250);

/// Requests longer than this are malformed; the connection is dropped
/// rather than buffering without bound.
const MAX_LINE: usize = 64 * 1024;

fn serve_connection(mut stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    // Reads poll so an idle connection notices shutdown; lines are
    // reassembled here instead of BufReader because a timed-out read_line
    // could lose a partial line.
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Each connection is attached to one named session; `use` switches it.
    let mut current = "default".to_string();
    // Staging buffer for the backend verbs (`xstage`/`xapply`/`xadopt`):
    // per-connection, so concurrent routers never interleave payloads.
    let mut staged: Vec<u8> = Vec::new();
    loop {
        let line = loop {
            if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = pending.drain(..=pos).collect();
                break String::from_utf8_lossy(&raw).into_owned();
            }
            if pending.len() > MAX_LINE {
                wire::write_err(&mut writer, "EPARSE", "request line too long")?;
                return Ok(());
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return Ok(()); // client hung up
                }
                Ok(n) => pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(()); // server draining; sever idle connection
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        let started = Instant::now();
        // Backend verbs (the router's scatter/rebalance plane) bypass the
        // GQL grammar; `xprofiler` and friends fall through to it.
        if let Some((verb, result)) = crate::xverb::handle(&line, &mut staged, &current, shared) {
            shared
                .metrics
                .record(verb, started.elapsed(), result.is_ok());
            match result {
                Ok(payload) => wire::write_ok(&mut writer, &payload)?,
                Err(e) => wire::write_err(&mut writer, e.code, &e.message)?,
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            continue;
        }
        let req = match gql::parse(&line) {
            Ok(None) => continue,
            Ok(Some(req)) => req,
            Err(e) => {
                shared.metrics.record("parse", started.elapsed(), false);
                wire::write_err(&mut writer, "EPARSE", &e.0)?;
                continue;
            }
        };
        let verb = req.verb();
        let (result, after) = answer(&req, &mut current, shared);
        shared
            .metrics
            .record(verb, started.elapsed(), result.is_ok());
        match result {
            Ok(payload) => wire::write_ok(&mut writer, &payload)?,
            Err(e) => wire::write_err(&mut writer, e.code, &e.message)?,
        }
        match after {
            After::Continue => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(()); // draining: current request done, close
                }
            }
            After::CloseConnection => return Ok(()),
            After::StopServer => {
                shared.shutdown.store(true, Ordering::SeqCst);
                // Wake the acceptor (it may be blocked in accept()).
                if let Ok(addr) = writer.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
        }
    }
}

/// Execute one request against the registry. Pure with respect to the
/// connection: all I/O stays in [`serve_connection`].
fn answer(
    req: &Request,
    current: &mut String,
    shared: &Shared,
) -> (Result<String, EngineError>, After) {
    let mut after = After::Continue;
    let result = match req {
        Request::Help => Ok(gql::HELP.to_string()),
        Request::Ping => Ok("pong".to_string()),
        Request::Stats => {
            let mut out = shared.metrics.render();
            out.push_str(&shared.cache.render_gauges());
            Ok(out)
        }
        Request::Quit => {
            after = After::CloseConnection;
            Ok("bye".to_string())
        }
        Request::Shutdown => {
            after = After::StopServer;
            Ok("shutting down".to_string())
        }
        Request::GenCorpus { seed, dir } => gen_corpus(*seed, dir),
        Request::Session(ctl) => session_ctl(ctl, current, shared),
        Request::Gql(cmd) => run_gql(cmd, current, shared),
    };
    (result, after)
}

fn gen_corpus(seed: u64, dir: &str) -> Result<String, EngineError> {
    let (corpus, _) = generate(&GeneratorConfig::demo(seed));
    gea_sage::io::write_corpus_dir(&corpus, std::path::Path::new(dir))?;
    Ok(format!("wrote {} libraries to {dir}", corpus.len()))
}

fn session_ctl(
    ctl: &SessionCtl,
    current: &mut String,
    shared: &Shared,
) -> Result<String, EngineError> {
    match ctl {
        SessionCtl::OpenDemo { name, seed } => {
            // Corpus generation and cleaning run outside any lock; only the
            // final registry insert synchronizes.
            let (corpus, _) = generate(&GeneratorConfig::demo(*seed));
            let session = GeaSession::open(corpus, &CleaningConfig::default())?;
            Ok(install(shared, current, name, session, None))
        }
        SessionCtl::OpenDir { name, dir } => {
            let corpus = gea_sage::io::read_corpus_dir(std::path::Path::new(dir))?;
            let session = GeaSession::open(corpus, &CleaningConfig::default())?;
            Ok(install(shared, current, name, session, Some(dir)))
        }
        SessionCtl::Use(name) => {
            match shared.registry.lookup(name) {
                Lookup::Found(_) => {}
                // Don't make `use` pay for the restore: kick it onto a
                // background thread and let the first data request find
                // the session already live (or restore inline itself).
                Lookup::Spilled(record) => {
                    prefetch_spilled(shared, name, &record)?;
                }
                Lookup::Evicted(reason) => return Err(EngineError::evicted(name, reason)),
                Lookup::Missing => return Err(no_session(name)),
            }
            *current = name.clone();
            Ok(format!("using session {name}"))
        }
        SessionCtl::List => {
            let sessions = shared.registry.list();
            if sessions.is_empty() {
                return Ok("no sessions open".to_string());
            }
            Ok(sessions
                .iter()
                .map(|s| {
                    format!(
                        "{}: {} attached request(s), generation {}, ~{} bytes",
                        s.name, s.attached, s.generation, s.approx_bytes
                    )
                })
                .collect::<Vec<_>>()
                .join("\n"))
        }
        SessionCtl::Close(name) => {
            // `close` on a spilled name clears the tombstone and deletes
            // the now-dead snapshot from disk.
            if let Some(record) = shared.registry.take_spill(name) {
                persist::remove_spill(&record.path);
                return Ok(format!("cleared spilled session {name}"));
            }
            let was_evicted = matches!(shared.registry.lookup(name), Lookup::Evicted(_));
            match shared.registry.close_entry(name) {
                Some(entry) => {
                    shared.cache.purge_entry(entry.id());
                    Ok(format!("closed session {name}"))
                }
                // `close` on an evicted name clears the tombstone.
                None if was_evicted => Ok(format!("cleared evicted session {name}")),
                None => Err(no_session(name)),
            }
        }
    }
}

fn install(
    shared: &Shared,
    current: &mut String,
    name: &str,
    mut session: GeaSession,
    dir: Option<&str>,
) -> String {
    session.set_exec_config(ExecConfig::with_threads(shared.config.threads));
    // Stamp the entry with its corpus fingerprint so pristine twins
    // (same corpus, no writes yet) can share pure-read cache slots.
    let fingerprint = persist::corpus_fingerprint(&session).ok();
    let report = session.cleaning_report().clone();
    let libs = session.base().n_libraries();
    // A fresh open supersedes any spilled state under the name; delete
    // the snapshot so a later eviction can't resurrect stale data.
    if let Some(record) = shared.registry.take_spill(name) {
        persist::remove_spill(&record.path);
    }
    if let Some(replaced) = shared
        .registry
        .open_with_fingerprint(name, session, fingerprint)
    {
        shared.cache.purge_entry(replaced.id());
    }
    *current = name.to_string();
    // A newly opened session may immediately push the registry over its
    // budget; enforce eagerly so the LRU victim surfaces EEVICTED on its
    // next use rather than whenever the sweeper gets around to it.
    enforce_budget(shared);
    let what = match dir {
        Some(dir) => format!("loaded {dir}"),
        None => "session open".to_string(),
    };
    format!(
        "{what}: {} -> {} tags after cleaning, {} libraries [session {name}]",
        report.raw_union_tags, report.kept_tags, libs
    )
}

pub(crate) fn enforce_budget(shared: &Shared) {
    let policy = EvictionPolicy {
        session_budget: shared.config.session_budget,
        idle_timeout: None,
    };
    evict_pass(shared, &policy);
}

fn no_session(name: &str) -> EngineError {
    EngineError::new(
        "ENOSESSION",
        format!("no session named {name:?}; run `open {name} demo <seed>` or `sessions`"),
    )
}

/// Which cache namespace a reply computed against `entry` at `generation`
/// lives in. A *pristine* session (generation 0 — no write lock was ever
/// acquired, so its state is exactly as opened) with a known corpus
/// fingerprint shares the corpus-wide namespace with its twins; anything
/// else stays private to the entry.
fn cache_scope(entry: &SessionEntry, generation: u64) -> CacheScope {
    match entry.corpus_fingerprint() {
        Some(fp) if generation == 0 => CacheScope::Corpus(fp),
        _ => CacheScope::Entry(entry.id()),
    }
}

/// Resolve a session name to its live entry, transparently restoring a
/// spilled session; shared by the GQL path and the backend verbs.
pub(crate) fn live_entry(shared: &Shared, name: &str) -> Result<SharedSession, EngineError> {
    match shared.registry.lookup(name) {
        Lookup::Found(entry) => Ok(entry),
        // The transparent slow path: a spilled session is restored from
        // disk and the request proceeds against the fresh entry.
        Lookup::Spilled(record) => restore_spilled(shared, name, &record),
        Lookup::Evicted(reason) => Err(EngineError::evicted(name, reason)),
        Lookup::Missing => Err(no_session(name)),
    }
}

/// The `--max-cost` admission gate: predict the command's cost against
/// the session's *live* cardinalities (`gea-check`'s abstract cost
/// domain) and reject statically-over-budget work with `EBUDGET` before
/// any of it runs. Runs under the session lock so the seed is a
/// consistent snapshot; cache hits bypass the gate — a cached reply
/// costs nothing to serve. The coefficients are the model's built-in
/// defaults, never host-local bench calibration, so identical replicas
/// reject identically.
fn enforce_max_cost(
    shared: &Shared,
    session: &gea_core::session::GeaSession,
    cmd: &GqlCommand,
) -> Result<(), EngineError> {
    let Some(max) = shared.config.max_cost else {
        return Ok(());
    };
    let seed = gea_check::CostSeed::from_session(session);
    let model = gea_check::CostModel::default_coefficients();
    let report = gea_check::cost_pipeline(&model, &seed, std::slice::from_ref(cmd));
    if report.total > max {
        shared.metrics.budget_rejected();
        return Err(EngineError::new(
            "EBUDGET",
            format!(
                "predicted cost {} units exceeds --max-cost {max}",
                report.total
            ),
        ));
    }
    Ok(())
}

fn run_gql(cmd: &GqlCommand, current: &str, shared: &Shared) -> Result<String, EngineError> {
    let entry = live_entry(shared, current)?;
    if cmd.is_read() {
        // The cache key is the command's *canonical* spelling. With the
        // optimizer on, canonicalization runs through gea-opt, so
        // algebraically-equal commands (whose replies the rule audit
        // proves byte-identical) unify onto one slot.
        let key = cmd.is_cacheable().then(|| {
            if shared.config.optimize {
                let key = gea_opt::cache_key(cmd);
                if key != cmd.canonical() {
                    shared.metrics.opt_key_unified();
                }
                key
            } else {
                cmd.canonical()
            }
        });
        if let Some(key) = &key {
            // The hit path never touches the session lock: the reply was
            // computed under this generation, and serving it is
            // linearized at the instant of the generation load.
            let generation = entry.generation();
            if let Some(reply) = shared
                .cache
                .get(cache_scope(&entry, generation), generation, key)
            {
                // A hit is still session activity: refresh the idle stamp
                // here, since this path never acquires the session lock.
                entry.touch();
                shared.metrics.cache_hit();
                return Ok(reply);
            }
            shared.metrics.cache_miss();
        }
        let session = entry.read_with_deadline(shared.config.lock_timeout)?;
        enforce_max_cost(shared, &session, cmd)?;
        // Writers are excluded while the read guard is held, so this
        // generation is the one the reply is computed under.
        let generation = entry.generation();
        let result = engine::execute_read(&session, cmd);
        drop(session);
        if let (Some(key), Ok(reply)) = (key, &result) {
            match shared.cache.insert(
                cache_scope(&entry, generation),
                generation,
                key,
                reply.clone(),
            ) {
                Admission::Stored { evicted } => shared.metrics.cache_evictions_add(evicted),
                Admission::Rejected => shared.metrics.cache_rejected(),
                Admission::Disabled => {}
            }
        }
        result
    } else {
        // Single-command rewrite: the wire protocol carries one command
        // per request, so only gea-opt's non-fusing rules can fire here.
        let rewritten = shared
            .config
            .optimize
            .then(|| gea_opt::rewrite_command(0, cmd))
            .flatten();
        let mut session = entry.write_with_deadline(shared.config.lock_timeout)?;
        enforce_max_cost(shared, &session, cmd)?;
        let result = match &rewritten {
            Some((step, _)) => {
                shared.metrics.opt_rewrite();
                optexec::run_rewritten(&mut session, step)
            }
            None => engine::execute_write(&mut session, cmd),
        };
        // Drain while still holding the guard so a concurrent writer's
        // events are never attributed to this request.
        let events = session.drain_exec_events();
        // Release before enforcing: the guard's drop refreshes the
        // entry's size estimate with whatever this write grew it to.
        drop(session);
        for ev in events {
            shared
                .metrics
                .exec_op(ev.op, ev.shards as u64, ev.wall_us, ev.busy_us);
        }
        enforce_budget(shared);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::GeaClient;

    fn spawn_server(
        config: ServerConfig,
    ) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("serve"));
        (addr, handle, join)
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 4,
            lock_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn ping_errors_and_shutdown() {
        let (addr, handle, join) = spawn_server(test_config());
        let mut client = GeaClient::connect(addr).expect("connect");
        assert_eq!(client.request("ping").unwrap(), Ok("pong".to_string()));
        // Malformed commands answer ERR without dropping the connection.
        let err = client.request("mine").unwrap().unwrap_err();
        assert_eq!(err.0, "EPARSE");
        let err = client.request("tissues").unwrap().unwrap_err();
        assert_eq!(err.0, "ENOSESSION");
        // Still alive.
        assert!(client.request("help").unwrap().unwrap().contains("GQL"));
        let stats = client.request("stats").unwrap().unwrap();
        assert!(stats.contains("requests_total"), "{stats}");
        assert!(stats.contains("cache_entries"), "{stats}");
        assert_eq!(
            client.request("shutdown").unwrap(),
            Ok("shutting down".to_string())
        );
        join.join().unwrap();
        assert!(handle.is_shutting_down());
    }

    #[test]
    fn handle_shutdown_stops_an_idle_server() {
        let (_, handle, join) = spawn_server(test_config());
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn evicted_session_answers_eevicted_until_reopened() {
        let mut config = test_config();
        // Any real session dwarfs a 1-byte budget, so the first write (or
        // open) evicts it.
        config.session_budget = Some(1);
        let (addr, handle, join) = spawn_server(config);
        let mut client = GeaClient::connect(addr).expect("connect");
        client.expect_ok("open tiny demo 42").expect("open");
        let err = client.request("tissues").unwrap().unwrap_err();
        assert_eq!(err.0, "EEVICTED", "{err:?}");
        assert!(err.1.contains("budget"), "{err:?}");
        // `use` of the evicted name also reports eviction, not absence.
        let err = client.request("use tiny").unwrap().unwrap_err();
        assert_eq!(err.0, "EEVICTED");
        // Closing the evicted name clears the tombstone...
        let msg = client.expect_ok("close tiny").unwrap();
        assert!(msg.contains("cleared"), "{msg}");
        let err = client.request("use tiny").unwrap().unwrap_err();
        assert_eq!(err.0, "ENOSESSION");
        let stats = client.expect_ok("stats").unwrap();
        assert!(!stats.contains("sessions_evicted 0"), "{stats}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn cache_hits_keep_a_session_alive_under_the_idle_sweep() {
        let mut config = test_config();
        config.idle_timeout = Some(Duration::from_millis(200));
        let (addr, handle, join) = spawn_server(config);
        let mut client = GeaClient::connect(addr).expect("connect");
        client.expect_ok("open hot demo 42").expect("open");
        client.expect_ok("lineage").expect("prime the cache");
        // Hammer the same cacheable read well past the idle timeout: every
        // reply after the first comes from the cache without touching the
        // session lock, and each hit must still count as activity — the
        // sweeper would otherwise evict a session that is actively queried.
        let started = Instant::now();
        while started.elapsed() < Duration::from_millis(700) {
            client.expect_ok("lineage").expect("cache-served read");
            std::thread::sleep(Duration::from_millis(40));
        }
        let stats = client.expect_ok("stats").unwrap();
        assert!(!stats.contains("cache_hits 0\n"), "{stats}");
        assert!(stats.contains("sessions_evicted 0"), "{stats}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn max_cost_rejects_over_budget_commands_with_ebudget() {
        let mut config = test_config();
        // A demo corpus has a few dozen libraries, so `mine` (cost ~
        // libraries x batch x weight) blows a 100-unit budget while
        // `lineage` (cost 1) stays under it.
        config.max_cost = Some(100);
        let (addr, handle, join) = spawn_server(config);
        let mut client = GeaClient::connect(addr).expect("connect");
        client.expect_ok("open tiny demo 42").expect("open");
        client
            .expect_ok("dataset E brain")
            .expect("cheap write runs");
        client.expect_ok("lineage").expect("cheap read runs");
        let err = client.request("mine E f 50 3 6").unwrap().unwrap_err();
        assert_eq!(err.0, "EBUDGET", "{err:?}");
        // The rejection names the predicted cost and the configured cap.
        assert!(err.1.contains("predicted cost"), "{err:?}");
        assert!(err.1.contains("--max-cost 100"), "{err:?}");
        // Nothing executed: the session still has no fascicles…
        let err2 = client.request("purity f_1").unwrap().unwrap_err();
        assert_ne!(err2.0, "EBUDGET", "purity itself is cheap: {err2:?}");
        // …and the gate's counter ticked.
        let stats = client.expect_ok("stats").unwrap();
        assert!(stats.contains("budget_rejected 1"), "{stats}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn idle_sweeper_evicts_between_requests() {
        let mut config = test_config();
        config.idle_timeout = Some(Duration::from_millis(50));
        let (addr, handle, join) = spawn_server(config);
        let mut client = GeaClient::connect(addr).expect("connect");
        client.expect_ok("open nap demo 42").expect("open");
        // Outlast the timeout plus a couple of sweep intervals.
        std::thread::sleep(Duration::from_millis(400));
        let err = client.request("lineage").unwrap().unwrap_err();
        assert_eq!(err.0, "EEVICTED", "{err:?}");
        assert!(err.1.contains("idle"), "{err:?}");
        handle.shutdown();
        join.join().unwrap();
    }
}
