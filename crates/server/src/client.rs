//! A blocking client for the GQL wire protocol, used by the `gea-client`
//! binary and the integration tests.

use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{self, Reply};

/// Whether a reply is the server's `EEVICTED` error: the session this
/// connection was attached to has been evicted (idle timeout or memory
/// budget) and must be re-`open`ed before further commands. Unlike
/// `ENOSESSION`, the name was valid — the state is simply gone, so a
/// client that can rebuild it (e.g. re-run its script against a fresh
/// `open`) may treat this as retryable.
pub fn reply_evicted(reply: &Reply) -> bool {
    matches!(reply, Err((code, _)) if code == "EEVICTED")
}

/// One connection to a gea-server.
pub struct GeaClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl GeaClient {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<GeaClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(GeaClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line and read its reply frame. The server answering
    /// `ERR` is the `Err` side of the returned [`Reply`]; transport
    /// failures (including the server closing the connection before
    /// replying) are the outer `io::Error`.
    pub fn request(&mut self, line: &str) -> io::Result<Reply> {
        if line.contains(['\n', '\r']) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "request must be a single line",
            ));
        }
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        wire::read_reply(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// [`GeaClient::request`], flattening a server `ERR` into an
    /// `io::Error` — convenient when any failure should abort (scripts).
    pub fn expect_ok(&mut self, line: &str) -> io::Result<String> {
        self.request(line)?
            .map_err(|(code, message)| io::Error::other(format!("{code} {message}")))
    }
}
